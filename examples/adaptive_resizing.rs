//! Adaptive stripe sizing under a load shift.
//!
//! The switch starts under light uniform traffic, then one input suddenly
//! directs a heavy flow of traffic at one output.  With adaptive sizing the
//! affected VOQ measures the new rate, widens its stripe interval (after the
//! clearance phase of §5), and the switch keeps delivering every packet in
//! order throughout the transition.
//!
//! Run with:
//! ```text
//! cargo run --release -p sprinklers-bench --example adaptive_resizing
//! ```

use sprinklers_core::config::{AdaptiveSizing, SizingMode, SprinklersConfig};
use sprinklers_core::packet::Packet;
use sprinklers_core::sprinklers::SprinklersSwitch;
use sprinklers_core::switch::Switch;
use sprinklers_sim::metrics::reorder::ReorderDetector;
use sprinklers_sim::traffic::bernoulli::BernoulliTraffic;
use sprinklers_sim::traffic::TrafficGenerator;

fn main() {
    let n = 16;
    let hot_input = 2;
    let hot_output = 5;
    let config = SprinklersConfig::new(n).with_sizing(SizingMode::Adaptive(AdaptiveSizing {
        window: 512,
        gamma: 0.7,
        patience: 1,
        initial_size: 1,
    }));
    let mut switch = SprinklersSwitch::new(config, 11);

    let mut light = BernoulliTraffic::uniform(n, 0.2, 3);
    let mut detector = ReorderDetector::new();
    let mut voq_seq = vec![0u64; n * n];
    let mut offered = 0u64;
    let mut delivered = 0u64;
    // Reused across slots: a Vec is a DeliverySink, and clearing it each slot
    // keeps the loop allocation-free once it reaches steady state.
    let mut deliveries = Vec::new();

    let phase_a = 20_000u64; // light uniform traffic
    let phase_b = 40_000u64; // plus a hot VOQ at ~0.45 load
    let drain = 20_000u64;

    println!("slot      hot-VOQ stripe size   total resizes");
    for slot in 0..(phase_b + drain) {
        if slot < phase_b {
            let mut arrivals = light.arrivals(slot);
            // In phase B, add a heavy stream on one VOQ (roughly 0.45 load).
            if slot >= phase_a && slot % 9 < 4 {
                arrivals.retain(|p| p.input() != hot_input);
                arrivals.push(Packet::new(hot_input, hot_output, 0, slot));
            }
            for mut p in arrivals {
                let key = p.input() * n + p.output();
                p.voq_seq = voq_seq[key];
                voq_seq[key] += 1;
                p.arrival_slot = slot;
                offered += 1;
                switch.arrive(p);
            }
        }
        deliveries.clear();
        switch.step(slot, &mut deliveries);
        for d in &deliveries {
            delivered += 1;
            detector.observe(&d.packet);
        }
        if slot % 4096 == 0 {
            println!(
                "{slot:>8} {:>21} {:>15}",
                switch.voq_stripe_size(hot_input, hot_output),
                switch.total_resizes()
            );
        }
    }

    let final_size = switch.voq_stripe_size(hot_input, hot_output);
    println!();
    println!("offered {offered}, delivered {delivered}");
    println!("hot VOQ stripe size after the load shift: {final_size}");
    println!(
        "total committed stripe-size changes: {}",
        switch.total_resizes()
    );
    println!(
        "reordering events across the whole run: {} (must be 0)",
        detector.stats().voq_reorder_events
    );
    assert_eq!(detector.stats().voq_reorder_events, 0);
    assert!(final_size > 1, "the hot VOQ should have widened its stripe");
}
