//! Compare the average delay and ordering behaviour of every scheme at one
//! operating point — a single column of the paper's Figure 6/7.
//!
//! Run with (all arguments optional):
//! ```text
//! cargo run --release -p sprinklers-bench --example delay_comparison -- [load] [uniform|diagonal] [n]
//! ```

use sprinklers_bench::experiments::{run_point, TrafficKind, PAPER_SCHEMES};
use sprinklers_sim::engine::RunConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let load: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.6);
    let kind = match args.get(2).map(String::as_str) {
        Some("diagonal") => TrafficKind::Diagonal,
        _ => TrafficKind::Uniform,
    };
    let n: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(32);

    println!("delay comparison at load {load}, {kind:?} traffic, N = {n}");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>14}",
        "scheme", "mean delay", "p99 delay", "reorders", "delivered"
    );

    let run = RunConfig {
        slots: 60_000,
        warmup_slots: 10_000,
        drain_slots: 60_000,
    };
    let mut schemes: Vec<&str> = vec!["oq"];
    schemes.extend(PAPER_SCHEMES);
    schemes.push("tcp-hash");
    for scheme in schemes {
        let point = run_point(scheme, n, load, kind, run, 7);
        println!(
            "{:<16} {:>12.1} {:>12} {:>12} {:>14}",
            point.scheme,
            point.report.delay.mean(),
            point.report.delay.percentile(0.99),
            point.report.reordering.voq_reorder_events,
            format!(
                "{}/{}",
                point.report.delivered_packets, point.report.offered_packets
            ),
        );
    }
    println!();
    println!("expected shape: the ideal OQ switch lower-bounds everything;");
    println!("baseline-lb has the lowest implementable delay but reorders;");
    println!("UFS pays a large frame-accumulation delay at light load;");
    println!("Sprinklers, FOFF and PF stay close to each other with zero reordering.");
}
