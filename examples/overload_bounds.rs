//! Evaluate the paper's stability guarantees for a switch you are about to
//! build: Theorem 1's zero-overload threshold and Theorem 2's Chernoff bound
//! on the overload probability (the machinery behind Table 1).
//!
//! Run with:
//! ```text
//! cargo run --release -p sprinklers-bench --example overload_bounds -- [n] [rho]
//! ```

use sprinklers_analysis::chernoff::overload_bound;
use sprinklers_analysis::markov::expected_queue_length;
use sprinklers_analysis::theorem1::zero_overload_threshold;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1024);
    let rho: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.93);

    println!("Sprinklers stability guarantees for an N = {n} switch at load rho = {rho}");
    println!();

    let threshold = zero_overload_threshold(n);
    println!("Theorem 1: below a total input load of {threshold:.4} no queue can ever be");
    println!("           overloaded, no matter how the load is split across VOQs.");
    println!();

    if rho < 1.0 {
        let b = overload_bound(n, rho);
        println!("Theorem 2 (Chernoff bound) at rho = {rho}:");
        println!(
            "  single queue overload probability <= {:.3e}   (log10 = {:.2})",
            b.bound,
            b.log_bound / std::f64::consts::LN_10
        );
        println!(
            "  switch-wide (union over 2N^2 queues) <= {:.3e}",
            b.switch_wide
        );
    } else {
        println!("rho must be < 1 for the Chernoff bound to apply");
    }
    println!();

    println!("Section 5: expected clearance delay at an intermediate port under worst-case");
    println!(
        "           burstiness: {:.0} service periods",
        expected_queue_length(n, rho.min(0.999))
    );
}
