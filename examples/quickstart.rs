//! Quickstart: describe a scenario, run it through the engine, and print the
//! delay and (absence of) reordering statistics.
//!
//! Run with:
//! ```text
//! cargo run --release -p sprinklers-bench --example quickstart
//! ```

use sprinklers_sim::prelude::*;

fn main() {
    // 1. Describe the whole run as one declarative spec: a 16-port
    //    Sprinklers switch with matrix-driven stripe sizing, uniform
    //    Bernoulli arrivals at 70% load.
    let spec = ScenarioSpec::new("sprinklers", 16)
        .with_sizing(SizingSpec::Matrix)
        .with_traffic(TrafficSpec::Uniform { load: 0.7 })
        .with_run(RunConfig {
            slots: 50_000,
            warmup_slots: 5_000,
            drain_slots: 30_000,
        })
        .with_seed(42);
    println!("scenario: {}", spec.label());
    println!("{}", spec.to_json());

    // 2. Run it.  The engine resolves the scheme name through the registry
    //    (any of `registry::schemes()` works here — swap in "foff" or
    //    "baseline-lb" to compare) and feeds every delivered packet through
    //    the zero-allocation metrics sink.
    let report = Engine::new().run(&spec).expect("sprinklers is registered");

    // 3. Inspect the results.
    println!("offered packets  : {}", report.offered_packets);
    println!("delivered packets: {}", report.delivered_packets);
    println!("mean delay       : {:.1} slots", report.delay.mean());
    println!("p99 delay        : {} slots", report.delay.percentile(0.99));
    println!(
        "VOQ reordering   : {} events (flow reordering: {})",
        report.reordering.voq_reorder_events, report.reordering.flow_reorder_events
    );
    assert!(
        report.reordering.is_ordered(),
        "Sprinklers guarantees in-order delivery"
    );
    println!("=> packets departed strictly in order, as the paper guarantees");
}
