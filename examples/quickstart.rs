//! Quickstart: build a Sprinklers switch, offer uniform Bernoulli traffic and
//! print the delay and (absence of) reordering statistics.
//!
//! Run with:
//! ```text
//! cargo run --release -p sprinklers-bench --example quickstart
//! ```

use sprinklers_core::prelude::*;
use sprinklers_sim::prelude::*;

fn main() {
    let n = 16;
    let load = 0.7;
    let seed = 42;

    // 1. Describe the traffic: uniform Bernoulli arrivals at 70% load.
    let traffic = BernoulliTraffic::uniform(n, load, seed);

    // 2. Build the switch.  Stripe sizes are derived from the traffic matrix
    //    with the paper's rule F(r) = min(N, 2^ceil(log2(r N^2))).
    let config = SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(traffic.rate_matrix()));
    let switch = SprinklersSwitch::new(config, seed);
    println!(
        "Sprinklers switch with N = {n}: a VOQ at rate {:.4} gets stripes of {} packets",
        load / n as f64,
        switch.voq_stripe_size(0, 0)
    );

    // 3. Run the simulation.
    let report = Simulator::new(switch, traffic).run(RunConfig {
        slots: 50_000,
        warmup_slots: 5_000,
        drain_slots: 30_000,
    });

    // 4. Inspect the results.
    println!("offered packets  : {}", report.offered_packets);
    println!("delivered packets: {}", report.delivered_packets);
    println!("mean delay       : {:.1} slots", report.delay.mean());
    println!("p99 delay        : {} slots", report.delay.percentile(0.99));
    println!(
        "VOQ reordering   : {} events (flow reordering: {})",
        report.reordering.voq_reorder_events, report.reordering.flow_reorder_events
    );
    assert!(
        report.reordering.is_ordered(),
        "Sprinklers guarantees in-order delivery"
    );
    println!("=> packets departed strictly in order, as the paper guarantees");
}
