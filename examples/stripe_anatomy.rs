//! Reproduce the anatomy of stripe-interval generation from §3.3 of the
//! paper (the setting of Fig. 2): show how the N VOQs of one input port are
//! mapped to primary intermediate ports by a weakly uniform random OLS, how
//! the stripe-size rule turns VOQ rates into dyadic stripe intervals, and how
//! the resulting load spreads over the intermediate ports.
//!
//! Run with:
//! ```text
//! cargo run --release -p sprinklers-bench --example stripe_anatomy -- [n] [seed]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprinklers_core::dyadic::DyadicInterval;
use sprinklers_core::ols::WeaklyUniformOls;
use sprinklers_core::sizing::{load_per_share, stripe_size};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2014);
    assert!(n.is_power_of_two(), "N must be a power of two");

    let mut rng = StdRng::seed_from_u64(seed);
    let ols = WeaklyUniformOls::random(n, &mut rng);

    // Draw some random VOQ rates for input port 0 (normalized so they sum to
    // ~0.9) — in a real switch these would be measured or known a priori.
    let raw: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let total: f64 = raw.iter().sum();
    let rates: Vec<f64> = raw.iter().map(|r| 0.9 * r / total).collect();

    println!("stripe intervals for the {n} VOQs of input port 0 (load 0.9)");
    println!(
        "{:>4} {:>9} {:>8} {:>7} {:>12} {:>14}",
        "VOQ", "rate", "primary", "size", "interval", "load/share"
    );
    let mut port_load = vec![0.0f64; n];
    for (output, &rate) in rates.iter().enumerate() {
        let primary = ols.primary_port(0, output);
        let size = stripe_size(rate, n);
        let interval = DyadicInterval::containing(primary, size);
        for p in interval.ports() {
            port_load[p] += rate / size as f64;
        }
        println!(
            "{output:>4} {rate:>9.4} {primary:>8} {size:>7} {:>12} {:>14.5}",
            interval.to_string(),
            load_per_share(rate, n),
        );
    }

    println!();
    println!(
        "resulting load on each intermediate port (ideal would be {:.4}):",
        0.9 / n as f64
    );
    for (p, load) in port_load.iter().enumerate() {
        let bar = "#".repeat((load * n as f64 * 40.0).round() as usize);
        println!("  port {p:>3}: {load:.4} {bar}");
    }

    println!();
    println!(
        "every row and column of the OLS is a permutation: {}",
        ols.is_valid()
    );
}
