//! Record a synthetic workload to a trace file, then replay it.
//!
//! Demonstrates the trace ingestion pipeline end to end: any scenario's
//! arrival stream can be captured to disk (CSV or compact binary `.sprt`)
//! and replayed through `TrafficSpec::Trace` — reproducing the original
//! report byte for byte, because the trace carries the generator's label
//! and rate matrix alongside the packets.  The replay knobs then reshape
//! the recorded workload: `repeat` tiles it, `scale` compresses or
//! stretches its timebase.
//!
//! Run with:
//! ```text
//! cargo run --release -p sprinklers-bench --example trace_replay
//! ```

use sprinklers_sim::prelude::*;
use sprinklers_sim::traffic::trace_io::{record_spec, TraceFormat};

fn main() {
    let dir = std::env::temp_dir().join(format!("sprinklers-trace-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    // A bursty scenario: the adversarial shape for reordering-free claims.
    let spec = ScenarioSpec::new("sprinklers", 16)
        .with_traffic(TrafficSpec::Bursty {
            load: 0.7,
            peak: 1.0,
            mean_burst: 24.0,
        })
        .with_run(RunConfig {
            slots: 5_000,
            warmup_slots: 500,
            drain_slots: 10_000,
        })
        .with_seed(2014);

    let original = Engine::new().run(&spec).expect("original run");
    println!("original : {}", original.csv_row());

    // Record the exact arrival stream the engine injected, to both formats.
    let sprt = dir.join("bursty.sprt");
    let csv = dir.join("bursty.csv");
    let (packets, span) = record_spec(&spec, &sprt, TraceFormat::Sprt).expect("record sprt");
    record_spec(&spec, &csv, TraceFormat::Csv).expect("record csv");
    println!(
        "recorded  : {packets} packets over {span} slots -> {} ({} bytes) and {} ({} bytes)",
        sprt.display(),
        std::fs::metadata(&sprt).map(|m| m.len()).unwrap_or(0),
        csv.display(),
        std::fs::metadata(&csv).map(|m| m.len()).unwrap_or(0),
    );

    // Replaying either file reproduces the original report byte for byte.
    for path in [&sprt, &csv] {
        let replay_spec = spec
            .clone()
            .with_traffic(TrafficSpec::trace(path.to_string_lossy().into_owned()));
        let replay = Engine::new().run(&replay_spec).expect("replay run");
        assert_eq!(
            replay.csv_row(),
            original.csv_row(),
            "replay must reproduce the original report"
        );
        println!(
            "replay ok : {} reproduces the original report",
            path.display()
        );
    }

    // The knobs reshape the workload: tile the trace twice at a gentler
    // timebase and watch the run stretch while ordering holds.
    let reshaped_spec = spec.clone().with_traffic(TrafficSpec::Trace {
        path: sprt.to_string_lossy().into_owned(),
        format: Some(TraceFormat::Sprt),
        repeat: 2,
        scale: 0.5,
    });
    let reshaped_spec = reshaped_spec.with_run(RunConfig {
        slots: 2 * 2 * 5_000, // two copies, each dilated 2x
        warmup_slots: 500,
        drain_slots: 10_000,
    });
    let reshaped = Engine::new().run(&reshaped_spec).expect("reshaped run");
    println!("reshaped  : {}", reshaped.csv_row());
    assert_eq!(reshaped.offered_packets, 2 * original.offered_packets);
    assert!(reshaped.reordering.is_ordered());

    std::fs::remove_dir_all(&dir).ok();
    println!("done");
}
