//! Serial vs parallel figure-grid execution.
//!
//! Runs the full 10-scheme × 10-load grid of the paper's figure experiments
//! at n = 32 (shortened runs) twice — once on a single worker, once with one
//! worker per core — verifies the two result sets are byte-identical, and
//! prints the wall-clock comparison.  On a multi-core machine the parallel
//! run wins by roughly the core count; on a single core it ties.
//!
//! ```text
//! cargo run --release --example parallel_sweep
//! ```

use sprinklers_sim::engine::RunConfig;
use sprinklers_sim::parallel::default_workers;
use sprinklers_sim::registry;
use sprinklers_sim::report::merge_csv;
use sprinklers_sim::spec::ScenarioSpec;
use sprinklers_sim::sweep::{paper_load_grid, sweep_schemes_with, LoadSweepPoint};

fn main() {
    let schemes: Vec<&str> = registry::schemes().to_vec();
    let loads = paper_load_grid();
    let base = ScenarioSpec::new("sprinklers", 32)
        .with_run(RunConfig {
            slots: 3_000,
            warmup_slots: 300,
            drain_slots: 6_000,
        })
        .with_seed(2014);

    println!(
        "grid: {} schemes x {} loads at n = {} ({} runs)",
        schemes.len(),
        loads.len(),
        base.n,
        schemes.len() * loads.len()
    );

    let t0 = std::time::Instant::now();
    let serial = sweep_schemes_with(&base, &schemes, &loads, 1).unwrap();
    let serial_time = t0.elapsed();

    let workers = default_workers();
    let t1 = std::time::Instant::now();
    let parallel = sweep_schemes_with(&base, &schemes, &loads, 0).unwrap();
    let parallel_time = t1.elapsed();

    assert_eq!(
        csv(&serial),
        csv(&parallel),
        "parallel results must be byte-identical to serial"
    );

    println!(
        "serial   (1 worker):   {:>8.2} s",
        serial_time.as_secs_f64()
    );
    println!(
        "parallel ({workers} worker{}): {:>8.2} s",
        if workers == 1 { "" } else { "s" },
        parallel_time.as_secs_f64()
    );
    println!(
        "speedup: {:.2}x (results byte-identical)",
        serial_time.as_secs_f64() / parallel_time.as_secs_f64()
    );

    // A taste of the merged output: the first row per scheme.
    println!("\nfirst point per scheme (load {:.2}):", loads[0]);
    for point in parallel.iter().filter(|p| p.load == loads[0]) {
        println!(
            "  {:<22} mean delay {:>8.2} slots, reorders {}",
            point.scheme,
            point.mean_delay(),
            point.report.reordering.voq_reorder_events
        );
    }
}

fn csv(points: &[LoadSweepPoint]) -> String {
    merge_csv(points.iter().map(|p| (p.scheme.as_str(), &p.report)))
}
