//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! Provides [`RngCore`], [`Rng`], [`SeedableRng`] and [`rngs::StdRng`].  The
//! generator is xoshiro256++ seeded through SplitMix64, which is the standard
//! seeding recipe and gives high-quality 64-bit output — more than enough for
//! simulation workloads.  The stream differs from the real `StdRng` (ChaCha12),
//! so seeds are reproducible *within* this shim but not across it and the real
//! crate; none of the workspace's tests depend on the exact stream.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the shim's
/// equivalent of `rand::distributions::Standard` sampling).
pub trait Sample: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Sample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (the shim's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` without modulo bias (Lemire's method with a
/// rejection step).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Rejected draw in the biased zone; resample (rare for small spans).
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly (e.g. `rng.gen::<f64>()`).
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (e.g. `rng.gen_range(0..=i)`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_covers_inclusive_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..=4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..=4 should occur");
    }

    #[test]
    fn gen_range_exclusive_never_hits_end() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(rng.gen_range(0usize..3) < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!(
            (2_700..3_300).contains(&hits),
            "got {hits} of 10000 at p=0.3"
        );
    }
}
