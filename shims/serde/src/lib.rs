//! Offline shim for the subset of the `serde` API used by this workspace.
//!
//! The workspace derives `Serialize`/`Deserialize` on its report and
//! configuration types so that, when built against the real serde, they can
//! be written to and read from JSON/TOML by downstream tooling.  Nothing in
//! the workspace itself calls a serializer, so the shim reduces the traits to
//! markers that are blanket-implemented for every type, and the derives (in
//! the `serde_derive` shim) to no-ops.  Swapping in the real crates changes
//! no source outside `shims/`.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Namespace parity with `serde::de`.
pub mod de {
    pub use super::DeserializeOwned;
}
