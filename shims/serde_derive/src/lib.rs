//! Offline no-op shim for `serde_derive`.
//!
//! The sibling `serde` shim blanket-implements its `Serialize`/`Deserialize`
//! marker traits for every type, so these derives have nothing to generate:
//! they only need to *exist* (and to accept the `#[serde(...)]` helper
//! attribute) so that `#[derive(Serialize, Deserialize)]` compiles unchanged
//! against the shim and against the real crate alike.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
