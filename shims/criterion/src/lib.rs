//! Offline shim for the subset of the `criterion` 0.5 API used by this
//! workspace's benches.
//!
//! Unlike the serde shim this one actually *measures*: `Bencher::iter` runs a
//! short warm-up, then collects `sample_size` timed samples (each batched to
//! amortize clock overhead) within roughly `measurement_time`, and prints the
//! mean and minimum time per iteration, plus derived element throughput when
//! a [`Throughput`] was configured.  There are no statistics beyond that —
//! enough for `cargo bench` to produce comparable numbers, not for rigorous
//! regression detection.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    sample_size: usize,
    measurement_time: Duration,
    label: String,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Measure `routine`, printing one summary line.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: grow the batch until one batch
        // takes at least ~1ms, so short routines are not dominated by clock
        // reads.
        let mut batch = 1u64;
        let batch_time = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break dt;
            }
            batch *= 2;
        };

        // Collect samples within the measurement budget.
        let per_batch = batch_time.max(Duration::from_nanos(1));
        let budget = self.measurement_time.max(Duration::from_millis(10));
        let max_samples = (budget.as_nanos() / per_batch.as_nanos()).clamp(1, 1 << 16) as usize;
        let samples = self.sample_size.clamp(1, max_samples.max(1));

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        let iters = samples as u64 * batch;
        let mean_ns = total.as_nanos() as f64 / iters as f64;
        let min_ns = min.as_nanos() as f64 / batch as f64;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(e) => format!(", {:.3} Melem/s", e as f64 / mean_ns * 1e3),
            Throughput::Bytes(b) => {
                format!(", {:.3} MiB/s", b as f64 / mean_ns * 1e9 / (1 << 20) as f64)
            }
        });
        println!(
            "bench: {:<48} mean {:>12.1} ns/iter, min {:>12.1} ns/iter{}",
            self.label,
            mean_ns,
            min_ns,
            rate.unwrap_or_default()
        );
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Soft budget for one benchmark's measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotate iterations with a throughput so results print a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            label: format!("{}/{}", self.name, id.id),
            throughput: self.throughput,
            _marker: std::marker::PhantomData,
        };
        f(&mut b);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            label: format!("{}/{}", self.name, id.id),
            throughput: self.throughput,
            _marker: std::marker::PhantomData,
        };
        f(&mut b, input);
        self
    }

    /// End the group (parity with criterion; nothing to flush here).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            label: name.to_string(),
            throughput: None,
            _marker: std::marker::PhantomData,
        };
        f(&mut b);
        self
    }

    /// Parity with criterion's configuration hook (unused by the shim).
    pub fn final_summary(&mut self) {}
}

/// Declare a group of benchmark functions, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(100));
        let mut ran = false;
        group.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| black_box(3u64).wrapping_mul(7));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
