//! Offline shim for the subset of the `proptest` 1.x API used by this
//! workspace.
//!
//! A real property test: each `proptest!` test body runs for a fixed number
//! of cases (64 by default, override with the `PROPTEST_CASES` environment
//! variable) with inputs drawn from the declared strategies.  The RNG seed is
//! derived from the test's name, so runs are deterministic and failures
//! reproduce; on failure the offending case index is part of the panic
//! message.
//!
//! Supported strategy surface: integer and float ranges, tuples of
//! strategies, and [`collection::vec`] with a fixed or ranged length — the
//! subset the workspace's tests use.  `prop_assert!`, `prop_assert_eq!` and
//! `prop_assume!` behave like the real macros (assumption failures skip the
//! case rather than failing the test).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error type carried by `prop_assert!`-style macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure (or rejection) message.
    pub message: String,
    /// True when the case was *rejected* (via `prop_assume!`), not failed.
    pub rejected: bool,
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejected: false,
        }
    }

    /// A rejected case (unsatisfied assumption).
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejected: true,
        }
    }
}

/// Something that can generate values for a property test.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-block configuration, like `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives the cases of one property test.
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
    name: &'static str,
}

impl TestRunner {
    /// Create a runner seeded from the test name (deterministic).
    pub fn new(name: &'static str) -> Self {
        Self::with_config(name, None)
    }

    /// Create a runner with an explicit configuration (the `PROPTEST_CASES`
    /// environment variable still takes precedence, as in real proptest).
    pub fn with_config(name: &'static str, config: Option<ProptestConfig>) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| config.unwrap_or_default().cases);
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
            cases,
            name,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The RNG for drawing the next case's inputs.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// React to one case's outcome: panic on failure, ignore rejections.
    pub fn handle(&self, case: u32, result: Result<(), TestCaseError>) {
        if let Err(e) = result {
            if !e.rejected {
                panic!(
                    "proptest case {case} of '{}' failed: {}",
                    self.name, e.message
                );
            }
        }
    }
}

/// Common imports, like `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestRunner,
    };
}

/// Declare property tests, like `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (@config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::TestRunner::with_config(stringify!($name), Some($config));
            for case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::generate(&($strategy), runner.rng());)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                runner.handle(case, outcome);
            }
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Like `assert!`, but returns a [`TestCaseError`] so the runner can report
/// the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Like `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// Skip cases whose inputs do not satisfy an assumption.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0usize..10, y in 0.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(v in collection::vec((0usize..8, 0usize..4), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 8 && b < 4);
            }
        }

        #[test]
        fn fixed_size_vec_is_exact(v in collection::vec(0.01f64..1.0, 32)) {
            prop_assert_eq!(v.len(), 32);
        }

        #[test]
        fn assume_skips_cases(x in 0usize..4) {
            prop_assume!(x != 1);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = TestRunner::new("some_test");
        let mut b = TestRunner::new("some_test");
        use ::rand::Rng;
        assert_eq!(a.rng().gen::<u64>(), b.rng().gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0usize..2) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
