//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this small library provides
//! the scaffolding they share: building every switch variant by name and
//! running short, seeded simulations with consistent metrics.

use sprinklers_baselines::{
    BaselineLbSwitch, FoffSwitch, PaddedFramesSwitch, TcpHashSwitch, UfsSwitch,
};
use sprinklers_core::config::{AlignmentMode, InputDiscipline, SizingMode, SprinklersConfig};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::sprinklers::SprinklersSwitch;
use sprinklers_core::switch::Switch;
use sprinklers_sim::harness::{RunConfig, Simulator};
use sprinklers_sim::report::SimReport;
use sprinklers_sim::traffic::TrafficGenerator;

/// Every Sprinklers scheduling variant, for exhaustive ordering checks.
pub const SPRINKLERS_VARIANTS: [(&str, InputDiscipline, AlignmentMode); 4] = [
    (
        "atomic+immediate",
        InputDiscipline::StripeAtomic,
        AlignmentMode::Immediate,
    ),
    (
        "atomic+aligned",
        InputDiscipline::StripeAtomic,
        AlignmentMode::StripeComplete,
    ),
    (
        "rowscan+immediate",
        InputDiscipline::RowScan,
        AlignmentMode::Immediate,
    ),
    (
        "rowscan+aligned",
        InputDiscipline::RowScan,
        AlignmentMode::StripeComplete,
    ),
];

/// Build a Sprinklers switch with matrix-driven sizing and the given variant.
pub fn sprinklers_variant(
    n: usize,
    matrix: &TrafficMatrix,
    discipline: InputDiscipline,
    alignment: AlignmentMode,
    seed: u64,
) -> SprinklersSwitch {
    SprinklersSwitch::new(
        SprinklersConfig::new(n)
            .with_sizing(SizingMode::FromMatrix(matrix.clone()))
            .with_input_discipline(discipline)
            .with_alignment(alignment),
        seed,
    )
}

/// Build one of the ordered switches (everything except `baseline-lb` and
/// `tcp-hash` guarantees per-VOQ order).
pub fn switch_by_name(name: &str, n: usize, matrix: &TrafficMatrix, seed: u64) -> Box<dyn Switch> {
    match name {
        "sprinklers" => Box::new(SprinklersSwitch::new(
            SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(matrix.clone())),
            seed,
        )),
        "sprinklers-adaptive" => Box::new(SprinklersSwitch::new(SprinklersConfig::new(n), seed)),
        "baseline-lb" => Box::new(BaselineLbSwitch::new(n)),
        "ufs" => Box::new(UfsSwitch::new(n)),
        "foff" => Box::new(FoffSwitch::new(n)),
        "padded-frames" => Box::new(PaddedFramesSwitch::new(
            n,
            PaddedFramesSwitch::default_threshold(n),
        )),
        "tcp-hash" => Box::new(TcpHashSwitch::new(n, seed)),
        other => panic!("unknown switch {other}"),
    }
}

/// The schemes that promise per-VOQ in-order delivery.
pub const ORDERED_SCHEMES: [&str; 4] = ["sprinklers", "ufs", "foff", "padded-frames"];

/// Run a switch against a generator with a short, deterministic configuration.
pub fn run<S: Switch, G: TrafficGenerator>(switch: S, traffic: G, slots: u64) -> SimReport {
    Simulator::new(switch, traffic).run(RunConfig {
        slots,
        warmup_slots: slots / 10,
        drain_slots: slots.max(4_096) * 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinklers_sim::traffic::bernoulli::BernoulliTraffic;

    #[test]
    fn switch_by_name_covers_all_schemes() {
        let m = TrafficMatrix::uniform(8, 0.5);
        for name in ORDERED_SCHEMES
            .iter()
            .chain(["baseline-lb", "tcp-hash", "sprinklers-adaptive"].iter())
        {
            let sw = switch_by_name(name, 8, &m, 3);
            assert_eq!(sw.n(), 8);
        }
    }

    #[test]
    fn run_helper_produces_a_report() {
        let m = TrafficMatrix::uniform(8, 0.3);
        let sw = switch_by_name("sprinklers", 8, &m, 3);
        let report = run(sw, BernoulliTraffic::uniform(8, 0.3, 9), 2_000);
        assert!(report.offered_packets > 0);
    }
}
