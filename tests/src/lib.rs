//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this small library provides
//! the scaffolding they share: building switches through the
//! `sprinklers-sim` registry and running short, seeded simulations with
//! consistent metrics through the engine.

use sprinklers_core::config::{AlignmentMode, InputDiscipline, SizingMode, SprinklersConfig};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::sprinklers::SprinklersSwitch;
use sprinklers_core::switch::Switch;
use sprinklers_sim::engine::{Engine, RunConfig};
use sprinklers_sim::registry;
use sprinklers_sim::report::SimReport;
use sprinklers_sim::spec::SizingSpec;
use sprinklers_sim::traffic::TrafficGenerator;

/// Every Sprinklers scheduling variant, for exhaustive ordering checks.
pub const SPRINKLERS_VARIANTS: [(&str, InputDiscipline, AlignmentMode); 4] = [
    (
        "atomic+immediate",
        InputDiscipline::StripeAtomic,
        AlignmentMode::Immediate,
    ),
    (
        "atomic+aligned",
        InputDiscipline::StripeAtomic,
        AlignmentMode::StripeComplete,
    ),
    (
        "rowscan+immediate",
        InputDiscipline::RowScan,
        AlignmentMode::Immediate,
    ),
    (
        "rowscan+aligned",
        InputDiscipline::RowScan,
        AlignmentMode::StripeComplete,
    ),
];

/// Build a Sprinklers switch with matrix-driven sizing and the given variant.
pub fn sprinklers_variant(
    n: usize,
    matrix: &TrafficMatrix,
    discipline: InputDiscipline,
    alignment: AlignmentMode,
    seed: u64,
) -> SprinklersSwitch {
    SprinklersSwitch::new(
        SprinklersConfig::new(n)
            .with_sizing(SizingMode::FromMatrix(matrix.clone()))
            .with_input_discipline(discipline)
            .with_alignment(alignment),
        seed,
    )
}

/// Build any registered switch by name with matrix-driven sizing.
pub fn switch_by_name(name: &str, n: usize, matrix: &TrafficMatrix, seed: u64) -> Box<dyn Switch> {
    registry::build_named(name, n, &SizingSpec::Matrix, matrix, seed)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// The schemes that promise per-VOQ in-order delivery (the paper's ordered
/// comparison set; `registry::ORDERED_SCHEMES` additionally includes the
/// Sprinklers ablation variants and the OQ reference).
pub const ORDERED_SCHEMES: [&str; 4] = ["sprinklers", "ufs", "foff", "padded-frames"];

/// Run a switch against a generator with a short, deterministic configuration.
pub fn run<S: Switch, G: TrafficGenerator>(switch: S, traffic: G, slots: u64) -> SimReport {
    Engine::new().run_parts(
        switch,
        traffic,
        RunConfig {
            slots,
            warmup_slots: slots / 10,
            drain_slots: slots.max(4_096) * 2,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinklers_sim::traffic::bernoulli::BernoulliTraffic;

    #[test]
    fn switch_by_name_covers_all_registered_schemes() {
        let m = TrafficMatrix::uniform(8, 0.5);
        for name in registry::schemes() {
            let sw = switch_by_name(name, 8, &m, 3);
            assert_eq!(sw.n(), 8);
        }
    }

    #[test]
    fn run_helper_produces_a_report() {
        let m = TrafficMatrix::uniform(8, 0.3);
        let sw = switch_by_name("sprinklers", 8, &m, 3);
        let report = run(sw, BernoulliTraffic::uniform(8, 0.3, 9), 2_000);
        assert!(report.offered_packets > 0);
    }
}
