//! The headline invariant of the paper: a Sprinklers switch never reorders
//! packets, under any admissible traffic pattern, for every scheduling
//! variant — while the baseline load-balanced switch (which makes no such
//! promise) visibly does reorder under the same traffic.

use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_integration_tests::{
    run, sprinklers_variant, switch_by_name, ORDERED_SCHEMES, SPRINKLERS_VARIANTS,
};
use sprinklers_sim::traffic::bernoulli::BernoulliTraffic;
use sprinklers_sim::traffic::bursty::BurstyTraffic;
use sprinklers_sim::traffic::flows::FlowTraffic;

#[test]
fn sprinklers_never_reorders_under_uniform_traffic() {
    // The default configuration — stripe-atomic input scheduling (Algorithm 1
    // taken literally) with immediate intermediate eligibility — must never
    // reorder.  The other variants are exercised for conservation/stability
    // only: our reproduction found that the "simplified" row-scan
    // implementation of §3.4.2 and naive frame-aligned staging both do
    // reorder under concurrent traffic (documented in EXPERIMENTS.md and
    // measured by the ablation_alignment experiment).
    let n = 16;
    for load in [0.3, 0.7, 0.92] {
        for (name, discipline, alignment) in SPRINKLERS_VARIANTS {
            let matrix = TrafficMatrix::uniform(n, load);
            let sw = sprinklers_variant(n, &matrix, discipline, alignment, 7);
            let report = run(sw, BernoulliTraffic::uniform(n, load, 1234), 30_000);
            if name == "atomic+immediate" {
                assert_eq!(
                    report.reordering.voq_reorder_events, 0,
                    "variant {name} reordered at load {load}"
                );
            }
            assert!(
                report.delivery_ratio() > 0.95,
                "variant {name} stalled at load {load}"
            );
        }
    }
}

#[test]
fn sprinklers_never_reorders_under_diagonal_traffic() {
    let n = 32;
    for load in [0.5, 0.9] {
        let matrix = TrafficMatrix::diagonal(n, load);
        let sw = switch_by_name("sprinklers", n, &matrix, 3);
        let report = run(sw, BernoulliTraffic::diagonal(n, load, 99), 30_000);
        assert_eq!(
            report.reordering.voq_reorder_events, 0,
            "reordered at load {load}"
        );
        assert_eq!(report.reordering.flow_reorder_events, 0);
    }
}

#[test]
fn sprinklers_never_reorders_under_hotspot_and_bursty_traffic() {
    let n = 16;
    let matrix = TrafficMatrix::hotspot(n, 0.85, 0.4);
    let sw = switch_by_name("sprinklers", n, &matrix, 5);
    let report = run(sw, BernoulliTraffic::hotspot(n, 0.85, 0.4, 31), 30_000);
    assert_eq!(report.reordering.voq_reorder_events, 0);

    let matrix = TrafficMatrix::uniform(n, 0.6);
    let sw = switch_by_name("sprinklers", n, &matrix, 5);
    let report = run(sw, BurstyTraffic::uniform(n, 0.6, 1.0, 64.0, 77), 30_000);
    assert_eq!(
        report.reordering.voq_reorder_events, 0,
        "bursty traffic caused reordering"
    );
}

#[test]
fn adaptive_sprinklers_never_reorders() {
    let n = 16;
    for load in [0.3, 0.8] {
        let matrix = TrafficMatrix::uniform(n, load);
        let sw = switch_by_name("sprinklers-adaptive", n, &matrix, 21);
        let report = run(sw, BernoulliTraffic::uniform(n, load, 55), 40_000);
        assert_eq!(
            report.reordering.voq_reorder_events, 0,
            "adaptive sizing caused reordering at load {load}"
        );
    }
}

#[test]
fn every_ordered_baseline_also_preserves_order() {
    let n = 16;
    for scheme in ORDERED_SCHEMES {
        for load in [0.4, 0.85] {
            let matrix = TrafficMatrix::uniform(n, load);
            let sw = switch_by_name(scheme, n, &matrix, 11);
            let report = run(sw, BernoulliTraffic::uniform(n, load, 2020), 25_000);
            assert_eq!(
                report.reordering.voq_reorder_events, 0,
                "{scheme} reordered at load {load}"
            );
        }
    }
}

#[test]
fn baseline_lb_reorders_but_tcp_hash_preserves_flow_order() {
    let n = 16;
    let load = 0.9;
    let matrix = TrafficMatrix::uniform(n, load);

    // The unordered baseline: at high load the path delays through different
    // intermediate ports diverge and VOQ order breaks.  (This is a sanity
    // check that the reordering detector has teeth.)
    let sw = switch_by_name("baseline-lb", n, &matrix, 1);
    let report = run(sw, BernoulliTraffic::uniform(n, load, 5150), 30_000);
    assert!(
        report.reordering.voq_reorder_events > 0,
        "the baseline load-balanced switch should reorder at 90% load"
    );

    // TCP hashing: flows stick to a single path, so flow order is preserved
    // even though VOQ order is not guaranteed.
    let sw = switch_by_name("tcp-hash", n, &matrix, 1);
    let report = run(sw, FlowTraffic::uniform(n, load, 20.0, 33), 30_000);
    assert_eq!(
        report.reordering.flow_reorder_events, 0,
        "TCP hashing must preserve per-flow order"
    );
}

#[test]
fn sprinklers_preserves_order_at_very_small_and_larger_sizes() {
    for n in [2usize, 4, 64] {
        let load = 0.8;
        let matrix = TrafficMatrix::uniform(n, load);
        let sw = switch_by_name("sprinklers", n, &matrix, 13);
        let report = run(sw, BernoulliTraffic::uniform(n, load, 8), 20_000);
        assert_eq!(
            report.reordering.voq_reorder_events, 0,
            "reordered at N = {n}"
        );
        // At N = 64 and this run length a noticeable fraction of packets is
        // still sitting in partially filled stripes when the run ends (each
        // VOQ needs ~5000 slots to fill a full-span stripe at this load), so
        // the delivery-ratio check is necessarily looser for the larger size.
        let min_ratio = if n >= 64 { 0.8 } else { 0.9 };
        assert!(report.delivery_ratio() > min_ratio, "stalled at N = {n}");
    }
}
