//! Conservation (no packet is lost or duplicated) and stability (queues do
//! not grow without bound at admissible loads) for every switch in the
//! workspace.

use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::switch::Switch;
use sprinklers_integration_tests::{run, switch_by_name, ORDERED_SCHEMES};
use sprinklers_sim::engine::{Engine, RunConfig};
use sprinklers_sim::traffic::bernoulli::BernoulliTraffic;
use sprinklers_sim::traffic::trace::TraceTraffic;
use sprinklers_sim::traffic::TrafficGenerator;

#[test]
fn every_switch_conserves_packets_under_uniform_traffic() {
    let n = 16;
    let load = 0.6;
    let matrix = TrafficMatrix::uniform(n, load);
    for scheme in ["sprinklers", "baseline-lb", "ufs", "foff", "padded-frames"] {
        let sw = switch_by_name(scheme, n, &matrix, 17);
        let report = run(sw, BernoulliTraffic::uniform(n, load, 42), 20_000);
        assert_eq!(
            report.delivered_packets + report.residual_packets,
            report.offered_packets,
            "{scheme} lost or duplicated packets"
        );
        // With a long drain, frame-based schemes may legitimately hold back
        // incomplete frames, but never more than one partial frame per VOQ.
        assert!(
            (report.residual_packets as usize) < n * n * n,
            "{scheme} held back {} packets",
            report.residual_packets
        );
    }
    // TCP hashing needs flow-structured traffic: with a single flow id per
    // VOQ it degenerates to one path per input and cannot sustain the load
    // (which is exactly the instability the paper criticizes), so it gets a
    // flow-rich workload here.
    let sw = switch_by_name("tcp-hash", n, &matrix, 17);
    let report = run(
        sw,
        sprinklers_sim::traffic::flows::FlowTraffic::uniform(n, load, 30.0, 42),
        20_000,
    );
    assert_eq!(
        report.delivered_packets + report.residual_packets,
        report.offered_packets,
        "tcp-hash lost or duplicated packets"
    );
    assert!(
        report.delivery_ratio() > 0.8,
        "tcp-hash stalled under flow-rich traffic"
    );
}

#[test]
fn ordered_schemes_sustain_92_percent_load() {
    // Throughput sanity: at ρ = 0.92 (below the Sprinklers stability bound
    // for admissible traffic), every ordered scheme should keep its backlog
    // bounded: the vast majority of offered packets are delivered once the
    // drain phase completes.
    let n = 16;
    let load = 0.92;
    let matrix = TrafficMatrix::uniform(n, load);
    for scheme in ORDERED_SCHEMES {
        let sw = switch_by_name(scheme, n, &matrix, 23);
        let report = run(sw, BernoulliTraffic::uniform(n, load, 404), 40_000);
        assert!(
            report.delivery_ratio() > 0.93,
            "{scheme} delivered only {:.1}% of packets at load {load}",
            report.delivery_ratio() * 100.0
        );
    }
}

#[test]
fn sprinklers_queues_stay_bounded_at_high_load() {
    // Compare the intermediate-stage occupancy early vs late in a long run:
    // for a stable switch the two are of the same magnitude (no linear
    // growth).
    let n = 16;
    let load = 0.9;
    let matrix = TrafficMatrix::uniform(n, load);
    let gen = BernoulliTraffic::uniform(n, load, 7);
    let sw = switch_by_name("sprinklers", n, &matrix, 7);

    let first = Engine::new().run_parts(
        sw,
        gen,
        RunConfig {
            slots: 20_000,
            warmup_slots: 0,
            drain_slots: 0,
        },
    );
    let gen = BernoulliTraffic::uniform(n, load, 7);
    let sw = switch_by_name("sprinklers", n, &matrix, 7);
    let second = Engine::new().run_parts(
        sw,
        gen,
        RunConfig {
            slots: 80_000,
            warmup_slots: 0,
            drain_slots: 0,
        },
    );
    // Mean occupancy over a 4× longer run should not be ~4× larger.
    assert!(
        second.occupancy.mean_intermediate < first.occupancy.mean_intermediate * 2.5 + 50.0,
        "intermediate occupancy grows with time: {} -> {}",
        first.occupancy.mean_intermediate,
        second.occupancy.mean_intermediate
    );
}

#[test]
fn deterministic_trace_is_fully_delivered_by_every_ordered_scheme() {
    let n = 8;
    for scheme in ORDERED_SCHEMES {
        // 8 bursts of 8 packets, one burst per VOQ of input 3.
        let mut entries = Vec::new();
        for output in 0..n {
            for k in 0..n as u64 {
                entries.push(sprinklers_sim::traffic::trace::TraceEntry {
                    slot: output as u64 * 16 + k,
                    input: 3,
                    output,
                });
            }
        }
        let trace = TraceTraffic::new(n, entries);
        let matrix = trace.rate_matrix();
        let sw = switch_by_name(scheme, n, &matrix, 2);
        let report = Engine::new().run_parts(
            sw,
            trace,
            RunConfig {
                slots: 200,
                warmup_slots: 0,
                drain_slots: 5_000,
            },
        );
        assert_eq!(report.offered_packets, (n * n) as u64);
        assert_eq!(
            report.delivered_packets + report.residual_packets,
            report.offered_packets,
            "{scheme} lost packets from the trace"
        );
        if scheme == "padded-frames" {
            // PF may pad a burst early (once it crosses the threshold) and
            // then hold the burst's tail below the threshold forever, since
            // this trace never revisits a VOQ.  Everything above the
            // threshold leftovers must still be delivered.
            assert!(
                report.delivered_packets >= (n * n - n * n / 2) as u64,
                "{scheme} delivered only {} of {} trace packets",
                report.delivered_packets,
                n * n
            );
        } else {
            assert_eq!(
                report.delivered_packets, report.offered_packets,
                "{scheme} failed to deliver the whole trace"
            );
        }
        assert_eq!(
            report.reordering.voq_reorder_events, 0,
            "{scheme} reordered the trace"
        );
    }
}

#[test]
fn switch_stats_are_consistent_with_the_report() {
    let n = 8;
    let load = 0.5;
    let matrix = TrafficMatrix::uniform(n, load);
    let sw = switch_by_name("sprinklers", n, &matrix, 3);
    let stats_before = sw.stats();
    assert_eq!(stats_before.total_arrivals, 0);
    let report = run(sw, BernoulliTraffic::uniform(n, load, 12), 10_000);
    assert_eq!(
        report.offered_packets,
        report.delivered_packets + report.residual_packets
    );
}
