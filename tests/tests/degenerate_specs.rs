//! Degenerate-input hardening: the engine must turn every pathological
//! spec into a typed [`SpecError`] or a well-defined empty report — never a
//! panic, never a NaN in a CSV row or metrics JSON.
//!
//! Covered degeneracies, each across the full scheme registry where it can
//! differ per scheme:
//!
//! * `n = 0` and `n = 1` port "switches" (and `n` past the packet layout's
//!   `MAX_PORTS` bound),
//! * warm-up windows at least as long as the entire run (zero measured
//!   packets),
//! * zero-length trace replays (a valid trace file with no records).

use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};

use sprinklers_core::packet::MAX_PORTS;
use sprinklers_sim::engine::RunConfig;
use sprinklers_sim::prelude::*;

/// A report's user-facing serializations must never contain NaN/inf —
/// they'd poison merged CSVs and the JSON sidecar downstream.
fn assert_finite_outputs(report: &SimReport, tag: &str) {
    let row = report.csv_row();
    assert!(
        !row.contains("NaN") && !row.contains("inf"),
        "{tag}: non-finite CSV row: {row}"
    );
    let json = report.metrics_json();
    assert!(
        !json.contains("NaN") && !json.contains("inf"),
        "{tag}: non-finite metrics JSON"
    );
}

#[test]
fn degenerate_port_counts_are_typed_errors_for_every_scheme() {
    let mut engine = Engine::new();
    for scheme in registry::schemes() {
        for n in [0usize, 1, MAX_PORTS + 1] {
            let spec = ScenarioSpec::new(*scheme, n)
                .with_traffic(TrafficSpec::Uniform { load: 0.5 })
                .with_run(RunConfig {
                    slots: 10,
                    warmup_slots: 0,
                    drain_slots: 10,
                });
            let result = catch_unwind(AssertUnwindSafe(|| engine.run(&spec)));
            let outcome = result.unwrap_or_else(|_| panic!("{scheme} n={n} panicked"));
            let err = outcome.expect_err(&format!("{scheme} n={n} must not run"));
            assert!(
                err.to_string().contains("port count"),
                "{scheme} n={n}: unexpected error text: {err}"
            );
        }
    }
}

#[test]
fn warmup_at_least_as_long_as_the_run_yields_a_well_defined_report() {
    // Every packet arrives inside the warm-up window, so the delay sample
    // is empty; the report must still be finite, conserving and ordered.
    let mut engine = Engine::new();
    for scheme in registry::schemes() {
        let spec = ScenarioSpec::new(*scheme, 4)
            .with_traffic(TrafficSpec::Uniform { load: 0.6 })
            .with_run(RunConfig {
                slots: 500,
                warmup_slots: 100_000, // far beyond slots + drain
                drain_slots: 2_000,
            })
            .with_seed(11);
        let report = engine.run(&spec).unwrap();
        assert_eq!(
            report.delay.count(),
            0,
            "{scheme}: warm-up packets must not be measured"
        );
        assert!(report.offered_packets > 0, "{scheme}: traffic still flows");
        // Conservation still holds (some schemes may hold partial frames
        // past a short drain; that residual is accounted, not lost).
        assert_eq!(
            report.offered_packets,
            report.delivered_packets + report.residual_packets,
            "{scheme}: packets must be conserved"
        );
        assert_finite_outputs(&report, scheme);
    }
}

#[test]
fn zero_offered_slots_yield_an_empty_but_finite_report() {
    // `slots = 0` means no packet is ever offered: a legal, fully empty run.
    let mut engine = Engine::new();
    for scheme in registry::schemes() {
        let spec = ScenarioSpec::new(*scheme, 4)
            .with_traffic(TrafficSpec::Uniform { load: 0.9 })
            .with_run(RunConfig {
                slots: 0,
                warmup_slots: 0,
                drain_slots: 64,
            });
        let report = engine.run(&spec).unwrap();
        assert_eq!(report.offered_packets, 0, "{scheme}");
        assert_eq!(report.delivered_packets, 0, "{scheme}");
        assert_eq!(report.delay.count(), 0, "{scheme}");
        assert_finite_outputs(&report, scheme);
    }
}

#[test]
fn zero_length_trace_replays_run_to_an_empty_report() {
    // A syntactically valid CSV trace with metadata but no records: the
    // replay must produce an empty report for every scheme, not a panic
    // (schemes that size stripes from the matrix see an all-zero matrix).
    let dir = std::env::temp_dir().join(format!("sprinklers_empty_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("empty.csv");
    {
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "# n = 4").unwrap();
        writeln!(f, "# label = empty").unwrap();
    }
    let mut engine = Engine::new();
    for scheme in registry::schemes() {
        let spec = ScenarioSpec::new(*scheme, 4)
            .with_traffic(TrafficSpec::trace(path.to_string_lossy()))
            .with_run(RunConfig {
                slots: 100,
                warmup_slots: 10,
                drain_slots: 100,
            });
        let result = catch_unwind(AssertUnwindSafe(|| engine.run(&spec)));
        let outcome = result.unwrap_or_else(|_| panic!("{scheme}: empty trace panicked"));
        match outcome {
            Ok(report) => {
                assert_eq!(report.offered_packets, 0, "{scheme}");
                assert_eq!(report.residual_packets, 0, "{scheme}");
                assert_finite_outputs(&report, scheme);
            }
            Err(err) => panic!("{scheme}: empty trace must replay as empty, got: {err}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fabric_degenerate_shapes_are_typed_errors() {
    // The topology validator runs before any node is built: mismatched
    // host counts, zero-latency links and undersized shapes all surface as
    // spec errors through the same engine entry point.
    let mut engine = Engine::new();
    let bad = [
        (
            "host mismatch",
            TopologySpec::FatTree2 {
                edges: 2,
                cores: 2,
                hosts_per_edge: 4,
                routing: RoutingSpec::EcmpHash,
                link: LinkSpec::default(),
            },
            7usize, // fabric has 8 hosts
        ),
        (
            "zero latency",
            TopologySpec::FatTree2 {
                edges: 2,
                cores: 2,
                hosts_per_edge: 4,
                routing: RoutingSpec::EcmpHash,
                link: LinkSpec { latency: 0, gap: 1 },
            },
            8,
        ),
        (
            "single switch butterfly",
            TopologySpec::Butterfly {
                switches: 1,
                hosts_per_switch: 8,
                routing: RoutingSpec::Stripe,
                link: LinkSpec::default(),
            },
            8,
        ),
    ];
    for (what, topo, n) in bad {
        let spec = ScenarioSpec::new("oq", n)
            .with_topology(topo)
            .with_traffic(TrafficSpec::Uniform { load: 0.5 });
        assert!(engine.run(&spec).is_err(), "{what} must be rejected");
    }
}
