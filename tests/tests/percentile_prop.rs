//! Property suite for `DelayStats::percentile` against a sorted-vector
//! oracle.
//!
//! The oracle keeps every recorded delay in a sorted `Vec` and computes the
//! rank by exhaustive search over the *exact* rational value of the `f64`
//! percentile (an inequality on integers, no floating-point products), so
//! it is immune to the float-rounding bug the histogram implementation
//! fixed: `(p * count as f64).ceil()` rounds the product to nearest and can
//! land one rank low at integer boundaries (e.g. `0.1 × 10` → exactly
//! `1.0`, though `10 · 0.1f64 > 1`).  Merges with mismatched histogram caps
//! route mass through the overflow re-bucketing paths, which must agree
//! with the oracle too.

use proptest::prelude::*;
use sprinklers_sim::metrics::DelayStats;

/// Exact test of `r ≥ count · p` where `p` is the rational value its f64
/// encoding denotes (`mant · 2^exp`), phrased as `r · 2^-exp ≥ count · mant`
/// on integers.
fn rank_reaches(r: u64, count: u64, p: f64) -> bool {
    let bits = p.to_bits();
    let exp_field = (bits >> 52) & 0x7ff;
    let frac = bits & ((1u64 << 52) - 1);
    let (mant, exp) = if exp_field == 0 {
        (frac, -1074i64)
    } else {
        (frac | (1 << 52), exp_field as i64 - 1075)
    };
    let prod = u128::from(count) * u128::from(mant);
    match u128::from(r).checked_shl((-exp) as u32) {
        Some(scaled) => scaled >= prod,
        None => true, // r · 2^shift overflows u128, so it certainly exceeds prod
    }
}

/// The oracle: rank = smallest `r ∈ [1, count]` with `r ≥ count · p`
/// (clamped like the implementation), answer = the rank-th smallest delay.
fn oracle(sorted: &[u64], p: f64) -> u64 {
    let count = sorted.len() as u64;
    let rank = (1..=count)
        .find(|&r| rank_reaches(r, count, p))
        .unwrap_or(count);
    sorted[(rank - 1) as usize]
}

/// Percentiles where rounding bugs hide: exact dyadics, near-boundary
/// decimals, and the CSV's published columns.
const EDGE_PS: [f64; 9] = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99];

proptest! {
    #[test]
    fn percentile_matches_the_sorted_oracle(
        delays in collection::vec(0u64..240, 1..220),
        cap in 1usize..260,
        p in 0.0f64..1.0,
    ) {
        let mut stats = DelayStats::new(cap);
        for &d in &delays {
            stats.record(d);
        }
        let mut sorted = delays.clone();
        sorted.sort_unstable();
        for q in EDGE_PS.into_iter().chain([p, 1.0]) {
            prop_assert_eq!(
                stats.percentile(q),
                oracle(&sorted, q),
                "count={} cap={} p={}",
                sorted.len(),
                cap,
                q
            );
        }
    }

    #[test]
    fn mismatched_cap_merges_match_the_sorted_oracle(
        a in collection::vec(0u64..240, 1..120),
        b in collection::vec(0u64..240, 1..120),
        caps in (1usize..32, 32usize..300),
        p in 0.0f64..1.0,
    ) {
        // Record each half at a different cap, then merge both directions:
        // small-into-large re-buckets overflow into the histogram,
        // large-into-small pushes histogram mass out to overflow.
        let mut narrow = DelayStats::new(caps.0);
        for &d in &a {
            narrow.record(d);
        }
        let mut wide = DelayStats::new(caps.1);
        for &d in &b {
            wide.record(d);
        }
        let mut merged_narrow = narrow.clone();
        merged_narrow.merge(&wide);
        let mut merged_wide = wide.clone();
        merged_wide.merge(&narrow);

        let mut sorted: Vec<u64> = a.iter().chain(&b).copied().collect();
        sorted.sort_unstable();
        for q in EDGE_PS.into_iter().chain([p, 1.0]) {
            let expect = oracle(&sorted, q);
            prop_assert_eq!(merged_narrow.percentile(q), expect, "narrow←wide p={}", q);
            prop_assert_eq!(merged_wide.percentile(q), expect, "wide←narrow p={}", q);
        }
        prop_assert_eq!(merged_narrow.count(), sorted.len() as u64);
        prop_assert_eq!(merged_wide.count(), sorted.len() as u64);
    }
}
