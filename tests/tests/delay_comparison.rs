//! Cross-scheme delay relationships — the qualitative shape of Figures 6/7
//! checked as assertions at a single representative operating point each.

use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_integration_tests::{run, switch_by_name};
use sprinklers_sim::traffic::bernoulli::BernoulliTraffic;

fn mean_delay(scheme: &str, n: usize, load: f64, diagonal: bool, slots: u64) -> f64 {
    let matrix = if diagonal {
        TrafficMatrix::diagonal(n, load)
    } else {
        TrafficMatrix::uniform(n, load)
    };
    let gen = if diagonal {
        BernoulliTraffic::diagonal(n, load, 1001)
    } else {
        BernoulliTraffic::uniform(n, load, 1001)
    };
    let report = run(switch_by_name(scheme, n, &matrix, 6), gen, slots);
    report.delay.mean()
}

#[test]
fn ufs_suffers_at_light_load_and_sprinklers_does_not() {
    // Figure 6, left edge: at ρ = 0.1 a UFS VOQ must accumulate N packets at
    // rate ρ/N before anything can move, while Sprinklers only waits for a
    // stripe of F(ρ/N) ≪ N packets.
    let n = 32;
    let ufs = mean_delay("ufs", n, 0.1, false, 60_000);
    let sprinklers = mean_delay("sprinklers", n, 0.1, false, 60_000);
    assert!(
        ufs > 3.0 * sprinklers,
        "UFS ({ufs:.0} slots) should be several times slower than Sprinklers ({sprinklers:.0}) at light load"
    );
}

#[test]
fn baseline_lb_is_the_delay_lower_bound() {
    let n = 32;
    let load = 0.6;
    let base = mean_delay("baseline-lb", n, load, false, 40_000);
    for scheme in ["sprinklers", "ufs", "foff", "padded-frames"] {
        let d = mean_delay(scheme, n, load, false, 40_000);
        assert!(
            d >= base * 0.95,
            "{scheme} ({d:.1}) cannot beat the unordered baseline ({base:.1})"
        );
    }
}

#[test]
fn sprinklers_is_competitive_with_the_padded_frame_schemes() {
    // Figure 6/7: "our switch has similar delay performance with PF and FOFF".
    // Padded Frames is the directly comparable aggregation-based scheme (our
    // FOFF implementation resequences more cheaply than the paper's, so its
    // absolute delay is lower — see EXPERIMENTS.md); Sprinklers must be in
    // the same ballpark as PF and no worse than UFS.
    let n = 32;
    let load = 0.6;
    let sprinklers = mean_delay("sprinklers", n, load, false, 60_000);
    let ufs = mean_delay("ufs", n, load, false, 60_000);
    let pf = mean_delay("padded-frames", n, load, false, 60_000);
    assert!(
        sprinklers < pf * 4.0,
        "Sprinklers ({sprinklers:.0}) should be comparable to PF ({pf:.0})"
    );
    assert!(
        sprinklers <= ufs * 1.2,
        "Sprinklers ({sprinklers:.0}) should not be worse than UFS ({ufs:.0})"
    );
}

#[test]
fn diagonal_traffic_shows_the_same_qualitative_shape() {
    let n = 32;
    let load = 0.3;
    let ufs = mean_delay("ufs", n, load, true, 50_000);
    let sprinklers = mean_delay("sprinklers", n, load, true, 50_000);
    let base = mean_delay("baseline-lb", n, load, true, 50_000);
    assert!(
        sprinklers < ufs,
        "Sprinklers ({sprinklers:.0}) should beat UFS ({ufs:.0}) under diagonal traffic"
    );
    assert!(
        base <= sprinklers * 1.05,
        "baseline should remain the lower bound"
    );
}

#[test]
fn sprinklers_delay_is_flat_across_moderate_loads() {
    // The paper highlights that Sprinklers' delay is "quite stable under
    // different traffic intensities": between 30% and 70% load the average
    // delay should change by far less than the 10× swing UFS exhibits.
    let n = 32;
    let d30 = mean_delay("sprinklers", n, 0.3, false, 50_000);
    let d70 = mean_delay("sprinklers", n, 0.7, false, 50_000);
    let ratio = d70.max(d30) / d70.min(d30).max(1.0);
    assert!(
        ratio < 5.0,
        "Sprinklers delay varies too much between 30% and 70% load: {d30:.0} vs {d70:.0}"
    );
}
