//! Steady-state allocation-count assertions for the switch hot paths.
//!
//! The sink-based `step` contract — and now the batched `step_batch`
//! contract — is "zero heap allocation in steady state".  This test makes
//! that claim falsifiable: a counting global allocator wraps the system
//! allocator, every switch is warmed up until all its internal containers
//! (VOQ rings, intermediate FIFOs, the pooled frame buffers, the FOFF
//! resequencer's flat per-input vectors) have reached their high-water
//! capacity, and then a long measurement window of the *same* deterministic
//! workload must allocate exactly nothing.
//!
//! This file deliberately contains a single `#[test]`: the allocation
//! counter is process-global, so a second concurrently-running test would
//! pollute the measurement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::Packet;
use sprinklers_core::switch::{CountingSink, Switch};
use sprinklers_sim::registry;
use sprinklers_sim::spec::SizingSpec;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: the allocator is a transparent pass-through to `System`, which
// upholds the `GlobalAlloc` contract; the only added behavior is a relaxed
// atomic counter bump, which never allocates and cannot unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards the caller's layout to `System.alloc` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwards the caller's pointer/layout to `System.realloc` unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: forwards the caller's pointer/layout to `System.dealloc` unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const N: usize = 16;
const LOAD: f64 = 0.3;

/// Drive `slots` slots of a deterministic seeded workload (Bernoulli-ish
/// arrivals at 30% load, random outputs, 64 distinct flows) through the
/// per-slot arrive + step path.  Returns the updated identity counters so a
/// measurement window continues the warm-up's exact packet sequence.
fn drive(
    switch: &mut dyn Switch,
    rng: &mut StdRng,
    voq_seq: &mut [u64],
    next_id: &mut u64,
    from_slot: u64,
    slots: u64,
) {
    let mut sink = CountingSink::default();
    for slot in from_slot..from_slot + slots {
        for input in 0..N {
            if rng.gen_range(0.0..1.0) >= LOAD {
                continue;
            }
            let output = rng.gen_range(0..N);
            let key = input * N + output;
            let p = Packet::new(input, output, *next_id, slot)
                .with_flow(rng.gen_range(0..64u64))
                .with_voq_seq(voq_seq[key]);
            voq_seq[key] += 1;
            *next_id += 1;
            switch.arrive(p);
        }
        switch.step(slot, &mut sink);
    }
}

/// Capacity-inflating warm-up phase: 2N slots of all-inputs-to-one-output
/// hotspot per output, cycling over every output.  This drives every queue
/// in the switch far past the depth the 30%-load measurement window can ever
/// reach — and, because each VOQ receives 2N packets, it also forms a glut
/// of simultaneous full frames, pre-populating the frame pools of the
/// frame-based schemes — so a rare steady-state excursion can never trigger
/// a first-time capacity growth mid-measurement.
fn hotspot_burst(
    switch: &mut dyn Switch,
    voq_seq: &mut [u64],
    next_id: &mut u64,
    from_slot: u64,
) -> u64 {
    let mut sink = CountingSink::default();
    let mut slot = from_slot;
    for hot in 0..N {
        for _ in 0..2 * N {
            for input in 0..N {
                let key = input * N + hot;
                let p = Packet::new(input, hot, *next_id, slot)
                    .with_flow(*next_id % 64)
                    .with_voq_seq(voq_seq[key]);
                voq_seq[key] += 1;
                *next_id += 1;
                switch.arrive(p);
            }
            switch.step(slot, &mut sink);
            slot += 1;
        }
    }
    slot
}

#[test]
fn hot_paths_do_not_allocate_in_steady_state() {
    // Part 1: the baselines must be allocation-free on the full
    // arrive + step cycle — frame formation included, thanks to the pooled
    // frame buffers, and FOFF's resequencing included, thanks to the flat
    // sorted-vector resequencer.
    let matrix = TrafficMatrix::uniform(N, LOAD);
    for scheme in [
        "oq",
        "baseline-lb",
        "ufs",
        "foff",
        "padded-frames",
        "tcp-hash",
    ] {
        let mut switch = registry::build_named(scheme, N, &SizingSpec::Matrix, &matrix, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(2014);
        let mut voq_seq = vec![0u64; N * N];
        let mut next_id = 0u64;
        // The warm-up itself must stay cheap too: with the hot queues
        // pre-sized at construction, filling every container to its
        // high-water mark may still grow some of them past the heuristic
        // capacity (deep per-VOQ frame accumulators, first-time pooled
        // frames), but never anywhere near one allocation per packet.  Bound
        // it at one allocation per 16 warm-up packets — the observed worst
        // case (UFS, whose n² FrameVoq buffers all grow during the hotspot)
        // sits ~3× under this, while a per-packet allocation regression
        // overshoots it by an order of magnitude.
        let warmup_before = allocations();
        let warm_from = hotspot_burst(switch.as_mut(), &mut voq_seq, &mut next_id, 0);
        drive(
            switch.as_mut(),
            &mut rng,
            &mut voq_seq,
            &mut next_id,
            warm_from,
            8_192,
        );
        let warmup_allocs = allocations() - warmup_before;
        assert!(
            warmup_allocs * 16 < next_id,
            "{scheme} allocated {warmup_allocs} time(s) warming up on {next_id} \
             packets: warm-up must stay far below one allocation per packet"
        );

        let before = allocations();
        drive(
            switch.as_mut(),
            &mut rng,
            &mut voq_seq,
            &mut next_id,
            warm_from + 8_192,
            4_096,
        );
        let new = allocations() - before;
        assert_eq!(
            new, 0,
            "{scheme} allocated {new} time(s) during 4096 steady-state slots"
        );
    }

    // Part 2: Sprinklers' *stepping* path (both fabrics, LSF service,
    // clearance notifications, per-slot maintenance) must be allocation-free
    // when driven through step_batch.  Arrival-side stripe assembly still
    // allocates per formed stripe, so the measurement here is a pure drain —
    // exactly the shape of the engine's batched drain phase.
    let mut switch = registry::build_named("sprinklers", N, &SizingSpec::Matrix, &matrix, 7)
        .expect("sprinklers builds");
    let mut rng = StdRng::seed_from_u64(99);
    let mut voq_seq = vec![0u64; N * N];
    let mut next_id = 0u64;
    let warm_from = hotspot_burst(switch.as_mut(), &mut voq_seq, &mut next_id, 0);
    drive(
        switch.as_mut(),
        &mut rng,
        &mut voq_seq,
        &mut next_id,
        warm_from,
        4_096,
    );

    let mut sink = CountingSink::default();
    let before = allocations();
    let mut slot = warm_from + 4_096;
    for _ in 0..32 {
        switch.step_batch(slot, 64, &mut sink);
        slot += 64;
    }
    let new = allocations() - before;
    assert_eq!(
        new, 0,
        "sprinklers allocated {new} time(s) during a 2048-slot batched drain"
    );
    assert!(sink.total() > 0, "the drain actually delivered packets");
}
