//! Differential property suite for `Switch::step_batch`.
//!
//! The batched stepping contract is absolute: `step_batch(s, c, sink)` must
//! produce a delivery stream **byte-identical** to `step(s), step(s+1), …,
//! step(s+c-1)` — same packets, same order, same departure slots — for every
//! scheme in the registry, because the engine silently substitutes one for
//! the other and the paper's reordering-free claims are judged on that
//! stream.  These properties drive two identically-seeded instances of every
//! registered scheme with the same random arrivals; the reference instance
//! steps slot by slot, the other steps in random batch splits (broken at
//! arrival-bearing slots, exactly like the engine breaks its runs), and the
//! two full `DeliveredPacket` streams must compare equal.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::{DeliveredPacket, Packet};
use sprinklers_core::switch::Switch;
use sprinklers_sim::registry;
use sprinklers_sim::spec::SizingSpec;

const N: usize = 8;
const OFFERED_SLOTS: u64 = 96;
const TOTAL_SLOTS: u64 = 512;

/// A large port count that crosses the occupancy bitsets' 64-port word
/// boundary, so the sparse stepping paths exercise the two-level summary
/// walk (a power of two, so every Sprinklers variant builds too).
const N_WIDE: usize = 128;
const WIDE_OFFERED_SLOTS: u64 = 64;
const WIDE_TOTAL_SLOTS: u64 = 768;

/// A deterministic random arrival schedule: `schedule[slot]` holds the fully
/// identity-stamped packets injected before stepping `slot`.
fn arrival_schedule_for(
    n: usize,
    offered_slots: u64,
    total_slots: u64,
    seed: u64,
    load: f64,
) -> Vec<Vec<Packet>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut voq_seq = vec![0u64; n * n];
    let mut id = 0u64;
    let mut schedule = Vec::with_capacity(total_slots as usize);
    for slot in 0..total_slots {
        let mut arrivals = Vec::new();
        if slot < offered_slots {
            for input in 0..n {
                if rng.gen_range(0.0..1.0) < load {
                    let output = rng.gen_range(0..n);
                    let key = input * n + output;
                    let mut p = Packet::new(input, output, id, slot)
                        .with_flow(rng.gen_range(0..3u64))
                        .with_voq_seq(voq_seq[key]);
                    p.arrival_slot = slot;
                    voq_seq[key] += 1;
                    id += 1;
                    arrivals.push(p);
                }
            }
        }
        schedule.push(arrivals);
    }
    schedule
}

fn arrival_schedule(seed: u64, load: f64) -> Vec<Vec<Packet>> {
    arrival_schedule_for(N, OFFERED_SLOTS, TOTAL_SLOTS, seed, load)
}

/// Reference semantics: slot-at-a-time stepping.
fn run_reference(switch: &mut dyn Switch, schedule: &[Vec<Packet>]) -> Vec<DeliveredPacket> {
    let mut delivered = Vec::new();
    for (slot, arrivals) in schedule.iter().enumerate() {
        for p in arrivals {
            switch.arrive(p.clone());
        }
        switch.step(slot as u64, &mut delivered);
    }
    delivered
}

/// Batched stepping with random splits.  Chunk lengths are drawn from
/// `split_seed`; a chunk is additionally broken at every arrival-bearing
/// slot, because a batch may never step a slot whose packets have not been
/// injected yet — the same rule the engine applies.
fn run_batched(
    switch: &mut dyn Switch,
    schedule: &[Vec<Packet>],
    split_seed: u64,
    max_chunk: u32,
) -> Vec<DeliveredPacket> {
    let mut rng = StdRng::seed_from_u64(split_seed);
    let mut delivered = Vec::new();
    let total = schedule.len() as u64;
    let mut slot = 0u64;
    while slot < total {
        for p in &schedule[slot as usize] {
            switch.arrive(p.clone());
        }
        let chunk = u64::from(rng.gen_range(1..=max_chunk));
        let mut end = slot + 1;
        while end < total && end < slot + chunk && schedule[end as usize].is_empty() {
            end += 1;
        }
        switch.step_batch(slot, (end - slot) as u32, &mut delivered);
        slot = end;
    }
    delivered
}

fn build_n(scheme: &str, n: usize, seed: u64) -> Box<dyn Switch> {
    // The sizing matrix only has to be fixed and identical for both copies;
    // it deliberately does not match the random arrivals (stripe sizing must
    // not matter for equivalence).
    let matrix = TrafficMatrix::uniform(n, 0.7);
    registry::build_named(scheme, n, &SizingSpec::Matrix, &matrix, seed)
        .expect("registry scheme builds")
}

fn build(scheme: &str, seed: u64) -> Box<dyn Switch> {
    build_n(scheme, N, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every registered scheme: random arrivals + random batch splits
    /// produce a delivery stream identical to slot-at-a-time stepping.
    #[test]
    fn batched_stepping_is_byte_identical_for_every_scheme(
        seed in 0u64..u64::MAX,
        split_seed in 0u64..u64::MAX,
        load in 0.05f64..0.95,
        max_chunk in 1u32..48,
    ) {
        let schedule = arrival_schedule(seed, load);
        for scheme in registry::schemes() {
            let mut reference = build(scheme, seed);
            let mut batched = build(scheme, seed);
            let expected = run_reference(reference.as_mut(), &schedule);
            let got = run_batched(batched.as_mut(), &schedule, split_seed, max_chunk);
            prop_assert_eq!(
                got.len(),
                expected.len(),
                "{} delivered a different packet count", scheme
            );
            // Element-wise: same packet, same order, same departure slot.
            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                prop_assert_eq!(
                    g, e,
                    "{} diverged at delivery #{} (batch splits max_chunk={})",
                    scheme, i, max_chunk
                );
            }
            // The two instances must also agree on their internal counters.
            prop_assert_eq!(
                batched.stats(),
                reference.stats(),
                "{} stats diverged", scheme
            );
        }
    }

    /// The wide-switch variant: at n = 128 the occupancy bitsets span two
    /// words plus a summary level, so this pins the sparse stepping paths —
    /// cursor walks across the word boundary, bit clears near it, the
    /// summary-guided skip — to the slot-at-a-time reference for every
    /// scheme.  A shorter offered window than the n = 8 suite keeps the
    /// 16×-larger per-slot work affordable.
    #[test]
    fn batched_stepping_is_byte_identical_across_the_word_boundary(
        seed in 0u64..u64::MAX,
        split_seed in 0u64..u64::MAX,
        load in 0.02f64..0.6,
        max_chunk in 1u32..96,
    ) {
        let schedule =
            arrival_schedule_for(N_WIDE, WIDE_OFFERED_SLOTS, WIDE_TOTAL_SLOTS, seed, load);
        for scheme in registry::schemes() {
            let mut reference = build_n(scheme, N_WIDE, seed);
            let mut batched = build_n(scheme, N_WIDE, seed);
            let expected = run_reference(reference.as_mut(), &schedule);
            let got = run_batched(batched.as_mut(), &schedule, split_seed, max_chunk);
            prop_assert_eq!(
                &got,
                &expected,
                "{} diverged at n={} (max_chunk={})",
                scheme,
                N_WIDE,
                max_chunk
            );
            prop_assert_eq!(
                batched.stats(),
                reference.stats(),
                "{} stats diverged at n={}",
                scheme,
                N_WIDE
            );
        }
    }

    /// One maximal batch over the whole drain phase (the engine's most
    /// aggressive use) equals slot-at-a-time draining.
    #[test]
    fn a_single_giant_drain_batch_is_equivalent(
        seed in 0u64..u64::MAX,
        load in 0.2f64..0.9,
    ) {
        let schedule = arrival_schedule(seed, load);
        let offered = OFFERED_SLOTS as usize;
        for scheme in registry::schemes() {
            let mut reference = build(scheme, seed);
            let mut batched = build(scheme, seed);
            let expected = run_reference(reference.as_mut(), &schedule);

            let mut got = Vec::new();
            for (slot, arrivals) in schedule[..offered].iter().enumerate() {
                for p in arrivals {
                    batched.arrive(p.clone());
                }
                batched.step(slot as u64, &mut got);
            }
            batched.step_batch(
                OFFERED_SLOTS,
                (TOTAL_SLOTS - OFFERED_SLOTS) as u32,
                &mut got,
            );
            prop_assert_eq!(&got, &expected, "{} drain batch diverged", scheme);
        }
    }
}
