//! Property tests for the trace ingestion pipeline.
//!
//! Two load-bearing guarantees are pinned here:
//!
//! 1. **Format fidelity** — any admissible arrival stream written to the
//!    human-editable CSV and the binary `.sprt` reads back record for
//!    record, from either format, including flow identifiers.
//! 2. **Record→replay exactness** — capturing a synthetic scenario's
//!    arrival stream with `record_spec` and replaying it through
//!    `TrafficSpec::Trace` reproduces the original `SimReport` byte for
//!    byte (the full CSV row: delays, percentiles, reorders, occupancy),
//!    at any stepping batch size and worker count.  This is what makes a
//!    trace a faithful substitute for the generator it was recorded from.

use proptest::prelude::*;
use sprinklers_sim::engine::{Engine, RunConfig};
use sprinklers_sim::parallel::run_specs_parallel;
use sprinklers_sim::spec::{ScenarioSpec, TrafficSpec};
use sprinklers_sim::traffic::trace_io::{
    record_spec, TraceFormat, TraceMeta, TraceReader, TraceRecord, TraceWriter,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sprinklers-trace-prop-{}-{tag}-{}.{ext}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed),
    ))
}

/// Turn raw draws into an admissible, slot-ordered arrival stream: slots
/// advance by the drawn gaps, and a second packet on the same input in the
/// same slot is skipped (an input line carries at most one packet per slot).
fn build_stream(n: usize, raw: &[(u64, usize, usize, u64)]) -> Vec<TraceRecord> {
    let mut last: Vec<Option<u64>> = vec![None; n];
    let mut slot = 0u64;
    let mut out = Vec::new();
    for &(gap, input, output, flow) in raw {
        slot += gap;
        if last[input] == Some(slot) {
            continue;
        }
        last[input] = Some(slot);
        out.push(TraceRecord {
            slot,
            input,
            output,
            flow,
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn both_formats_round_trip_any_admissible_stream(
        raw in collection::vec((0u64..5, 0usize..8, 0usize..8, 0u64..9), 1..250),
    ) {
        let records = build_stream(8, &raw);
        let meta = TraceMeta {
            n: Some(8),
            slots: 0, // derive the span from the data
            label: Some("prop-stream".into()),
            matrix: None,
        };
        for format in [TraceFormat::Csv, TraceFormat::Sprt] {
            let path = tmp("roundtrip", format.name());
            let mut writer = TraceWriter::create(&path, format, &meta).unwrap();
            for rec in &records {
                writer.write(rec).unwrap();
            }
            let (written, _span) = writer.finish().unwrap();
            prop_assert_eq!(written, records.len() as u64);

            let mut reader = TraceReader::open(&path, None).unwrap();
            prop_assert_eq!(reader.meta().n, Some(8));
            let mut back = Vec::new();
            while let Some(rec) = reader.next_record().unwrap() {
                back.push(rec);
            }
            prop_assert_eq!(&back, &records, "{} diverged", format.name());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn record_then_replay_reproduces_the_report_exactly(
        pattern in 0usize..3,
        scheme in 0usize..3,
        load in 0.1f64..0.85,
        seed in 0u64..u64::MAX,
        batch in 1u32..128,
        fmt in 0usize..2,
    ) {
        let traffic = match pattern {
            0 => TrafficSpec::Uniform { load },
            1 => TrafficSpec::Bursty { load, peak: 1.0, mean_burst: 12.0 },
            _ => TrafficSpec::Flows { load, mean_flow_len: 9.0 },
        };
        let scheme = ["sprinklers", "oq", "foff"][scheme];
        let spec = ScenarioSpec::new(scheme, 8)
            .with_traffic(traffic)
            .with_run(RunConfig { slots: 400, warmup_slots: 50, drain_slots: 2_000 })
            .with_seed(seed);
        let format = [TraceFormat::Csv, TraceFormat::Sprt][fmt];
        let path = tmp("replay", format.name());
        record_spec(&spec, &path, format).unwrap();

        let replay_spec = spec
            .clone()
            .with_traffic(TrafficSpec::trace(path.to_string_lossy().into_owned()))
            .with_batch(batch);

        let mut engine = Engine::new();
        let original = engine.run(&spec).unwrap();
        let replay = engine.run(&replay_spec).unwrap();
        prop_assert_eq!(
            replay.csv_row(),
            original.csv_row(),
            "{} replay diverged ({}, batch {})",
            scheme, format.name(), batch
        );
        std::fs::remove_file(&path).ok();
    }
}

/// The acceptance case, pinned as a plain test: `trace record` of
/// `specs/smoke/sprinklers_uniform.json` then replay reproduces its report
/// byte for byte at any worker count and batch size.
#[test]
fn smoke_spec_record_replay_is_exact_at_any_workers_and_batch() {
    let spec_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../specs/smoke/sprinklers_uniform.json");
    let spec = ScenarioSpec::from_json(&std::fs::read_to_string(spec_path).unwrap()).unwrap();

    let trace_path = tmp("smoke", "sprt");
    record_spec(&spec, &trace_path, TraceFormat::Sprt).unwrap();
    let replay = spec.clone().with_traffic(TrafficSpec::trace(
        trace_path.to_string_lossy().into_owned(),
    ));

    for workers in [1usize, 2] {
        for batch in [1u32, 64] {
            let pair = [
                spec.clone().with_batch(batch),
                replay.clone().with_batch(batch),
            ];
            let results = run_specs_parallel(&pair, workers);
            let original = results[0].as_ref().unwrap().csv_row();
            let replayed = results[1].as_ref().unwrap().csv_row();
            assert_eq!(
                replayed, original,
                "record→replay diverged at workers={workers} batch={batch}"
            );
        }
    }
    std::fs::remove_file(&trace_path).ok();
}

/// Converting between the two formats preserves every record and the
/// provenance metadata, so a converted trace replays identically.
#[test]
fn format_conversion_is_lossless_end_to_end() {
    let spec = ScenarioSpec::new("sprinklers", 8)
        .with_traffic(TrafficSpec::Uniform { load: 0.6 })
        .with_run(RunConfig {
            slots: 300,
            warmup_slots: 50,
            drain_slots: 1_500,
        })
        .with_seed(13);
    let sprt = tmp("convert", "sprt");
    let csv = tmp("convert", "csv");
    record_spec(&spec, &sprt, TraceFormat::Sprt).unwrap();

    // Stream-convert sprt -> csv, exactly as the `trace convert` CLI does.
    let mut reader = TraceReader::open(&sprt, None).unwrap();
    let meta = reader.meta().clone();
    let mut writer = TraceWriter::create(&csv, TraceFormat::Csv, &meta).unwrap();
    while let Some(rec) = reader.next_record().unwrap() {
        writer.write(&rec).unwrap();
    }
    writer.finish().unwrap();

    let mut engine = Engine::new();
    let from_sprt = engine
        .run(
            &spec
                .clone()
                .with_traffic(TrafficSpec::trace(sprt.to_string_lossy().into_owned())),
        )
        .unwrap();
    let from_csv = engine
        .run(
            &spec
                .clone()
                .with_traffic(TrafficSpec::trace(csv.to_string_lossy().into_owned())),
        )
        .unwrap();
    assert_eq!(from_sprt.csv_row(), from_csv.csv_row());
    std::fs::remove_file(&sprt).ok();
    std::fs::remove_file(&csv).ok();
}
