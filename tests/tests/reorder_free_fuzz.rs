//! Reordering-free invariant fuzzer over the batched hot path.
//!
//! Every scheme that claims `is_reordering_free` must keep that promise for
//! *any* admissible traffic and *any* stepping batch size — the batch path
//! is exactly where a subtle ordering bug would creep in (a hoisted fabric
//! phase off by one, a resequencer probed at the wrong slot).  This suite
//! throws adversarial traffic — saturating on/off bursts and quasi-diagonal
//! concentration, the patterns the paper uses to stress striping (§6) — at
//! every ordered scheme through `Engine::run` with randomized batch sizes,
//! and requires zero per-VOQ and per-flow inversions from the reorder
//! metric, plus full drainage so the check covers every offered packet.

use proptest::prelude::*;
use sprinklers_sim::engine::{Engine, RunConfig};
use sprinklers_sim::registry;
use sprinklers_sim::spec::{ScenarioSpec, TrafficSpec};

fn run_config() -> RunConfig {
    RunConfig {
        slots: 1_500,
        warmup_slots: 100,
        drain_slots: 4_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ordered_schemes_never_reorder_under_bursty_batched_traffic(
        load in 0.1f64..0.92,
        mean_burst in 2.0f64..48.0,
        seed in 0u64..u64::MAX,
        batch in 1u32..128,
    ) {
        let mut engine = Engine::new();
        for scheme in registry::ORDERED_SCHEMES {
            let spec = ScenarioSpec::new(scheme, 16)
                .with_traffic(TrafficSpec::Bursty {
                    load,
                    peak: 1.0,
                    mean_burst,
                })
                .with_run(run_config())
                .with_seed(seed)
                .with_batch(batch);
            let report = engine.run(&spec).unwrap();
            prop_assert!(
                report.reordering.is_ordered(),
                "{} reordered under bursty load={:.2} burst={:.1} batch={}: \
                 {} VOQ / {} flow inversions",
                scheme, load, mean_burst, batch,
                report.reordering.voq_reorder_events,
                report.reordering.flow_reorder_events,
            );
            // Sanity only: the ordering verdict must rest on real deliveries.
            // (No ratio bound here — UFS and large-stripe Sprinklers configs
            // legitimately strand partial frames/stripes at light load.)
            prop_assert!(
                report.delivered_packets > 0,
                "{} delivered nothing — the ordering check never ran",
                scheme,
            );
        }
    }

    #[test]
    fn ordered_schemes_never_reorder_under_diagonal_batched_traffic(
        load in 0.1f64..0.92,
        seed in 0u64..u64::MAX,
        batch in 1u32..128,
    ) {
        let mut engine = Engine::new();
        for scheme in registry::ORDERED_SCHEMES {
            let spec = ScenarioSpec::new(scheme, 16)
                .with_traffic(TrafficSpec::Diagonal { load })
                .with_run(run_config())
                .with_seed(seed)
                .with_batch(batch);
            let report = engine.run(&spec).unwrap();
            prop_assert!(
                report.reordering.is_ordered(),
                "{} reordered under diagonal load={:.2} batch={}: \
                 {} VOQ / {} flow inversions",
                scheme, load, batch,
                report.reordering.voq_reorder_events,
                report.reordering.flow_reorder_events,
            );
        }
    }
}
