//! Reordering-free invariant fuzzer over the batched hot path.
//!
//! Every scheme that claims `is_reordering_free` must keep that promise for
//! *any* admissible traffic and *any* stepping batch size — the batch path
//! is exactly where a subtle ordering bug would creep in (a hoisted fabric
//! phase off by one, a resequencer probed at the wrong slot).  This suite
//! throws adversarial traffic — saturating on/off bursts and quasi-diagonal
//! concentration, the patterns the paper uses to stress striping (§6) — at
//! every ordered scheme through `Engine::run` with randomized batch sizes,
//! and requires zero per-VOQ and per-flow inversions from the reorder
//! metric, plus full drainage so the check covers every offered packet.

use proptest::prelude::*;
use sprinklers_sim::engine::{Engine, RunConfig};
use sprinklers_sim::registry;
use sprinklers_sim::spec::{ScenarioSpec, TrafficSpec};
use sprinklers_sim::traffic::trace_io::{TraceFormat, TraceMeta, TraceRecord, TraceWriter};
use std::sync::atomic::{AtomicU64, Ordering};

fn run_config() -> RunConfig {
    RunConfig {
        slots: 1_500,
        warmup_slots: 100,
        drain_slots: 4_000,
    }
}

static TRACE_CASE: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ordered_schemes_never_reorder_under_bursty_batched_traffic(
        load in 0.1f64..0.92,
        mean_burst in 2.0f64..48.0,
        seed in 0u64..u64::MAX,
        batch in 1u32..128,
    ) {
        let mut engine = Engine::new();
        for scheme in registry::ORDERED_SCHEMES {
            let spec = ScenarioSpec::new(scheme, 16)
                .with_traffic(TrafficSpec::Bursty {
                    load,
                    peak: 1.0,
                    mean_burst,
                })
                .with_run(run_config())
                .with_seed(seed)
                .with_batch(batch);
            let report = engine.run(&spec).unwrap();
            prop_assert!(
                report.reordering.is_ordered(),
                "{} reordered under bursty load={:.2} burst={:.1} batch={}: \
                 {} VOQ / {} flow inversions",
                scheme, load, mean_burst, batch,
                report.reordering.voq_reorder_events,
                report.reordering.flow_reorder_events,
            );
            // Sanity only: the ordering verdict must rest on real deliveries.
            // (No ratio bound here — UFS and large-stripe Sprinklers configs
            // legitimately strand partial frames/stripes at light load.)
            prop_assert!(
                report.delivered_packets > 0,
                "{} delivered nothing — the ordering check never ran",
                scheme,
            );
        }
    }

    #[test]
    fn ordered_schemes_never_reorder_replaying_trace_files(
        raw in collection::vec((0u64..3, 0usize..16, 0usize..16, 0u64..6), 8..300),
        repeat in 1u32..4,
        scale_pct in 25u32..101,
        fmt in 0usize..2,
        batch in 1u32..128,
    ) {
        // Trace-sourced arrivals through the full disk pipeline: build an
        // admissible random stream, write it to a real trace file (either
        // format), and replay it through `TrafficSpec::Trace` with the
        // repeat/scale knobs engaged.  Ordered schemes must stay inversion-
        // free no matter what the recorded workload looks like.
        let n = 16usize;
        let mut last: Vec<Option<u64>> = vec![None; n];
        let mut slot = 0u64;
        let mut records = Vec::new();
        for &(gap, input, output, flow) in &raw {
            slot += gap;
            if last[input] == Some(slot) {
                continue; // one packet per input per slot
            }
            last[input] = Some(slot);
            records.push(TraceRecord { slot, input, output, flow });
        }
        prop_assume!(!records.is_empty());
        let span = slot + 1;
        // scale <= 1.0 only: compression past line rate is a typed open-time
        // error (covered by unit tests), not a fuzzable replay.
        let scale = f64::from(scale_pct) / 100.0;

        let format = [TraceFormat::Csv, TraceFormat::Sprt][fmt];
        let path = std::env::temp_dir().join(format!(
            "sprinklers-reorder-fuzz-{}-{}.{}",
            std::process::id(),
            TRACE_CASE.fetch_add(1, Ordering::Relaxed),
            format.name(),
        ));
        let meta = TraceMeta { n: Some(n), slots: span, ..TraceMeta::default() };
        let mut writer = TraceWriter::create(&path, format, &meta).unwrap();
        for rec in &records {
            writer.write(rec).unwrap();
        }
        writer.finish().unwrap();

        // Cover the whole effective (repeated + dilated) stream, plus drain.
        let effective_span =
            (span * u64::from(repeat)) as f64 / scale;
        let run = RunConfig {
            slots: effective_span as u64 + 4,
            warmup_slots: 0,
            drain_slots: 4_000,
        };
        let mut engine = Engine::new();
        for scheme in registry::ORDERED_SCHEMES {
            let spec = ScenarioSpec::new(scheme, n)
                .with_traffic(TrafficSpec::Trace {
                    path: path.to_string_lossy().into_owned(),
                    format: Some(format),
                    repeat,
                    scale,
                })
                .with_run(run)
                .with_seed(3)
                .with_batch(batch);
            let report = engine.run(&spec).unwrap();
            prop_assert!(
                report.reordering.is_ordered(),
                "{} reordered replaying a {} trace (repeat={} scale={} batch={}): \
                 {} VOQ / {} flow inversions",
                scheme, format.name(), repeat, scale, batch,
                report.reordering.voq_reorder_events,
                report.reordering.flow_reorder_events,
            );
            prop_assert_eq!(
                report.offered_packets,
                records.len() as u64 * u64::from(repeat),
                "{} lost arrivals from the trace path", scheme
            );
            // Work-conserving OQ must deliver everything it was offered
            // (frame/stripe schemes may legitimately strand partial groups).
            if scheme == "oq" {
                prop_assert_eq!(report.residual_packets, 0, "oq stranded packets");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// The wide-switch variant: n = 128 puts the occupancy bitsets past the
    /// 64-port word boundary, so the ordering guarantee is checked on the
    /// two-level sparse stepping paths (fewer cases and a shorter window —
    /// each case simulates 64× the port-slots of the n = 16 suite).
    #[test]
    fn ordered_schemes_never_reorder_past_the_word_boundary(
        load in 0.1f64..0.9,
        mean_burst in 2.0f64..32.0,
        seed in 0u64..u64::MAX,
        batch in 1u32..192,
    ) {
        let mut engine = Engine::new();
        for scheme in registry::ORDERED_SCHEMES {
            // Fixed(4) stripes so Sprinklers actually completes stripes in
            // the short window (matrix sizing at n=128 would ask for
            // full-span stripes no VOQ can fill here); the frame-based
            // baselines ignore the sizing spec.
            let spec = ScenarioSpec::new(scheme, 128)
                .with_sizing(sprinklers_sim::spec::SizingSpec::Fixed(4))
                .with_traffic(TrafficSpec::Bursty {
                    load,
                    peak: 1.0,
                    mean_burst,
                })
                .with_run(RunConfig {
                    slots: 600,
                    warmup_slots: 50,
                    drain_slots: 2_500,
                })
                .with_seed(seed)
                .with_batch(batch);
            let report = engine.run(&spec).unwrap();
            prop_assert!(
                report.reordering.is_ordered(),
                "{} reordered at n=128 under bursty load={:.2} burst={:.1} batch={}: \
                 {} VOQ / {} flow inversions",
                scheme, load, mean_burst, batch,
                report.reordering.voq_reorder_events,
                report.reordering.flow_reorder_events,
            );
            // UFS/PF legitimately strand everything below a full frame (or
            // the padding threshold) in a window this short at n=128.
            if !matches!(scheme, "ufs" | "padded-frames") {
                prop_assert!(
                    report.delivered_packets > 0,
                    "{} delivered nothing at n=128 — the ordering check never ran",
                    scheme,
                );
            }
        }
    }

    #[test]
    fn ordered_schemes_never_reorder_under_diagonal_batched_traffic(
        load in 0.1f64..0.92,
        seed in 0u64..u64::MAX,
        batch in 1u32..128,
    ) {
        let mut engine = Engine::new();
        for scheme in registry::ORDERED_SCHEMES {
            let spec = ScenarioSpec::new(scheme, 16)
                .with_traffic(TrafficSpec::Diagonal { load })
                .with_run(run_config())
                .with_seed(seed)
                .with_batch(batch);
            let report = engine.run(&spec).unwrap();
            prop_assert!(
                report.reordering.is_ordered(),
                "{} reordered under diagonal load={:.2} batch={}: \
                 {} VOQ / {} flow inversions",
                scheme, load, batch,
                report.reordering.voq_reorder_events,
                report.reordering.flow_reorder_events,
            );
        }
    }
}
