//! End-to-end properties of multi-switch fabrics.
//!
//! Three claims from the fabric layer are pinned here:
//!
//! 1. **Reorder freedom** — Sprinklers-style edge striping (`stripe`
//!    routing: per host pair, a run of packets holds one random path and
//!    only re-randomizes when the pair has nothing in flight) combined with
//!    order-preserving node schemes delivers every packet in VOQ order
//!    *end to end*, across both topology kinds, many seeds and loads.
//! 2. **The metric engages** — per-packet random routing does reorder
//!    under the same contention, so ordered fabrics aren't vacuous.
//! 3. **Determinism** — worker count, per-node thread count and engine
//!    batch size are pure performance knobs for fabrics too: the CSV row
//!    and the full metrics JSON are byte-identical at every combination.
//! 4. **Reconvergence safety** — claims 1 and 3 survive fault injection:
//!    striped fabrics stay reorder-free under random link-failure
//!    schedules (survivor traffic is never inverted by a path change),
//!    every loss is typed (delivered + dropped + residual == offered), and
//!    faulted runs stay byte-identical across workers/threads/batch.

use proptest::prelude::*;
use sprinklers_sim::engine::RunConfig;
use sprinklers_sim::prelude::*;

/// A small admissible fat-tree whose node sizes are powers of two (edge
/// nodes 4+4 = 8 ports, cores 2), so Sprinklers can run at every node.
/// Remote demand per edge at load 0.5 is 4·0.5·½ = 1 packet/slot against a
/// 4-wide uplink trunk.
fn fat_tree(routing: RoutingSpec) -> TopologySpec {
    TopologySpec::FatTree2 {
        edges: 2,
        cores: 4,
        hosts_per_edge: 4,
        routing,
        link: LinkSpec { latency: 2, gap: 1 },
    }
}

/// A 4-switch flattened butterfly, 5 hosts each: 5 + 3 = 8-port nodes.
/// Loads stay ≤ 0.35 here — Valiant-style two-hop detours double link
/// usage, and each switch has only 3 unit-rate mesh links.
fn butterfly(routing: RoutingSpec) -> TopologySpec {
    TopologySpec::Butterfly {
        switches: 4,
        hosts_per_switch: 5,
        routing,
        link: LinkSpec { latency: 1, gap: 1 },
    }
}

fn fabric_spec(topo: TopologySpec, scheme: &str, load: f64, seed: u64) -> ScenarioSpec {
    ScenarioSpec::new(scheme, topo.hosts())
        .with_topology(topo)
        .with_traffic(TrafficSpec::Uniform { load })
        .with_run(RunConfig {
            slots: 4_000,
            warmup_slots: 400,
            drain_slots: 30_000,
        })
        .with_seed(seed)
}

#[test]
fn striped_fabrics_are_reorder_free_end_to_end() {
    // The tentpole ordering claim, fuzzed over topology kind, node scheme,
    // seed and load.  `oq` and `sprinklers` nodes are both order-preserving,
    // so any end-to-end inversion would be the *fabric's* fault: a stripe
    // that changed path while packets were still in flight.
    let mut engine = Engine::new();
    for (topo, loads) in [
        (fat_tree(RoutingSpec::Stripe), [0.3, 0.55]),
        (butterfly(RoutingSpec::Stripe), [0.2, 0.35]),
    ] {
        for scheme in ["oq", "sprinklers"] {
            for seed in [1u64, 7, 42] {
                for load in loads {
                    let spec = fabric_spec(topo.clone(), scheme, load, seed);
                    let report = engine.run(&spec).unwrap();
                    let tag = format!("{} seed={seed} load={load}", report.switch_name);
                    assert!(
                        report.reordering.is_ordered(),
                        "striped fabric reordered: {tag}"
                    );
                    // Work-conserving OQ nodes must drain completely;
                    // Sprinklers nodes may hold partial stripes at the end
                    // of the drain (exactly as a single switch does), so
                    // there we bound the leftovers instead.
                    if scheme == "oq" {
                        assert_eq!(report.residual_packets, 0, "packets stuck: {tag}");
                    } else {
                        assert!(report.delivery_ratio() > 0.9, "fabric stalled: {tag}");
                    }
                    assert!(report.offered_packets > 0, "no traffic: {tag}");
                }
            }
        }
    }
}

#[test]
fn ecmp_fabrics_are_reorder_free_too() {
    // One path per host pair is trivially ordered; cheap cross-check that
    // the per-hop rewrite itself never scrambles a VOQ.
    let mut engine = Engine::new();
    for topo in [
        fat_tree(RoutingSpec::EcmpHash),
        butterfly(RoutingSpec::EcmpHash),
    ] {
        let report = engine.run(&fabric_spec(topo, "oq", 0.4, 9)).unwrap();
        assert!(report.reordering.is_ordered());
        assert_eq!(report.residual_packets, 0);
    }
}

#[test]
fn random_routing_reorders_under_contention() {
    // The negative control: independent per-packet path choice races the
    // same VOQ down unequal queues, so end-to-end inversions must appear.
    // If this ever passes ordered, the reorder metric is not measuring the
    // fabric path.  Two cores only, so the uplinks actually queue.
    let topo = TopologySpec::FatTree2 {
        edges: 2,
        cores: 2,
        hosts_per_edge: 4,
        routing: RoutingSpec::RandomPacket,
        link: LinkSpec { latency: 2, gap: 1 },
    };
    let spec = fabric_spec(topo, "oq", 0.6, 3);
    let report = Engine::new().run(&spec).unwrap();
    assert!(
        report.reordering.voq_reorder_events > 0,
        "random per-packet routing should reorder at load 0.5"
    );
    assert_eq!(report.residual_packets, 0);
}

#[test]
fn fabric_delay_includes_the_wire_latency() {
    // Remote traffic crosses three switches and two wires of latency 2, so
    // even the minimum end-to-end delay must exceed a single switch's.
    let spec = fabric_spec(fat_tree(RoutingSpec::Stripe), "oq", 0.3, 5);
    let report = Engine::new().run(&spec).unwrap();
    // min delay over remote packets is 3 + 2·2 = 7; local pairs dilute the
    // mean but half the uniform traffic is remote here.
    assert!(
        report.delay.mean() > 2.0,
        "mean delay {} should reflect multi-hop paths",
        report.delay.mean()
    );
    assert!(report.delay.count() > 0);
}

/// A random link-failure schedule whose recovery time is short against the
/// drain, so every down link comes back well before the run ends.
fn random_faults(seed: u64) -> FaultSpec {
    FaultSpec {
        events: vec![],
        random: Some(RandomFaultSpec {
            mtbf: 1_200,
            mttr: 60,
            seed,
        }),
    }
}

#[test]
fn striped_fabrics_stay_reorder_free_under_random_failures() {
    // The tentpole reconvergence claim: random link failures force stripes
    // off dead paths mid-run, and the park-until-drained discipline must
    // keep every *surviving* packet in VOQ order end to end.  Fuzzed over
    // both topology kinds, both order-preserving node schemes and several
    // fault seeds.
    let mut engine = Engine::new();
    for (topo, load) in [
        (fat_tree(RoutingSpec::Stripe), 0.4),
        (butterfly(RoutingSpec::Stripe), 0.25),
    ] {
        for scheme in ["oq", "sprinklers"] {
            for fault_seed in [1u64, 9, 77] {
                let spec = fabric_spec(topo.clone(), scheme, load, 42)
                    .with_faults(random_faults(fault_seed));
                let report = engine.run(&spec).unwrap();
                let tag = format!("{} fault_seed={fault_seed}", report.switch_name);
                assert!(
                    report.reordering.is_ordered(),
                    "faulted striped fabric reordered survivors: {tag}"
                );
                assert!(
                    report.dropped_packets > 0,
                    "mtbf 1200 over 4000 slots must cost packets: {tag}"
                );
                // Conservation: every offered packet is delivered, typed-
                // dropped, or residual (parked/queued at run end) — never
                // silently lost.
                assert_eq!(
                    report.offered_packets,
                    report.delivered_packets + report.dropped_packets + report.residual_packets,
                    "conservation violated: {tag}"
                );
                if scheme == "oq" {
                    // Links recover fast (mttr 60 « drain 30k), so work-
                    // conserving nodes still drain every survivor.
                    assert_eq!(report.residual_packets, 0, "survivors stuck: {tag}");
                }
                let faults = report.faults.as_ref().expect("faulted report");
                assert_eq!(faults.total_dropped(), report.dropped_packets, "{tag}");
                assert!(!faults.events.is_empty(), "{tag}");
            }
        }
    }
}

#[test]
fn random_routing_still_reorders_under_failures() {
    // Negative control for the faulted fuzz: per-packet random routing
    // reorders with or without failures, so the ordered faulted runs above
    // aren't vacuous (the reorder metric still engages on faulted fabrics).
    let topo = TopologySpec::FatTree2 {
        edges: 2,
        cores: 2,
        hosts_per_edge: 4,
        routing: RoutingSpec::RandomPacket,
        link: LinkSpec { latency: 2, gap: 1 },
    };
    let spec = fabric_spec(topo, "oq", 0.6, 3).with_faults(random_faults(5));
    let report = Engine::new().run(&spec).unwrap();
    assert!(
        report.reordering.voq_reorder_events > 0,
        "random per-packet routing should reorder under failures too"
    );
}

#[test]
fn scripted_faults_report_typed_losses_and_reconvergence() {
    // A deterministic scripted schedule on the fat-tree: cut one core
    // uplink mid-run, heal it, then bounce a core switch.  The report must
    // carry one tracker per event and only typed losses.
    let spec = fabric_spec(fat_tree(RoutingSpec::Stripe), "oq", 0.4, 11).with_faults(FaultSpec {
        events: vec![
            FaultEventSpec {
                slot: 500,
                kind: FaultKind::LinkDown,
                index: 0,
            },
            FaultEventSpec {
                slot: 1_500,
                kind: FaultKind::LinkUp,
                index: 0,
            },
            FaultEventSpec {
                slot: 2_000,
                kind: FaultKind::NodeDown,
                index: 2,
            },
            FaultEventSpec {
                slot: 2_600,
                kind: FaultKind::NodeUp,
                index: 2,
            },
        ],
        random: None,
    });
    let report = Engine::new().run(&spec).unwrap();
    assert!(report.reordering.is_ordered());
    let faults = report.faults.as_ref().expect("faulted report");
    assert_eq!(faults.events.len(), 4);
    assert_eq!(
        report.offered_packets,
        report.delivered_packets + report.dropped_packets + report.residual_packets
    );
    // The link-down flushes wire traffic at load 0.4; its victims must
    // resume within the run (the metric is slots *after* the event).
    let cut = &faults.events[0];
    assert_eq!(cut.slot, 500);
    assert!(cut.dropped > 0, "a loaded uplink holds packets at slot 500");
    let reconverged = cut.reconverged_slot.expect("survivor pairs resume");
    assert!(
        reconverged >= cut.slot && reconverged < 4_000,
        "reconvergence at {reconverged} should land inside the run"
    );
    // Both up events cost nothing and reconverge trivially.
    assert_eq!(faults.events[1].dropped, 0);
    assert_eq!(faults.events[1].reconverged_slot, Some(1_500));
    // The metrics sidecar carries the whole block.
    let json = report.metrics_json();
    assert!(json.contains("\"faults\":{\"dropped_by_cause\""));
    assert!(json.contains("\"reconvergence_slots\""));
}

#[test]
fn faulted_fabrics_are_byte_identical_across_workers_threads_and_batch() {
    // Determinism is the whole point of *deterministic* fault injection:
    // a faulted run is as byte-stable as a healthy one at every perf-knob
    // combination, including the full metrics JSON (fault block included).
    let base = fabric_spec(fat_tree(RoutingSpec::Stripe), "sprinklers", 0.45, 7)
        .with_run(RunConfig {
            slots: 1_500,
            warmup_slots: 150,
            drain_slots: 12_000,
        })
        .with_faults(FaultSpec {
            events: vec![FaultEventSpec {
                slot: 400,
                kind: FaultKind::NodeDown,
                index: 2,
            }],
            random: Some(RandomFaultSpec {
                mtbf: 700,
                mttr: 50,
                seed: 3,
            }),
        });
    let reference = Engine::new()
        .run(&base.clone().with_batch(1).with_threads(1))
        .unwrap();
    assert!(
        reference.dropped_packets > 0,
        "the schedule must actually bite"
    );
    let want_row = reference.csv_row();
    let want_json = reference.metrics_json();
    for workers in [1usize, 4] {
        for threads in [1u32, 4] {
            for batch in [1u32, 64] {
                let spec = base.clone().with_batch(batch).with_threads(threads);
                let got = &run_specs_parallel_ok(&[spec], workers).unwrap()[0];
                assert_eq!(
                    got.csv_row(),
                    want_row,
                    "csv diverged at workers={workers} threads={threads} batch={batch}"
                );
                assert_eq!(
                    got.metrics_json(),
                    want_json,
                    "metrics diverged at workers={workers} threads={threads} batch={batch}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Workers × threads × batch are pure perf knobs for fabric scenarios:
    /// the merged CSV row and the full metrics JSON never move by a byte.
    #[test]
    fn fabric_parity_across_workers_threads_and_batch(
        seed in 0u64..1_000,
        stripe in 0u32..2,
    ) {
        let routing = if stripe == 1 { RoutingSpec::Stripe } else { RoutingSpec::RandomPacket };
        let base = fabric_spec(fat_tree(routing), "sprinklers", 0.45, seed)
            .with_run(RunConfig { slots: 1_500, warmup_slots: 150, drain_slots: 12_000 });

        // Reference: serial, slot-at-a-time.
        let reference = Engine::new()
            .run(&base.clone().with_batch(1).with_threads(1))
            .unwrap();
        let want_row = reference.csv_row();
        let want_json = reference.metrics_json();

        for workers in [1usize, 4] {
            for threads in [1u32, 4] {
                for batch in [1u32, 64] {
                    let spec = base.clone().with_batch(batch).with_threads(threads);
                    let got = &run_specs_parallel_ok(&[spec], workers).unwrap()[0];
                    prop_assert_eq!(
                        got.csv_row(),
                        want_row.clone(),
                        "csv diverged at workers={} threads={} batch={}",
                        workers, threads, batch
                    );
                    prop_assert_eq!(
                        got.metrics_json(),
                        want_json.clone(),
                        "metrics diverged at workers={} threads={} batch={}",
                        workers, threads, batch
                    );
                }
            }
        }
    }
}
