//! Property tests for the `ScenarioSpec` JSON round-trip.
//!
//! The scenario files the `suite` runner consumes are produced and parsed by
//! the hand-rolled JSON in `spec.rs` (the offline serde shims are marker
//! traits), so `parse(serialize(spec)) == spec` has to hold over the whole
//! spec space, not just the handful of examples the unit tests pin.  These
//! properties randomize every field — scheme (including hostile names),
//! size, sizing mode, all five traffic patterns, run lengths and seeds —
//! and also assert the *rejection* side: truncated or corrupted documents
//! must fail to parse, never silently mis-parse.

use proptest::prelude::*;
use sprinklers_sim::engine::RunConfig;
use sprinklers_sim::registry;
use sprinklers_sim::spec::{ScenarioSpec, SizingSpec, TrafficSpec};

/// Build a spec from randomized raw draws.  Index-based selection keeps the
/// strategy surface inside what the proptest shim supports (ranges/tuples);
/// one parameter per drawn value is the point, hence the argument count.
#[allow(clippy::too_many_arguments)]
fn spec_from_draws(
    scheme_idx: usize,
    n: usize,
    sizing_idx: usize,
    fixed_size: usize,
    traffic_idx: usize,
    load: f64,
    aux_a: f64,
    aux_b: f64,
    run: (u64, u64, u64),
    seed: u64,
) -> ScenarioSpec {
    // Registry names plus hostile strings the escaper must survive.
    let hostile = ["quo\"te", "back\\slash", "new\nline", "tab\there"];
    let scheme: &str = if scheme_idx < registry::schemes().len() {
        registry::schemes()[scheme_idx]
    } else {
        hostile[(scheme_idx - registry::schemes().len()) % hostile.len()]
    };
    let sizing = match sizing_idx % 3 {
        0 => SizingSpec::Matrix,
        1 => SizingSpec::Adaptive,
        _ => SizingSpec::Fixed(fixed_size),
    };
    let traffic = match traffic_idx % 7 {
        0 => TrafficSpec::Uniform { load },
        1 => TrafficSpec::Diagonal { load },
        2 => TrafficSpec::Hotspot {
            load,
            hot_fraction: aux_a,
        },
        3 => TrafficSpec::Bursty {
            load,
            peak: aux_a,
            mean_burst: 1.0 + aux_b * 100.0,
        },
        4 => TrafficSpec::Flows {
            load,
            mean_flow_len: 1.0 + aux_b * 50.0,
        },
        5 => TrafficSpec::trace(format!("traces/capture-{fixed_size}.sprt")),
        _ => TrafficSpec::Trace {
            // Hostile path exercising the JSON string escaper.
            path: format!("dir with \"quotes\"\\and\\tabs\t{fixed_size}.csv"),
            format: Some(if fixed_size.is_multiple_of(2) {
                sprinklers_sim::traffic::trace_io::TraceFormat::Csv
            } else {
                sprinklers_sim::traffic::trace_io::TraceFormat::Sprt
            }),
            repeat: fixed_size as u32,
            scale: 0.25 + aux_b * 3.0,
        },
    };
    ScenarioSpec::new(scheme, n)
        .with_sizing(sizing)
        .with_traffic(traffic)
        .with_run(RunConfig {
            slots: run.0,
            warmup_slots: run.1,
            drain_slots: run.2,
        })
        .with_seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn json_round_trip_is_the_identity(
        scheme_idx in 0usize..14,
        n in 2usize..512,
        sizing_idx in 0usize..3,
        fixed_size in 1usize..64,
        traffic_idx in 0usize..7,
        load in 0.01f64..0.99,
        aux_a in 0.05f64..1.0,
        aux_b in 0.0f64..1.0,
        run in (0u64..200_000, 0u64..50_000, 0u64..100_000),
        seed in 0u64..u64::MAX,
    ) {
        let spec = spec_from_draws(
            scheme_idx, n, sizing_idx, fixed_size, traffic_idx,
            load, aux_a, aux_b, run, seed,
        );
        let json = spec.to_json();
        let parsed = ScenarioSpec::from_json(&json);
        prop_assert!(parsed.is_ok(), "serialize produced unparseable JSON: {json}");
        prop_assert_eq!(parsed.unwrap(), spec);
    }

    #[test]
    fn serialization_is_deterministic(
        scheme_idx in 0usize..14,
        n in 2usize..128,
        traffic_idx in 0usize..7,
        load in 0.01f64..0.99,
        seed in 0u64..u64::MAX,
    ) {
        let spec = spec_from_draws(
            scheme_idx, n, 0, 1, traffic_idx, load, 0.5, 0.5, (1000, 100, 1000), seed,
        );
        prop_assert_eq!(spec.to_json(), spec.clone().to_json());
    }

    #[test]
    fn every_strict_prefix_is_rejected(
        scheme_idx in 0usize..14,
        n in 2usize..64,
        traffic_idx in 0usize..7,
        load in 0.01f64..0.99,
        cut in 0.0f64..1.0,
    ) {
        // A truncated spec document must never parse: the top-level object's
        // closing brace is always last, so any strict prefix is unbalanced.
        let spec = spec_from_draws(
            scheme_idx, n, 0, 1, traffic_idx, load, 0.5, 0.5, (1000, 100, 1000), 1,
        );
        let json = spec.to_json();
        let mut end = ((json.len() as f64) * cut) as usize;
        while end > 0 && !json.is_char_boundary(end) {
            end -= 1;
        }
        prop_assume!(end < json.len());
        prop_assert!(
            ScenarioSpec::from_json(&json[..end]).is_err(),
            "prefix of length {end} parsed"
        );
    }

    #[test]
    fn corrupted_key_names_are_rejected(
        n in 2usize..64,
        load in 0.01f64..0.99,
        victim in 0usize..4,
    ) {
        // Renaming any required/known key must produce an error (unknown
        // keys are rejected, and scheme/n are mandatory).
        let spec = ScenarioSpec::new("oq", n).with_traffic(TrafficSpec::Uniform { load });
        let json = spec.to_json();
        let key = ["\"scheme\"", "\"n\"", "\"traffic\"", "\"seed\""][victim];
        let broken = json.replacen(key, "\"bogus_key\"", 1);
        prop_assert!(broken != json, "key {key} not present in {json}");
        prop_assert!(ScenarioSpec::from_json(&broken).is_err());
    }
}

#[test]
fn structurally_malformed_documents_are_rejected() {
    for bad in [
        "",
        "{",
        "}",
        "null",
        "[1,2,3]",
        "true",
        r#"{"scheme": "oq"}"#,                   // missing n
        r#"{"n": 8}"#,                           // missing scheme
        r#"{"scheme": "oq", "n": "eight"}"#,     // wrong type
        r#"{"scheme": "oq", "n": 8} trailing"#,  // trailing garbage
        r#"{"scheme": "oq", "n": 8, "run": 3}"#, // run not an object
        r#"{"scheme": "oq", "n": 8, "sizing": {"mode": "warp"}}"#,
        r#"{"scheme": "oq", "n": 8, "traffic": {"pattern": "psychic", "load": 0.5}}"#,
    ] {
        assert!(
            ScenarioSpec::from_json(bad).is_err(),
            "malformed document parsed: {bad}"
        );
    }
}
