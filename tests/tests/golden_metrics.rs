//! Golden snapshot tests for the suite runner's merged CSV.
//!
//! `tests/fixtures/smoke_quick.csv` is the checked-in output of running the
//! `specs/smoke` suite with the quick run configuration (exactly what the CI
//! smoke jobs execute).  Reproducing it byte for byte pins *every* number
//! the metrics pipeline emits — delays, percentiles, reorder counts,
//! occupancy — so any future hot-path change that silently perturbs
//! simulation results (a hoisted computation that drifts by one slot, a
//! resequencer probed at the wrong time) fails loudly here instead of
//! shipping as a quiet scientific regression.
//!
//! To regenerate after an *intentional* semantic change:
//!
//! ```text
//! cargo run --release -p sprinklers-bench --bin suite -- \
//!     --dir specs/smoke --quick --out tests/fixtures/smoke_quick.csv
//! ```

use sprinklers_sim::engine::RunConfig;
use sprinklers_sim::parallel::run_specs_parallel;
use sprinklers_sim::report::{merge_csv, SimReport};
use sprinklers_sim::spec::{ScenarioSpec, SuiteSpec};

const GOLDEN: &str = include_str!("../fixtures/smoke_quick.csv");

fn smoke_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../specs/smoke")
}

/// Run the smoke suite exactly as `suite --dir specs/smoke --quick` does.
fn run_suite(suite: SuiteSpec, workers: usize) -> String {
    let mut cases = suite.load_cases().expect("specs/smoke loads");
    for case in &mut cases {
        case.spec.run = RunConfig::quick();
    }
    let specs: Vec<ScenarioSpec> = cases.iter().map(|c| c.spec.clone()).collect();
    let reports: Vec<SimReport> = run_specs_parallel(&specs, workers)
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("every smoke case runs");
    merge_csv(cases.iter().map(|c| c.name.as_str()).zip(reports.iter()))
}

#[test]
fn smoke_suite_reproduces_the_golden_csv() {
    for workers in [1, 2] {
        let csv = run_suite(SuiteSpec::new(smoke_dir()), workers);
        assert_eq!(
            csv, GOLDEN,
            "merged CSV diverged from tests/fixtures/smoke_quick.csv at \
             workers={workers}; if the change is intentional, regenerate the \
             fixture (see module docs)"
        );
    }
}

#[test]
fn batch_override_cannot_perturb_the_golden_csv() {
    // The in-test mirror of the batch-parity CI job: stepping batch size is
    // a pure performance knob, so even extreme values must reproduce the
    // snapshot byte for byte.
    for batch in [1u32, 2, 64, 512] {
        let csv = run_suite(SuiteSpec::new(smoke_dir()).with_batch(batch), 2);
        assert_eq!(csv, GOLDEN, "batch={batch} changed the merged CSV");
    }
}
