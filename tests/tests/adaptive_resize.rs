//! Adaptive stripe sizing end to end: stripe sizes track load changes through
//! the clearance phase, and packet order is preserved across every resize.

use sprinklers_core::config::{AdaptiveSizing, SizingMode, SprinklersConfig};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::sprinklers::SprinklersSwitch;
use sprinklers_core::switch::{NullSink, Switch};
use sprinklers_sim::metrics::reorder::ReorderDetector;
use sprinklers_sim::traffic::bernoulli::BernoulliTraffic;
use sprinklers_sim::traffic::TrafficGenerator;

fn adaptive_switch(n: usize, window: u64) -> SprinklersSwitch {
    SprinklersSwitch::new(
        SprinklersConfig::new(n).with_sizing(SizingMode::Adaptive(AdaptiveSizing {
            window,
            gamma: 0.8,
            patience: 1,
            initial_size: 1,
        })),
        9,
    )
}

#[test]
fn stripe_sizes_grow_under_load_and_shrink_when_idle() {
    let n = 16;
    let mut sw = adaptive_switch(n, 256);
    let mut gen = BernoulliTraffic::uniform(n, 0.9, 17);
    let mut voq_seq = vec![0u64; n * n];
    // Phase 1: heavy uniform load.  Expected stripe size F(0.9/16) = 16.
    for slot in 0..20_000u64 {
        for mut p in gen.arrivals(slot) {
            let key = p.input() * n + p.output();
            p.voq_seq = voq_seq[key];
            voq_seq[key] += 1;
            sw.arrive(p);
        }
        sw.step(slot, &mut NullSink);
    }
    let grown = sw.voq_stripe_size(0, 0);
    assert!(
        grown >= 8,
        "heavily loaded VOQ should have grown its stripe (got {grown})"
    );

    // Phase 2: silence.  Every VOQ should shrink back to unit stripes.
    for slot in 20_000..80_000u64 {
        sw.step(slot, &mut NullSink);
    }
    assert_eq!(
        sw.voq_stripe_size(0, 0),
        1,
        "idle VOQ should shrink back to 1"
    );
    assert!(sw.total_resizes() > 0);
}

#[test]
fn no_reordering_across_a_load_shift() {
    let n = 16;
    let mut sw = adaptive_switch(n, 512);
    let mut detector = ReorderDetector::new();
    let mut deliveries = Vec::new();
    let mut voq_seq = vec![0u64; n * n];
    let mut light = BernoulliTraffic::uniform(n, 0.15, 3);
    let mut heavy = BernoulliTraffic::uniform(n, 0.85, 4);
    let mut offered = 0u64;
    let mut delivered = 0u64;
    for slot in 0..90_000u64 {
        if slot < 60_000 {
            let arrivals = if slot < 30_000 {
                light.arrivals(slot)
            } else {
                heavy.arrivals(slot)
            };
            for mut p in arrivals {
                let key = p.input() * n + p.output();
                p.voq_seq = voq_seq[key];
                voq_seq[key] += 1;
                p.arrival_slot = slot;
                offered += 1;
                sw.arrive(p);
            }
        }
        deliveries.clear();
        sw.step(slot, &mut deliveries);
        for d in &deliveries {
            delivered += 1;
            detector.observe(&d.packet);
        }
    }
    assert_eq!(
        detector.stats().voq_reorder_events,
        0,
        "resizing across the load shift reordered packets"
    );
    assert!(
        delivered as f64 > offered as f64 * 0.9,
        "only {delivered}/{offered} packets delivered"
    );
    assert!(
        sw.total_resizes() > 0,
        "the load shift should have triggered resizes"
    );
}

#[test]
fn explicit_reconfiguration_preserves_order_mid_traffic() {
    let n = 8;
    let initial = TrafficMatrix::uniform(n, 0.2);
    let mut sw = SprinklersSwitch::new(
        SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(initial)),
        5,
    );
    let mut gen = BernoulliTraffic::uniform(n, 0.7, 12);
    let mut detector = ReorderDetector::new();
    let mut deliveries = Vec::new();
    let mut voq_seq = vec![0u64; n * n];
    for slot in 0..30_000u64 {
        if slot == 10_000 {
            // Operator pushes a new traffic matrix while packets are in flight.
            sw.reconfigure_from_matrix(&TrafficMatrix::uniform(n, 0.7));
        }
        if slot < 20_000 {
            for mut p in gen.arrivals(slot) {
                let key = p.input() * n + p.output();
                p.voq_seq = voq_seq[key];
                voq_seq[key] += 1;
                p.arrival_slot = slot;
                sw.arrive(p);
            }
        }
        deliveries.clear();
        sw.step(slot, &mut deliveries);
        for d in &deliveries {
            detector.observe(&d.packet);
        }
    }
    assert_eq!(detector.stats().voq_reorder_events, 0);
    assert!(
        sw.total_resizes() > 0,
        "the reconfiguration should have changed stripe sizes"
    );
}

#[test]
fn adaptive_and_matrix_sizing_converge_to_the_same_sizes() {
    let n = 16;
    let load = 0.8;
    // Matrix-driven sizes.
    let matrix = TrafficMatrix::uniform(n, load);
    let reference = SprinklersSwitch::new(
        SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(matrix)),
        1,
    );
    let expected = reference.voq_stripe_size(3, 3);

    // Adaptive sizes after enough measurement windows.
    let mut sw = adaptive_switch(n, 256);
    let mut gen = BernoulliTraffic::uniform(n, load, 77);
    let mut voq_seq = vec![0u64; n * n];
    for slot in 0..40_000u64 {
        for mut p in gen.arrivals(slot) {
            let key = p.input() * n + p.output();
            p.voq_seq = voq_seq[key];
            voq_seq[key] += 1;
            sw.arrive(p);
        }
        sw.step(slot, &mut NullSink);
    }
    let adaptive = sw.voq_stripe_size(3, 3);
    assert!(
        adaptive == expected || adaptive == expected * 2 || adaptive * 2 == expected,
        "adaptive size {adaptive} should be within one power of two of the matrix-driven size {expected}"
    );
}
