//! Trait-level conformance suite for every scheme in the registry.
//!
//! Nothing in this file names an individual scheme except the harness
//! sanity checks: every test iterates [`registry::schemes`], so a newly
//! registered scheme is covered automatically the moment it lands in the
//! registry — the contract checks, the engine round-trip *and* its
//! [`registry::is_reordering_free`] claim.
//!
//! Every switch the registry can build must honour the `Switch` contract
//! through the sink path:
//!
//! * **Conservation** — no packet is lost or duplicated: everything offered
//!   is either delivered through the sink or still queued (per `stats()`),
//!   and delivered ids are unique.
//! * **Output line rate** — at most one packet per output port per slot.
//! * **Ordering** — schemes that promise reordering-free delivery
//!   (`registry::is_reordering_free`) never emit a VOQ-reordered packet.
//!
//! The checks observe the switch exclusively through a custom
//! [`DeliverySink`], so they exercise exactly the interface the engine uses.

use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::{DeliveredPacket, Packet};
use sprinklers_core::switch::{DeliverySink, Switch};
use sprinklers_sim::engine::{Engine, RunConfig};
use sprinklers_sim::metrics::reorder::ReorderDetector;
use sprinklers_sim::registry;
use sprinklers_sim::spec::{ScenarioSpec, SizingSpec, TrafficSpec};
use sprinklers_sim::traffic::flows::FlowTraffic;
use sprinklers_sim::traffic::TrafficGenerator;
use std::collections::HashSet;

/// A sink that checks the per-slot delivery contract as packets arrive.
struct ConformanceSink {
    n: usize,
    slot: u64,
    /// Outputs that already received a packet in the current slot.
    outputs_this_slot: Vec<bool>,
    seen_ids: HashSet<u64>,
    reorder: ReorderDetector,
    delivered: u64,
    padding: u64,
    violations: Vec<String>,
}

impl ConformanceSink {
    fn new(n: usize) -> Self {
        ConformanceSink {
            n,
            slot: 0,
            outputs_this_slot: vec![false; n],
            seen_ids: HashSet::new(),
            reorder: ReorderDetector::new(),
            delivered: 0,
            padding: 0,
            violations: Vec::new(),
        }
    }

    /// Start a new slot: reset the per-output flags.
    fn begin_slot(&mut self, slot: u64) {
        self.slot = slot;
        self.outputs_this_slot.iter_mut().for_each(|b| *b = false);
    }
}

impl DeliverySink for ConformanceSink {
    fn deliver(&mut self, d: DeliveredPacket) {
        if d.departure_slot != self.slot {
            self.violations.push(format!(
                "delivery stamped slot {} during slot {}",
                d.departure_slot, self.slot
            ));
        }
        let output = d.packet.output();
        if output >= self.n {
            self.violations
                .push(format!("output {output} out of range"));
            return;
        }
        if self.outputs_this_slot[output] {
            self.violations.push(format!(
                "two deliveries to output {output} in slot {}",
                self.slot
            ));
        }
        self.outputs_this_slot[output] = true;
        if d.packet.is_padding() {
            self.padding += 1;
            return;
        }
        if !self.seen_ids.insert(d.packet.id) {
            self.violations
                .push(format!("packet id {} delivered twice", d.packet.id));
        }
        self.delivered += 1;
        self.reorder.observe(&d.packet);
    }
}

/// Drive `switch` against flow-structured traffic at `load` through the
/// sink, checking the contract on every slot.  Returns (offered, sink).
fn drive_conformance(
    switch: &mut dyn Switch,
    load: f64,
    seed: u64,
    slots: u64,
    drain: u64,
) -> (u64, ConformanceSink) {
    let n = switch.n();
    // Flow-rich traffic so the TCP-hashing baseline spreads over paths; every
    // other scheme ignores the flow ids.
    let mut traffic = FlowTraffic::uniform(n, load, 10.0, seed);
    let mut sink = ConformanceSink::new(n);
    let mut voq_seq = vec![0u64; n * n];
    let mut arrivals: Vec<Packet> = Vec::with_capacity(n);
    let mut offered = 0u64;
    let mut next_id = 0u64;
    for slot in 0..slots + drain {
        if slot < slots {
            arrivals.clear();
            traffic.arrivals_into(slot, &mut arrivals);
            for mut p in arrivals.drain(..) {
                let key = p.input() * n + p.output();
                p.voq_seq = voq_seq[key];
                voq_seq[key] += 1;
                p.id = next_id;
                next_id += 1;
                offered += 1;
                switch.arrive(p);
            }
        }
        sink.begin_slot(slot);
        switch.step(slot, &mut sink);
    }
    (offered, sink)
}

/// Build a registry scheme at size `n` with matrix sizing, uniform load.
fn build(scheme: &str, n: usize, load: f64, seed: u64) -> Box<dyn Switch> {
    let matrix = TrafficMatrix::uniform(n, load);
    registry::build_named(scheme, n, &SizingSpec::Matrix, &matrix, seed)
        .unwrap_or_else(|e| panic!("registry refused to build '{scheme}': {e}"))
}

#[test]
fn registry_scheme_list_is_well_formed() {
    let schemes = registry::schemes();
    assert!(schemes.len() >= 7, "registry lost schemes");
    let unique: HashSet<&str> = schemes.iter().copied().collect();
    assert_eq!(unique.len(), schemes.len(), "duplicate scheme names");
    assert!(schemes.iter().all(|s| !s.is_empty()));
    // Every name the ordering claim mentions must actually be buildable.
    for scheme in schemes {
        let sw = build(scheme, 8, 0.5, 3);
        assert_eq!(sw.n(), 8, "{scheme}");
        assert!(!sw.name().is_empty(), "{scheme}");
    }
}

#[test]
fn every_scheme_satisfies_the_sink_contract() {
    let n = 8;
    for scheme in registry::schemes() {
        let mut switch = build(scheme, n, 0.6, 11);
        let (offered, sink) = drive_conformance(switch.as_mut(), 0.6, 31, 4_000, 12_000);

        assert!(
            sink.violations.is_empty(),
            "{scheme}: {:?}",
            &sink.violations[..sink.violations.len().min(5)]
        );

        // Conservation: delivered + still-queued == offered, nothing duplicated.
        let stats = switch.stats();
        assert_eq!(
            sink.delivered + stats.total_queued() as u64,
            offered,
            "{scheme} lost or duplicated packets"
        );
        assert_eq!(
            stats.total_departures, sink.delivered,
            "{scheme}: stats disagree with the sink"
        );
        assert!(
            sink.delivered as f64 > offered as f64 * 0.8,
            "{scheme} delivered only {}/{offered}",
            sink.delivered
        );

        // The is_reordering_free claim, asserted per scheme through the sink.
        if registry::is_reordering_free(scheme) {
            assert_eq!(
                sink.reorder.stats().voq_reorder_events,
                0,
                "{scheme} promises reordering-free delivery but reordered"
            );
        }
    }
}

#[test]
fn the_harness_detects_reordering_from_some_unordered_scheme() {
    // Sanity check that the conformance harness can see reordering at all —
    // otherwise the ordered-scheme assertions above are vacuous.  At 90%
    // load at least one scheme that does NOT claim reordering-freedom must
    // trip the detector (the registry docs single out baseline-lb).
    let n = 8;
    let unordered: Vec<&str> = registry::schemes()
        .iter()
        .copied()
        .filter(|s| !registry::is_reordering_free(s))
        .collect();
    assert!(
        !unordered.is_empty(),
        "registry claims every scheme is ordered; the sanity check is gone"
    );
    let mut total_reorders = 0u64;
    for scheme in &unordered {
        let mut switch = build(scheme, n, 0.9, 1);
        let (_, sink) = drive_conformance(switch.as_mut(), 0.9, 77, 30_000, 0);
        assert!(
            sink.violations.is_empty(),
            "{scheme}: {:?}",
            sink.violations.first()
        );
        total_reorders += sink.reorder.stats().voq_reorder_events;
    }
    assert!(
        total_reorders > 0,
        "none of {unordered:?} reordered at 90% load — detector broken?"
    );
}

#[test]
fn borrowed_switches_drive_through_the_blanket_impl() {
    // `&mut T` implements `Switch`, so generic drivers work on borrows —
    // the registry's boxed switches and plain structs alike.
    fn drive_two_slots<S: Switch>(mut sw: S) -> u64 {
        let mut out: Vec<DeliveredPacket> = Vec::new();
        sw.arrive(Packet::new(0, 1, 0, 0));
        sw.step(0, &mut out);
        sw.step(1, &mut out);
        sw.stats().total_arrivals
    }

    let mut boxed = build("oq", 8, 0.5, 1);
    assert_eq!(drive_two_slots(&mut boxed), 1);
    // The original box is still usable afterwards: the borrow drove the same
    // underlying switch.
    assert_eq!(boxed.stats().total_arrivals, 1);

    let mut plain = sprinklers_baselines::BaselineLbSwitch::new(8);
    assert_eq!(drive_two_slots(&mut plain), 1);
    assert_eq!(plain.stats().total_arrivals, 1);
}

#[test]
fn every_scheme_runs_through_the_engine_from_one_spec_type() {
    // The acceptance-level property: every registered scheme is drivable
    // end to end from a ScenarioSpec through Engine::run, and the engine's
    // view of the ordering claim matches the registry's.
    let mut engine = Engine::new();
    for scheme in registry::schemes() {
        let spec = ScenarioSpec::new(*scheme, 8)
            .with_traffic(TrafficSpec::Flows {
                load: 0.5,
                mean_flow_len: 10.0,
            })
            .with_run(RunConfig {
                slots: 3_000,
                warmup_slots: 300,
                drain_slots: 9_000,
            })
            .with_seed(5);
        let report = engine.run(&spec).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.n, 8, "{scheme}");
        assert!(
            report.delivery_ratio() > 0.8,
            "{scheme} delivered only {:.1}%",
            report.delivery_ratio() * 100.0
        );
        if registry::is_reordering_free(scheme) {
            assert_eq!(
                report.reordering.voq_reorder_events, 0,
                "{scheme} reordered through the engine"
            );
        }
    }
}
