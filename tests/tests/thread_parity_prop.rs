//! Differential property suite for `Switch::set_threads`.
//!
//! The intra-slot parallelism contract is absolute: any thread count must
//! produce a delivery stream **byte-identical** to serial stepping — same
//! packets, same order, same departure slots, same stats — for every scheme
//! in the registry, at every batch size.  `--threads` is sold as a pure
//! performance knob (specs exclude it from scientific identity, the
//! `thread-parity` CI job `cmp`s whole CSVs), and these properties are the
//! ground truth behind that claim.
//!
//! The switch runs wide (n = 128) and hot (load up to 0.95) on purpose:
//! Sprinklers only engages its worker pool once a phase has at least
//! `PAR_MIN_OCCUPIED` occupied ports, so a small or lightly loaded switch
//! would silently test the serial fallback against itself.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::{DeliveredPacket, Packet};
use sprinklers_core::switch::Switch;
use sprinklers_sim::engine::{Engine, RunConfig};
use sprinklers_sim::registry;
use sprinklers_sim::spec::{ScenarioSpec, SizingSpec, TrafficSpec};

/// Crosses the occupancy bitsets' 64-port word boundary *and* clears the
/// Sprinklers parallel path's minimum-occupancy threshold at high load.
const N: usize = 128;
const OFFERED_SLOTS: u64 = 64;
const TOTAL_SLOTS: u64 = 768;

/// A deterministic random arrival schedule: `schedule[slot]` holds the fully
/// identity-stamped packets injected before stepping `slot`.
fn arrival_schedule(seed: u64, load: f64) -> Vec<Vec<Packet>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut voq_seq = vec![0u64; N * N];
    let mut id = 0u64;
    let mut schedule = Vec::with_capacity(TOTAL_SLOTS as usize);
    for slot in 0..TOTAL_SLOTS {
        let mut arrivals = Vec::new();
        if slot < OFFERED_SLOTS {
            for input in 0..N {
                if rng.gen_range(0.0..1.0) < load {
                    let output = rng.gen_range(0..N);
                    let key = input * N + output;
                    let mut p = Packet::new(input, output, id, slot)
                        .with_flow(rng.gen_range(0..3u64))
                        .with_voq_seq(voq_seq[key]);
                    p.arrival_slot = slot;
                    voq_seq[key] += 1;
                    id += 1;
                    arrivals.push(p);
                }
            }
        }
        schedule.push(arrivals);
    }
    schedule
}

fn build(scheme: &str, seed: u64) -> Box<dyn Switch> {
    // Fixed small stripes: at n = 128 the matrix sizing rule saturates at
    // stripe = N, and partial stripes of that size don't clear inside this
    // suite's short horizon — every Sprinklers variant would trivially
    // deliver nothing.  Parity must be proven on a stream with traffic in it.
    let matrix = TrafficMatrix::uniform(N, 0.7);
    registry::build_named(scheme, N, &SizingSpec::Fixed(2), &matrix, seed)
        .expect("registry scheme builds")
}

/// Drive one switch through the schedule with a fixed thread count and batch
/// size, engine-style: batches break at arrival-bearing slots.
fn run(
    switch: &mut dyn Switch,
    schedule: &[Vec<Packet>],
    threads: usize,
    batch: u64,
) -> Vec<DeliveredPacket> {
    switch.set_threads(threads);
    let mut delivered = Vec::new();
    let total = schedule.len() as u64;
    let mut slot = 0u64;
    while slot < total {
        for p in &schedule[slot as usize] {
            switch.arrive(p.clone());
        }
        let mut end = slot + 1;
        while end < total && end < slot + batch && schedule[end as usize].is_empty() {
            end += 1;
        }
        switch.step_batch(slot, (end - slot) as u32, &mut delivered);
        slot = end;
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every registered scheme: threads × batch grid against the serial
    /// slot-at-a-time reference.  Streams and stats must be byte-identical.
    #[test]
    fn thread_count_never_changes_the_delivery_stream(
        seed in 0u64..u64::MAX,
        load in 0.4f64..0.95,
    ) {
        let schedule = arrival_schedule(seed, load);
        for scheme in registry::schemes() {
            let mut serial = build(scheme, seed);
            let expected = run(serial.as_mut(), &schedule, 1, 1);
            // Frame-building schemes (ufs, padded-frames) legitimately sit on
            // partial n=128 frames for this whole horizon; everything else
            // must actually move traffic or the comparison is vacuous.
            if !matches!(*scheme, "ufs" | "padded-frames" | "foff") {
                prop_assert!(
                    !expected.is_empty(),
                    "{} delivered nothing — schedule too light to mean anything", scheme
                );
            }
            for threads in [2usize, 4] {
                for batch in [1u64, 64] {
                    let mut parallel = build(scheme, seed);
                    let got = run(parallel.as_mut(), &schedule, threads, batch);
                    prop_assert_eq!(
                        &got,
                        &expected,
                        "{} diverged at threads={} batch={}",
                        scheme, threads, batch
                    );
                    prop_assert_eq!(
                        parallel.stats(),
                        serial.stats(),
                        "{} stats diverged at threads={} batch={}",
                        scheme, threads, batch
                    );
                }
            }
        }
    }
}

/// End-to-end through the engine: the `threads` spec knob must leave the
/// whole `SimReport` (the CSV the suite runner merges) byte-identical for
/// every scheme.  The n = 128 high-load scenario engages the Sprinklers
/// worker pool for real; the stats assertions in the property above cover
/// the serial-fallback regimes.
#[test]
fn engine_reports_are_identical_at_any_thread_count() {
    for scheme in registry::schemes() {
        let spec = |threads: u32| {
            ScenarioSpec::new(*scheme, N)
                .with_sizing(SizingSpec::Fixed(2))
                .with_traffic(TrafficSpec::Uniform { load: 0.85 })
                .with_run(RunConfig {
                    slots: 192,
                    warmup_slots: 32,
                    drain_slots: 512,
                })
                .with_seed(2014)
                .with_threads(threads)
        };
        let mut engine = Engine::new();
        let reference_report = engine.run(&spec(1)).unwrap();
        if !matches!(*scheme, "ufs" | "padded-frames" | "foff") {
            assert!(
                reference_report.delivered_packets > 0,
                "{scheme} delivered nothing — the parity comparison would be vacuous"
            );
        }
        let reference = reference_report.csv_row();
        for threads in [2u32, 4, 64] {
            let report = engine.run(&spec(threads)).unwrap().csv_row();
            assert_eq!(
                report, reference,
                "{scheme} report moved at threads={threads}"
            );
        }
    }
}
