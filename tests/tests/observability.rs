//! Differential tests for the extended observability layer.
//!
//! The metrics sidecar is additive: the windowed time series must *sum* to
//! the whole-run totals the CSV already reports (for every scheme, not
//! just the well-behaved ones), the per-output delivered counts must
//! conserve packets, and the Jain fairness index must rank balanced
//! traffic above skewed traffic — exactly 1.0 when deliveries are exactly
//! equal.  A batch-size sweep pins the whole JSON document, windows
//! included, as a pure-performance-knob invariant.

use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::Packet;
use sprinklers_sim::engine::{Engine, RunConfig};
use sprinklers_sim::registry;
use sprinklers_sim::spec::{ScenarioSpec, TrafficSpec};
use sprinklers_sim::traffic::TrafficGenerator;

const N: usize = 8;

fn spec_for(scheme: &str) -> ScenarioSpec {
    ScenarioSpec::new(scheme, N)
        .with_traffic(TrafficSpec::Uniform { load: 0.7 })
        .with_run(RunConfig {
            slots: 1_100, // deliberately not a multiple of n: exercises the tail window
            warmup_slots: 110,
            drain_slots: 4_096,
        })
        .with_seed(17)
}

#[test]
fn window_sums_equal_whole_run_totals_for_every_scheme() {
    let mut engine = Engine::new();
    for scheme in registry::schemes() {
        let report = engine.run(&spec_for(scheme)).unwrap();
        let w = &report.windows;
        assert_eq!(w.stride(), N as u64, "{scheme}: stride is the frame length");
        assert!(!w.samples().is_empty(), "{scheme}: no windows sampled");
        assert_eq!(
            w.total_offered(),
            report.offered_packets,
            "{scheme}: offered mass lost between windows"
        );
        assert_eq!(
            w.total_delivered(),
            report.delivered_packets,
            "{scheme}: delivered mass lost between windows"
        );
        assert_eq!(
            w.total_padding(),
            report.padding_packets,
            "{scheme}: padding mass lost between windows"
        );
        // Windows are disjoint and ordered; the last one covers the drain.
        let mut prev = 0;
        for s in w.samples() {
            assert!(s.end_slot > prev, "{scheme}: non-increasing window ends");
            prev = s.end_slot;
        }
        // Per-output counts conserve the delivered total.
        assert_eq!(report.per_output_delivered.len(), N, "{scheme}");
        assert_eq!(
            report.per_output_delivered.iter().sum::<u64>(),
            report.delivered_packets,
            "{scheme}: per-output counts do not add up"
        );
        let util = report.per_output_utilization();
        assert_eq!(util.len(), N, "{scheme}");
        assert!(
            util.iter().all(|&u| (0.0..=1.0).contains(&u)),
            "{scheme}: utilization out of [0, 1]: {util:?}"
        );
    }
}

#[test]
fn the_full_metrics_document_is_batch_invariant() {
    // The CSV columns being batch-invariant is pinned by the golden suite;
    // the windowed series samples at frame boundaries *inside* the batched
    // loop, so it needs its own differential check.
    let mut engine = Engine::new();
    for scheme in ["sprinklers", "oq", "foff"] {
        let reference = engine.run(&spec_for(scheme).with_batch(1)).unwrap();
        for batch in [3, 64, 1_000] {
            let batched = engine.run(&spec_for(scheme).with_batch(batch)).unwrap();
            assert_eq!(
                reference.metrics_json(),
                batched.metrics_json(),
                "{scheme}: metrics diverged at batch={batch}"
            );
        }
    }
}

/// Deterministic round-robin arrivals: every slot below `offered_slots`,
/// input `i` sends one packet to output `(i + slot) % n`, so every output
/// receives exactly the same number of packets.
struct RoundRobin {
    n: usize,
    offered_slots: u64,
}

impl TrafficGenerator for RoundRobin {
    fn n(&self) -> usize {
        self.n
    }
    fn arrivals_into(&mut self, slot: u64, out: &mut Vec<Packet>) {
        if slot >= self.offered_slots {
            return;
        }
        for input in 0..self.n {
            let output = (input + slot as usize) % self.n;
            out.push(Packet::new(input, output, 0, slot));
        }
    }
    fn rate_matrix(&self) -> TrafficMatrix {
        TrafficMatrix::uniform(self.n, 1.0)
    }
    fn label(&self) -> String {
        "round-robin(deterministic)".into()
    }
}

#[test]
fn jain_fairness_is_exactly_one_for_perfectly_balanced_deliveries() {
    let m = TrafficMatrix::uniform(N, 1.0);
    let report = Engine::new().run_parts(
        sprinklers_integration_tests::switch_by_name("oq", N, &m, 5),
        RoundRobin {
            n: N,
            offered_slots: 400,
        },
        RunConfig {
            slots: 400,
            warmup_slots: 0,
            drain_slots: 4_096,
        },
    );
    assert_eq!(report.delivery_ratio(), 1.0, "OQ must drain everything");
    let per_output = &report.per_output_delivered;
    assert!(
        per_output.iter().all(|&c| c == per_output[0]),
        "round-robin deliveries should be exactly equal: {per_output:?}"
    );
    assert_eq!(report.jain_fairness(), 1.0);
}

/// Deterministic skew: every input sends each slot to output `input / 2`,
/// so on an 8-port switch outputs 0–3 each absorb two inputs' worth of
/// traffic and outputs 4–7 receive nothing.
struct HalfTheOutputs {
    n: usize,
    offered_slots: u64,
}

impl TrafficGenerator for HalfTheOutputs {
    fn n(&self) -> usize {
        self.n
    }
    fn arrivals_into(&mut self, slot: u64, out: &mut Vec<Packet>) {
        if slot >= self.offered_slots {
            return;
        }
        for input in 0..self.n {
            out.push(Packet::new(input, input / 2, 0, slot));
        }
    }
    fn rate_matrix(&self) -> TrafficMatrix {
        TrafficMatrix::uniform(self.n, 1.0)
    }
    fn label(&self) -> String {
        "half-the-outputs(deterministic)".into()
    }
}

#[test]
fn jain_fairness_ranks_skewed_traffic_below_uniform() {
    // Hotspot/diagonal patterns rotate each input's favourite output, so
    // their *column* sums stay balanced; real per-output skew needs traffic
    // that concentrates on a strict output subset.
    let uniform = Engine::new().run(&spec_for("sprinklers")).unwrap();
    assert!(
        uniform.jain_fairness() > 0.99,
        "uniform Bernoulli should be near-fair, got {}",
        uniform.jain_fairness()
    );

    let m = TrafficMatrix::uniform(N, 1.0);
    let skewed = Engine::new().run_parts(
        sprinklers_integration_tests::switch_by_name("oq", N, &m, 5),
        HalfTheOutputs {
            n: N,
            offered_slots: 200,
        },
        RunConfig {
            slots: 200,
            warmup_slots: 0,
            drain_slots: 4_096,
        },
    );
    assert_eq!(skewed.delivery_ratio(), 1.0, "OQ must drain everything");
    // Exactly half the outputs share the load equally: J = (n/2)/n = 0.5.
    assert_eq!(skewed.jain_fairness(), 0.5);
    assert!(skewed.jain_fairness() < uniform.jain_fairness());
}
