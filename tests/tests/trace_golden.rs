//! Golden snapshot of trace replay across the whole scheme registry.
//!
//! `tests/fixtures/trace_flows.sprt` (and its CSV twin
//! `trace_flows.csv`) is a checked-in capture of flow-structured traffic at
//! n = 8 — flows so the TCP-hashing baseline's hash path is exercised too.
//! This suite replays it through **all 10 registry schemes** and pins the
//! merged report CSV byte for byte against
//! `tests/fixtures/trace_golden.csv`, at workers {1, 2} and batch {1, 64},
//! from both file formats.  Any change to the trace decoding, the replay
//! stream, the metadata plumbing (label/matrix), or a scheme's behaviour
//! under replayed traffic fails loudly here.
//!
//! To regenerate after an *intentional* semantic change:
//!
//! ```text
//! BLESS_TRACE_GOLDEN=1 cargo test -p sprinklers-integration-tests --test trace_golden
//! ```

use sprinklers_sim::engine::RunConfig;
use sprinklers_sim::parallel::run_specs_parallel;
use sprinklers_sim::registry;
use sprinklers_sim::report::{merge_csv, SimReport};
use sprinklers_sim::spec::{ScenarioSpec, TrafficSpec};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("fixtures/{name}"))
}

fn replay_specs(trace: &str, batch: u32) -> Vec<ScenarioSpec> {
    registry::schemes()
        .iter()
        .map(|scheme| {
            ScenarioSpec::new(*scheme, 8)
                .with_traffic(TrafficSpec::trace(
                    fixture(trace).to_string_lossy().into_owned(),
                ))
                .with_run(RunConfig {
                    slots: 1_000,
                    warmup_slots: 100,
                    drain_slots: 4_000,
                })
                .with_seed(7)
                .with_batch(batch)
        })
        .collect()
}

fn run_merged(trace: &str, workers: usize, batch: u32) -> String {
    let specs = replay_specs(trace, batch);
    let reports: Vec<SimReport> = run_specs_parallel(&specs, workers)
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("every scheme replays the fixture trace");
    merge_csv(registry::schemes().iter().copied().zip(reports.iter()))
}

#[test]
fn all_schemes_reproduce_the_golden_trace_csv() {
    let golden_path = fixture("trace_golden.csv");
    if std::env::var_os("BLESS_TRACE_GOLDEN").is_some() {
        std::fs::write(&golden_path, run_merged("trace_flows.sprt", 1, 1)).unwrap();
        eprintln!("blessed {}", golden_path.display());
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("fixtures/trace_golden.csv exists (regenerate with BLESS_TRACE_GOLDEN=1)");
    for workers in [1usize, 2] {
        for batch in [1u32, 64] {
            let csv = run_merged("trace_flows.sprt", workers, batch);
            assert_eq!(
                csv, golden,
                "trace replay diverged from the golden CSV at \
                 workers={workers} batch={batch}; if intentional, regenerate \
                 (see module docs)"
            );
        }
    }
}

#[test]
fn the_csv_twin_replays_byte_identically_to_the_binary() {
    // The same capture is checked in twice — binary and CSV — and both must
    // produce the same golden output: format choice can never leak into
    // simulation results.
    let golden = std::fs::read_to_string(fixture("trace_golden.csv"))
        .expect("fixtures/trace_golden.csv exists (regenerate with BLESS_TRACE_GOLDEN=1)");
    let csv = run_merged("trace_flows.csv", 2, 64);
    assert_eq!(
        csv, golden,
        "CSV-format replay diverged from the .sprt golden"
    );
}

#[test]
fn the_fixture_trace_carries_full_provenance() {
    use sprinklers_sim::traffic::trace_io::TraceReader;
    for name in ["trace_flows.sprt", "trace_flows.csv"] {
        let reader = TraceReader::open(fixture(name), None).unwrap();
        assert_eq!(reader.meta().n, Some(8), "{name}");
        assert!(reader.meta().label.is_some(), "{name}");
        assert!(reader.meta().matrix.is_some(), "{name}");
        assert_eq!(reader.meta().slots, 800, "{name}");
    }
}
