//! End-to-end parity for the content-addressed experiment cache.
//!
//! The cache's contract is that a warm run is *indistinguishable* from a
//! cold one: the merged CSV assembled from cached rows must be
//! byte-identical to the one assembled from fresh reports, the stored
//! summary scalars must be bit-exact, and the key must ignore exactly the
//! two performance knobs (`batch`, `threads`) — nothing else.

use sprinklers_sim::cache::{CachedRun, ExperimentCache};
use sprinklers_sim::engine::RunConfig;
use sprinklers_sim::parallel::run_specs_parallel_ok;
use sprinklers_sim::report::merge_csv_rows;
use sprinklers_sim::spec::{ScenarioSpec, TrafficSpec};

fn grid() -> Vec<(String, ScenarioSpec)> {
    let mut cases = Vec::new();
    for scheme in ["sprinklers", "oq", "foff"] {
        for load in [0.4, 0.8] {
            let spec = ScenarioSpec::new(scheme, 8)
                .with_traffic(TrafficSpec::Uniform { load })
                .with_run(RunConfig {
                    slots: 900,
                    warmup_slots: 90,
                    drain_slots: 4_096,
                })
                .with_seed(23);
            cases.push((format!("{scheme}_{load}"), spec));
        }
    }
    cases
}

fn temp_cache(name: &str) -> ExperimentCache {
    let dir = std::env::temp_dir().join(format!(
        "sprinklers-cache-parity-{name}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    ExperimentCache::open(dir).unwrap()
}

#[test]
fn identity_hash_ignores_batch_and_threads_but_nothing_else() {
    let (_, base) = grid().remove(0);
    let hash = base.content_hash();
    // Every (batch, threads) combination maps to the same experiment.
    for (batch, threads) in [(1, 1), (64, 4), (1_000, 8)] {
        assert_eq!(
            base.clone()
                .with_batch(batch)
                .with_threads(threads)
                .content_hash(),
            hash
        );
    }
    // Everything scientific separates.
    let variations = [
        base.clone().with_seed(base.seed + 1),
        base.clone()
            .with_traffic(TrafficSpec::Uniform { load: 0.41 }),
        base.clone().with_run(RunConfig {
            slots: 901,
            ..base.run
        }),
        ScenarioSpec::new("oq", base.n),
        ScenarioSpec::new(&base.scheme, 16),
    ];
    let mut hashes: Vec<u128> = variations.iter().map(ScenarioSpec::content_hash).collect();
    hashes.push(hash);
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), variations.len() + 1, "hash collision in grid");
}

#[test]
fn warm_cache_reproduces_the_cold_merged_csv_byte_for_byte() {
    let cache = temp_cache("roundtrip");
    let cases = grid();
    let specs: Vec<ScenarioSpec> = cases.iter().map(|(_, s)| s.clone()).collect();

    // Cold pass: simulate everything, store every entry (with metrics).
    let reports = run_specs_parallel_ok(&specs, 2).unwrap();
    let mut cold_rows = Vec::new();
    for (spec, report) in specs.iter().zip(&reports) {
        let run = CachedRun::from_report(report, true);
        cache.store(spec.content_hash(), &run).unwrap();
        cold_rows.push(run.csv_row.clone());
    }
    let cold_csv = merge_csv_rows(
        cases
            .iter()
            .map(|(name, _)| name.as_str())
            .zip(cold_rows.iter().cloned()),
    );

    // Warm pass: every cell must hit, at a *different* batch/thread
    // configuration, and reproduce rows, scalars and metrics bit-exactly.
    let mut warm_rows = Vec::new();
    for ((_, spec), report) in cases.iter().zip(&reports) {
        let retuned = spec.clone().with_batch(7).with_threads(3);
        let hit = cache
            .load(retuned.content_hash())
            .expect("warm pass must not miss");
        assert_eq!(hit, CachedRun::from_report(report, true));
        assert_eq!(
            hit.mean_delay.to_bits(),
            report.delay.mean().to_bits(),
            "stored scalar drifted"
        );
        warm_rows.push(hit.csv_row);
    }
    let warm_csv = merge_csv_rows(
        cases
            .iter()
            .map(|(name, _)| name.as_str())
            .zip(warm_rows.iter().cloned()),
    );
    assert_eq!(cold_csv, warm_csv, "cached CSV differs from computed CSV");
    std::fs::remove_dir_all(cache.dir()).ok();
}

#[test]
fn an_entry_stored_without_metrics_cannot_serve_a_metrics_run() {
    // The suite treats a metrics-less hit as a miss when --metrics full is
    // active; the data layer's part of that contract is simply that the
    // absence round-trips (None stays None, never an empty string).
    let cache = temp_cache("nometrics");
    let (_, spec) = grid().remove(0);
    let report = run_specs_parallel_ok(std::slice::from_ref(&spec), 1)
        .unwrap()
        .remove(0);
    cache
        .store(spec.content_hash(), &CachedRun::from_report(&report, false))
        .unwrap();
    let hit = cache.load(spec.content_hash()).unwrap();
    assert_eq!(hit.metrics_json, None);
    // Re-storing with metrics upgrades the entry in place.
    cache
        .store(spec.content_hash(), &CachedRun::from_report(&report, true))
        .unwrap();
    assert_eq!(
        cache.load(spec.content_hash()).unwrap().metrics_json,
        Some(report.metrics_json())
    );
    std::fs::remove_dir_all(cache.dir()).ok();
}
