//! The determinism net for the parallel executor.
//!
//! The parallel sweep's contract is that the merged CSV is *byte-identical*
//! no matter how many workers ran it and how the OS scheduled them — the
//! whole reproduction depends on figure runs being replayable.  These tests
//! pin that down at the three layers a regression could creep in: raw spec
//! execution (`run_specs_parallel_ok`), the sweep grid wrappers, and the
//! suite-level merged CSV the `suite` binary emits.

use sprinklers_sim::engine::RunConfig;
use sprinklers_sim::parallel::run_specs_parallel_ok;
use sprinklers_sim::report::merge_csv;
use sprinklers_sim::spec::{ScenarioSpec, SuiteSpec, TrafficSpec};
use sprinklers_sim::sweep::sweep_schemes_with;

/// A small but non-trivial scheme × load grid: ordered and unordered
/// schemes, loads low and near saturation.
fn grid_base() -> ScenarioSpec {
    ScenarioSpec::new("sprinklers", 8)
        .with_run(RunConfig {
            slots: 2_500,
            warmup_slots: 250,
            drain_slots: 5_000,
        })
        .with_seed(2014)
}

const GRID_SCHEMES: [&str; 4] = ["sprinklers", "oq", "baseline-lb", "foff"];
const GRID_LOADS: [f64; 3] = [0.2, 0.6, 0.9];

fn merged_grid_csv(workers: usize) -> String {
    let points = sweep_schemes_with(&grid_base(), &GRID_SCHEMES, &GRID_LOADS, workers).unwrap();
    merge_csv(points.iter().map(|p| (p.scheme.as_str(), &p.report)))
}

#[test]
fn csv_is_byte_identical_at_one_and_four_workers() {
    let w1 = merged_grid_csv(1);
    let w4 = merged_grid_csv(4);
    assert!(w1.lines().count() > GRID_SCHEMES.len(), "grid actually ran");
    assert_eq!(w1, w4, "worker count changed the merged CSV");
}

#[test]
fn csv_is_byte_identical_across_repeated_runs() {
    // Two fresh runs at the same worker count: no hidden global state (RNG,
    // engine reuse, iteration order) may leak between runs.
    let first = merged_grid_csv(4);
    let second = merged_grid_csv(4);
    assert_eq!(first, second, "repeated runs diverged");
}

#[test]
fn raw_parallel_execution_is_order_stable() {
    // Below the sweep layer: run_specs_parallel itself must put every report
    // in its submission slot at any worker count.
    let specs: Vec<ScenarioSpec> = (0..6)
        .map(|i| {
            ScenarioSpec::new(if i % 2 == 0 { "oq" } else { "foff" }, 8)
                .with_traffic(TrafficSpec::Uniform {
                    load: 0.2 + 0.1 * i as f64,
                })
                .with_run(RunConfig {
                    slots: 1_000,
                    warmup_slots: 100,
                    drain_slots: 2_000,
                })
                .with_seed(i as u64)
        })
        .collect();
    let baseline = run_specs_parallel_ok(&specs, 1).unwrap();
    for workers in [2, 3, 4] {
        let runs = run_specs_parallel_ok(&specs, workers).unwrap();
        for (i, (a, b)) in baseline.iter().zip(&runs).enumerate() {
            assert_eq!(
                a.csv_row(),
                b.csv_row(),
                "spec {i} diverged at workers={workers}"
            );
        }
    }
}

#[test]
fn suite_expansion_plus_parallel_run_is_deterministic() {
    // End-to-end shape of the `suite` binary: expand overrides, run, merge.
    let base = grid_base();
    let suite = SuiteSpec::new("unused")
        .with_schemes(vec!["sprinklers".into(), "padded-frames".into()])
        .with_loads(vec![0.3, 0.8]);
    let cases = suite.expand("det", &base);
    assert_eq!(cases.len(), 4);
    let specs: Vec<ScenarioSpec> = cases.iter().map(|c| c.spec.clone()).collect();

    let reports_w1 = run_specs_parallel_ok(&specs, 1).unwrap();
    let reports_w4 = run_specs_parallel_ok(&specs, 4).unwrap();
    let csv_w1 = merge_csv(cases.iter().map(|c| c.name.as_str()).zip(reports_w1.iter()));
    let csv_w4 = merge_csv(cases.iter().map(|c| c.name.as_str()).zip(reports_w4.iter()));
    assert_eq!(csv_w1, csv_w4);
    // Case labels make every row attributable.
    for case in &cases {
        assert!(csv_w1.contains(&case.name), "missing case {}", case.name);
    }
}
