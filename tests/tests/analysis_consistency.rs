//! Consistency between the analytical models (`sprinklers-analysis`) and the
//! switch implementation (`sprinklers-core`), plus property-based checks of
//! the analytical claims themselves.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sprinklers_analysis::chernoff;
use sprinklers_analysis::theorem1;
use sprinklers_core::ols::WeaklyUniformOls;
use sprinklers_core::sizing;

#[test]
fn analysis_and_core_agree_on_the_stripe_size_rule() {
    // The analysis crate carries its own copy of F(r) so it has no dependency
    // on the switch implementation; the two must agree everywhere.
    for n in [4usize, 32, 256, 1024] {
        for k in 0..2000 {
            let rate = k as f64 / 2000.0;
            assert_eq!(
                sizing::stripe_size(rate, n),
                theorem1::stripe_size(rate, n),
                "F({rate}) differs between crates for N = {n}"
            );
        }
    }
}

#[test]
fn per_port_load_under_the_sizing_rule_respects_the_alpha_bound() {
    // The analysis assumes every VOQ with stripe size < N imposes at most
    // α = 1/N² on each intermediate port of its interval.
    let n = 64;
    for k in 1..1000 {
        let rate = k as f64 / 1000.0;
        let f = sizing::stripe_size(rate, n);
        if f < n {
            assert!(sizing::load_per_share(rate, n) <= sizing::alpha(n) * (1.0 + 1e-12));
        }
    }
}

#[test]
fn simulated_port_loads_match_the_chernoff_regime() {
    // Empirical check of the load-balancing claim behind Theorem 2: generate
    // many random OLS placements for a heavily loaded input port, compute the
    // load each intermediate port receives, and verify the overload fraction
    // is small (far from certain) and the mean is ρ/N.
    let n = 64usize;
    let rho = 0.9;
    let trials = 400;
    let mut overloads = 0usize;
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..trials {
        let ols = WeaklyUniformOls::random(n, &mut rng);
        // Uniform split: every VOQ gets rate ρ/N (stripe size F(ρ/N)).
        let rate = rho / n as f64;
        let f = sizing::stripe_size(rate, n);
        let share = rate / f as f64;
        let mut load = vec![0.0f64; n];
        for output in 0..n {
            let primary = ols.primary_port(0, output);
            let start = (primary / f) * f;
            for l in load.iter_mut().skip(start).take(f) {
                *l += share;
            }
        }
        let service = 1.0 / n as f64;
        overloads += load.iter().filter(|&&l| l > service + 1e-12).count();
        let total: f64 = load.iter().sum();
        assert!((total - rho).abs() < 1e-9);
    }
    let frac = overloads as f64 / (trials * n) as f64;
    assert!(
        frac < 0.05,
        "too many overloaded ports ({frac:.3}) under uniform 90% load"
    );
}

#[test]
fn chernoff_bound_is_anti_monotone_in_n_and_monotone_in_rho() {
    let mut prev = 0.0;
    for rho in [0.90, 0.92, 0.94, 0.96] {
        let b = chernoff::overload_bound(1024, rho).log_bound;
        assert!(b > prev || prev == 0.0);
        prev = b;
    }
    for n in [256usize, 512, 1024, 2048] {
        let b = chernoff::overload_bound(n, 0.95);
        assert!(b.log_bound < 0.0);
        assert!(b.log_switch_wide > b.log_bound);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 holds for random admissible splits and random placements
    /// (checked through the analysis crate's X(r) evaluator at N = 32).
    #[test]
    fn no_overload_below_the_theorem1_threshold(
        raw in proptest::collection::vec(0.01f64..1.0, 32),
        rot in 0usize..32,
    ) {
        let n = 32usize;
        let threshold = theorem1::zero_overload_threshold(n);
        let sum: f64 = raw.iter().sum();
        let mut rates: Vec<f64> = raw.iter().map(|r| r * threshold * 0.995 / sum).collect();
        rates.rotate_left(rot);
        let x = theorem1::queue_arrival_rate(&rates, n);
        prop_assert!(x < 1.0 / n as f64 + 1e-12);
    }

    /// The worst-case construction of Theorem 1 is the cheapest overload: any
    /// uniform scaling below 1.0 of the worst-case rate vector stays below
    /// the service rate.
    #[test]
    fn scaled_worst_case_does_not_overload(scale in 0.05f64..0.999) {
        let n = 64usize;
        let wc = theorem1::worst_case_rate_vector(n);
        let scaled: Vec<f64> = wc.rates.iter().map(|r| r * scale).collect();
        let x = theorem1::queue_arrival_rate(&scaled, n);
        prop_assert!(x <= 1.0 / n as f64 + 1e-12);
    }

    /// h(p, a) is maximized at p*(a) for random (p, a).
    #[test]
    fn p_star_dominates_random_p(p in 0.0f64..1.0, a in 0.01f64..5.0) {
        let best = chernoff::h(chernoff::p_star(a), a);
        prop_assert!(best + 1e-9 >= chernoff::h(p, a));
    }
}
