//! Criterion benchmarks of whole-switch simulation throughput: how many
//! simulated slots per second each scheme sustains at N = 32 under 90% load.
//! This is a property of the simulator (not of the paper), but it bounds how
//! large the figure experiments can be made and catches accidental
//! complexity regressions in the per-slot fast path.
//!
//! All loops drive `Switch::step` into a reusable sink and pull arrivals
//! through `arrivals_into` with a reused buffer, so the measured path is the
//! allocation-free steady state the engine runs in production.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sprinklers_bench::experiments::{build_switch, TrafficKind};
use sprinklers_core::packet::Packet;
use sprinklers_core::switch::{CountingSink, Switch};
use sprinklers_sim::traffic::TrafficGenerator;

/// Drive one switch for `slots` slots with reused buffers; returns deliveries.
fn drive(
    switch: &mut dyn Switch,
    traffic: &mut dyn TrafficGenerator,
    arrivals: &mut Vec<Packet>,
    voq_seq: &mut [u64],
    slots: u64,
) -> u64 {
    let n = switch.n();
    let mut sink = CountingSink::default();
    for slot in 0..slots {
        arrivals.clear();
        traffic.arrivals_into(slot, arrivals);
        for mut p in arrivals.drain(..) {
            let key = p.input() * n + p.output();
            p.voq_seq = voq_seq[key];
            voq_seq[key] += 1;
            switch.arrive(p);
        }
        switch.step(slot, &mut sink);
    }
    sink.total()
}

fn bench_switch_step(c: &mut Criterion) {
    let n = 32;
    let load = 0.9;
    let slots_per_iter = 2_000u64;
    let mut group = c.benchmark_group("switch_step_throughput");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.throughput(Throughput::Elements(slots_per_iter));
    for scheme in [
        "oq",
        "baseline-lb",
        "ufs",
        "foff",
        "padded-frames",
        "sprinklers",
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let matrix = TrafficKind::Uniform.matrix(n, load);
                    let mut switch = build_switch(scheme, n, &matrix, 11);
                    let mut traffic = TrafficKind::Uniform.generator(n, load, 17);
                    let mut arrivals = Vec::with_capacity(n);
                    let mut voq_seq = vec![0u64; n * n];
                    black_box(drive(
                        &mut switch,
                        &mut traffic,
                        &mut arrivals,
                        &mut voq_seq,
                        slots_per_iter,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_sprinklers_scaling(c: &mut Criterion) {
    let load = 0.8;
    let slots_per_iter = 1_000u64;
    let mut group = c.benchmark_group("sprinklers_step_vs_n");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.throughput(Throughput::Elements(slots_per_iter));
    for n in [16usize, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let matrix = TrafficKind::Uniform.matrix(n, load);
                let mut switch = build_switch("sprinklers", n, &matrix, 3);
                let mut traffic = TrafficKind::Uniform.generator(n, load, 5);
                let mut arrivals = Vec::with_capacity(n);
                let mut voq_seq = vec![0u64; n * n];
                black_box(drive(
                    &mut switch,
                    &mut traffic,
                    &mut arrivals,
                    &mut voq_seq,
                    slots_per_iter,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_switch_step, bench_sprinklers_scaling);
criterion_main!(benches);
