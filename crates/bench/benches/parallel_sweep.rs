//! Criterion comparison of serial vs thread-sharded sweep execution.
//!
//! One benchmark per worker count over the same scheme × load grid, so the
//! printed means are directly comparable: `workers/1` is the old serial
//! `sweep_schemes` behaviour, `workers/0` uses one worker per core.  The
//! grid is deliberately small (the full figure grid is the `parallel_sweep`
//! example); this pins the executor's overhead and scaling shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sprinklers_sim::engine::RunConfig;
use sprinklers_sim::spec::ScenarioSpec;
use sprinklers_sim::sweep::{grid_specs, sweep_schemes_with};

fn bench_sweep_workers(c: &mut Criterion) {
    let schemes = ["sprinklers", "oq", "baseline-lb", "ufs", "foff"];
    let loads = [0.3, 0.6, 0.9];
    let base = ScenarioSpec::new("sprinklers", 16)
        .with_run(RunConfig {
            slots: 1_000,
            warmup_slots: 100,
            drain_slots: 2_000,
        })
        .with_seed(7);
    let runs = grid_specs(&base, &schemes, &loads).len() as u64;

    let mut group = c.benchmark_group("sweep_schemes");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.throughput(Throughput::Elements(runs));
    for workers in [1usize, 2, 4, 0] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| sweep_schemes_with(&base, &schemes, &loads, workers).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_workers);
criterion_main!(benches);
