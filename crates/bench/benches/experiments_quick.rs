//! Quick-mode regeneration of every paper artifact, run as part of
//! `cargo bench`.  This is not a criterion benchmark (harness = false): it
//! executes reduced-size versions of Table 1, Figure 5, Figure 6, Figure 7
//! and the two ablations, prints their CSVs, and asserts the headline
//! qualitative claims (zero reordering for the ordered schemes, UFS ≫
//! Sprinklers delay at light load, delay bound shapes).

use sprinklers_bench::experiments;

fn main() {
    let t0 = std::time::Instant::now();

    println!("==== Table 1 (quick == full; pure numerics) ====");
    print!("{}", experiments::table1_csv());

    println!("\n==== Figure 5 (quick) ====");
    print!("{}", experiments::figure5_csv(true));

    println!("\n==== Figure 6: uniform traffic (quick) ====");
    let fig6 = experiments::figure6(true);
    print!("{}", experiments::points_to_csv(&fig6));
    check_figure(&fig6, "figure 6");

    println!("\n==== Figure 7: quasi-diagonal traffic (quick) ====");
    let fig7 = experiments::figure7(true);
    print!("{}", experiments::points_to_csv(&fig7));
    check_figure(&fig7, "figure 7");

    println!("\n==== Ablation: scheduling variants (quick) ====");
    let ab = experiments::ablation_alignment(true);
    print!("{}", experiments::points_to_csv(&ab));
    // Only the default variant (stripe-atomic input + immediate eligibility)
    // guarantees zero reordering; the ablation exists precisely to show that
    // the simplified row-scan discipline and naive frame-aligned staging do
    // reorder under concurrent traffic (see EXPERIMENTS.md).
    for p in &ab {
        if p.scheme == "sprinklers" {
            assert!(
                p.report.reordering.voq_reorder_events == 0,
                "{} reordered at load {}",
                p.scheme,
                p.load
            );
        }
    }

    println!("\n==== Ablation: stripe sizing (quick) ====");
    let ab = experiments::ablation_sizing(true);
    print!("{}", experiments::points_to_csv(&ab));

    println!(
        "\nall quick experiments completed in {:.1} s",
        t0.elapsed().as_secs_f64()
    );
}

fn check_figure(points: &[experiments::SchemePoint], what: &str) {
    // Ordered schemes must not reorder.
    for p in points {
        if p.scheme != "baseline-lb" {
            assert_eq!(
                p.report.reordering.voq_reorder_events, 0,
                "{what}: {} reordered at load {}",
                p.scheme, p.load
            );
        }
    }
    // At the lightest load, UFS's frame-accumulation delay dwarfs Sprinklers'.
    let delay = |scheme: &str, load: f64| {
        points
            .iter()
            .find(|p| p.scheme == scheme && (p.load - load).abs() < 1e-9)
            .map(|p| p.report.delay.mean())
            .unwrap_or(f64::NAN)
    };
    let light = points.iter().map(|p| p.load).fold(f64::INFINITY, f64::min);
    assert!(
        delay("ufs", light) > delay("sprinklers", light),
        "{what}: UFS ({}) should have a larger delay than Sprinklers ({}) at load {light}",
        delay("ufs", light),
        delay("sprinklers", light)
    );
    // The baseline (unordered) switch is the delay lower bound.
    for p in points {
        if p.scheme == "baseline-lb" {
            continue;
        }
        let base = delay("baseline-lb", p.load);
        assert!(
            p.report.delay.mean() + 1e-9 >= base,
            "{what}: {} at load {} is below the baseline lower bound",
            p.scheme,
            p.load
        );
    }
}
