//! Criterion benchmarks of the occupancy-driven sparse stepping hot path:
//! simulated slots per second of `arrive` + `step_batch` at the load points
//! the paper's evaluation sweeps (Fig. 5–7), plus the drain-shaped window
//! that dominates a default `RunConfig`.
//!
//! The arrival schedule is pre-generated outside the timed region (compact
//! records, not packets), so at load 0.05 the numbers show what the *switch*
//! costs per slot — the regime where the per-slot loops used to pay O(N) for
//! mostly-empty ports and now pay O(occupied).  The load 0.95 cells guard
//! the dense regime against regression: with every port occupied the bitset
//! walk must cost no more than the plain `0..n` loop it replaced.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::Packet;
use sprinklers_core::switch::{CountingSink, Switch};
use sprinklers_sim::registry;
use sprinklers_sim::spec::SizingSpec;

/// One pre-drawn arrival: (slot, input, output).
type Arrival = (u64, u32, u32);

fn schedule(n: usize, load: f64, slots: u64, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for slot in 0..slots {
        for input in 0..n {
            if rng.gen_range(0.0..1.0) < load {
                out.push((slot, input as u32, rng.gen_range(0..n) as u32));
            }
        }
    }
    out
}

/// Engine-shaped drive: inject each slot's arrivals, then step maximal
/// arrival-free runs in batch-64 chunks through the `Box<dyn Switch>`
/// boundary (the dispatch the real engine pays).
fn drive(switch: &mut dyn Switch, arrivals: &[Arrival], total: u64, voq_seq: &mut [u64]) -> u64 {
    let n = switch.n();
    let mut sink = CountingSink::default();
    let mut idx = 0usize;
    let mut slot = 0u64;
    while slot < total {
        while idx < arrivals.len() && arrivals[idx].0 == slot {
            let (_, input, output) = arrivals[idx];
            let (input, output) = (input as usize, output as usize);
            let key = input * n + output;
            let p = Packet::new(input, output, idx as u64, slot).with_voq_seq(voq_seq[key]);
            voq_seq[key] += 1;
            switch.arrive(p);
            idx += 1;
        }
        let next_arrival = arrivals.get(idx).map_or(total, |a| a.0);
        let run_end = next_arrival.clamp(slot + 1, total);
        let mut s = slot;
        while s < run_end {
            let count = 64.min(run_end - s);
            switch.step_batch(s, count as u32, &mut sink);
            s += count;
        }
        slot = run_end;
    }
    sink.total()
}

fn bench_sparse_stepping(c: &mut Criterion) {
    let offered = 4_096u64;
    let drain = 8_192u64;
    let total = offered + drain;
    let mut group = c.benchmark_group("sparse_stepping");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(total));
    for n in [64usize, 256] {
        for load in [0.05f64, 0.3, 0.95] {
            let arrivals = schedule(n, load, offered, 2014);
            let matrix = TrafficMatrix::uniform(n, load);
            group.bench_with_input(
                BenchmarkId::new(format!("sprinklers/n{n}"), format!("load{load}")),
                &n,
                |b, &n| {
                    b.iter(|| {
                        let mut switch =
                            registry::build_named("sprinklers", n, &SizingSpec::Matrix, &matrix, 7)
                                .expect("sprinklers builds");
                        let mut voq_seq = vec![0u64; n * n];
                        black_box(drive(switch.as_mut(), &arrivals, total, &mut voq_seq))
                    });
                },
            );
        }
    }
    group.finish();
}

/// The drain-shaped window: one permutation burst, then a long arrival-free
/// tail — the shape of the engine's 50k-slot drain phase, where the empty
/// bitsets make slots O(1).
fn bench_drain_window(c: &mut Criterion) {
    let n = 64usize;
    let window = 49_152u64;
    let mut group = c.benchmark_group("sparse_stepping_drain");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(window));
    for scheme in ["sprinklers", "foff"] {
        let matrix = TrafficMatrix::uniform(n, 0.5);
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme),
            &scheme,
            |b, &scheme| {
                let mut switch =
                    registry::build_named(scheme, n, &SizingSpec::Fixed(1), &matrix, 7).unwrap();
                let mut voq_seq = vec![0u64; n * n];
                let mut sink = CountingSink::default();
                let mut slot = 0u64;
                let mut w = 0u64;
                b.iter(|| {
                    for input in 0..n {
                        let output = (input + w as usize) % n;
                        let key = input * n + output;
                        let p = Packet::new(input, output, slot, slot).with_voq_seq(voq_seq[key]);
                        voq_seq[key] += 1;
                        switch.arrive(p);
                    }
                    let mut done = 0u64;
                    while done < window {
                        let count = 64.min(window - done);
                        switch.step_batch(slot + done, count as u32, &mut sink);
                        done += count;
                    }
                    slot += window;
                    w += 1;
                    black_box(sink.total())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sparse_stepping, bench_drain_window);
criterion_main!(benches);
