//! Criterion micro-benchmarks of the Sprinklers fast path: stripe-interval
//! generation, the two LSF scheduler implementations, whole-switch `step`
//! throughput into a reusable sink, and the analytical bound computation.
//! These quantify the "constant time per slot" claim the paper makes about
//! the scheduler (§1.2) and pin the zero-allocation sink path's performance
//! baseline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sprinklers_analysis::chernoff::overload_bound;
use sprinklers_core::config::{SizingMode, SprinklersConfig};
use sprinklers_core::dyadic::DyadicInterval;
use sprinklers_core::lsf::{AtomicLsf, RowScanLsf, StripeScheduler};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::ols::WeaklyUniformOls;
use sprinklers_core::packet::Packet;
use sprinklers_core::sizing::stripe_size;
use sprinklers_core::sprinklers::SprinklersSwitch;
use sprinklers_core::stripe::Stripe;
use sprinklers_core::switch::{CountingSink, Switch};

fn mk_stripe(n: usize, start: usize, size: usize, seq: u64) -> Stripe {
    assert!(start + size <= n);
    let interval = DyadicInterval::new(start, size);
    let packets = (0..size)
        .map(|k| Packet::new(0, 1, seq * 1000 + k as u64, 0).with_voq_seq(seq * 1000 + k as u64))
        .collect();
    Stripe::assemble(interval, 0, 1, seq, packets)
}

fn bench_ols_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ols_generation");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    for n in [64usize, 256, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| WeaklyUniformOls::random(black_box(n), &mut rng));
        });
    }
    group.finish();
}

fn bench_stripe_size_rule(c: &mut Criterion) {
    c.bench_function("stripe_size_rule", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for k in 1..1000u32 {
                acc += stripe_size(black_box(f64::from(k) * 1e-5), 1024);
            }
            acc
        });
    });
}

fn bench_lsf_insert_serve(c: &mut Criterion) {
    let n = 64usize;
    let mut group = c.benchmark_group("lsf_insert_serve_cycle");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("row_scan", |b| {
        b.iter(|| {
            let mut s = RowScanLsf::new(n);
            for seq in 0..64u64 {
                let size = 1 << (seq % 7);
                let start = ((seq as usize * 13) % n / size) * size;
                s.insert(mk_stripe(n, start, size, seq));
            }
            let mut served = 0usize;
            let mut slot = 0usize;
            while !s.is_empty() {
                if s.serve(slot % n).is_some() {
                    served += 1;
                }
                slot += 1;
            }
            black_box(served)
        });
    });
    group.bench_function("stripe_atomic", |b| {
        b.iter(|| {
            let mut s = AtomicLsf::new(n);
            for seq in 0..64u64 {
                let size = 1 << (seq % 7);
                let start = ((seq as usize * 13) % n / size) * size;
                s.insert(mk_stripe(n, start, size, seq));
            }
            let mut served = 0usize;
            let mut slot = 0usize;
            while !s.is_empty() {
                if s.serve(slot % n).is_some() {
                    served += 1;
                }
                slot += 1;
            }
            black_box(served)
        });
    });
    group.finish();
}

fn bench_chernoff_bound(c: &mut Criterion) {
    c.bench_function("chernoff_overload_bound", |b| {
        b.iter(|| overload_bound(black_box(2048), black_box(0.93)));
    });
}

/// Slots/sec of `Switch::step` into a reusable sink — the perf baseline of
/// the zero-allocation fast path.  The switch is preloaded and kept busy with
/// a deterministic one-packet-per-input arrival pattern, and the sink is a
/// `CountingSink` reused across every slot, so the measured loop allocates
/// nothing in steady state.
fn bench_step_into_reusable_sink(c: &mut Criterion) {
    let slots_per_iter = 4_096u64;
    let mut group = c.benchmark_group("sprinklers_step_into_sink");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(slots_per_iter));
    for n in [16usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let load = 0.9;
            let matrix = TrafficMatrix::uniform(n, load);
            b.iter(|| {
                let mut switch = SprinklersSwitch::new(
                    SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(matrix.clone())),
                    7,
                );
                let mut sink = CountingSink::default();
                let mut voq_seq = vec![0u64; n * n];
                for slot in 0..slots_per_iter {
                    // Deterministic near-saturating admissible pattern: input i
                    // sends to output (i + slot) mod n, skipping one input per
                    // slot to stay below capacity.
                    for input in 0..n {
                        if input as u64 == slot % n as u64 {
                            continue;
                        }
                        let output = (input + slot as usize) % n;
                        let key = input * n + output;
                        let mut p =
                            Packet::new(input, output, slot, slot).with_voq_seq(voq_seq[key]);
                        voq_seq[key] += 1;
                        p.arrival_slot = slot;
                        switch.arrive(p);
                    }
                    switch.step(slot, &mut sink);
                }
                black_box(sink.total())
            });
        });
    }
    group.finish();
}

/// The batched companion of `sprinklers_step_into_sink`: slots/sec of
/// `Switch::step_batch` through a `Box<dyn Switch>` (the same dispatch path
/// the engine uses) at batch ∈ {1, 16, 64} and n = 64, in the arrival-sparse
/// regime that batching targets — the shape of the engine's drain phase,
/// which is 50k arrival-free slots per run under the default `RunConfig`.
///
/// Each window injects one burst (one packet per input) and then steps the
/// window in `batch`-sized chunks: the switch goes busy for the ~2N slots
/// the burst needs to cross both fabrics and is empty for the rest.  The
/// window length (48k slots) matches the default `RunConfig`'s 50k-slot
/// drain phase, so the idle:busy ratio is the one a real engine run ends
/// with.  Every batch size steps the *exact same* switch trajectory (that is
/// the `step_batch` equivalence contract), so the measured difference is
/// purely what the batch amortizes: one virtual call per chunk instead of
/// per slot, the hoisted `slot mod N` fabric phase, and the empty-switch
/// elision that lets one call skip the idle tail the slot-at-a-time loop
/// must still visit call by call.  batch=1 is the PR 1 baseline loop;
/// batch=64 is the engine's default.
fn bench_step_batch_into_sink(c: &mut Criterion) {
    let n = 64usize;
    let window = 49_152u32;
    let windows_per_iter = 1u64;
    let slots_per_iter = windows_per_iter * u64::from(window);
    let mut group = c.benchmark_group("sprinklers_step_into_sink_batched");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(slots_per_iter));
    for batch in [1u32, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            // Dyn-boxed on purpose: the per-call dispatch cost is part of
            // what the batch amortizes in the real engine.
            let mut switch: Box<dyn Switch> = Box::new(SprinklersSwitch::new(
                SprinklersConfig::new(n).with_sizing(SizingMode::FixedSize(1)),
                7,
            ));
            let mut sink = CountingSink::default();
            let mut voq_seq = vec![0u64; n * n];
            let mut slot = 0u64;
            b.iter(|| {
                for w in 0..windows_per_iter {
                    // One burst per window: input i sends a single packet to
                    // output (i + w) mod n (a permutation, so trivially
                    // admissible), then the window drains and idles.
                    for input in 0..n {
                        let output = (input + w as usize) % n;
                        let key = input * n + output;
                        let p = Packet::new(input, output, slot, slot).with_voq_seq(voq_seq[key]);
                        voq_seq[key] += 1;
                        switch.arrive(p);
                    }
                    // Step the window in `batch`-sized chunks.
                    let mut done = 0u32;
                    while done < window {
                        let count = batch.min(window - done);
                        switch.step_batch(slot + u64::from(done), count, &mut sink);
                        done += count;
                    }
                    slot += u64::from(window);
                }
                black_box(sink.total())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ols_generation,
    bench_stripe_size_rule,
    bench_lsf_insert_serve,
    bench_step_into_reusable_sink,
    bench_step_batch_into_sink,
    bench_chernoff_bound
);
criterion_main!(benches);
