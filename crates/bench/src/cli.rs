//! Minimal flag parsing and spec loading shared by the bench binaries.
//!
//! Every binary in this crate takes `--flag value` style arguments; these
//! helpers keep the parsing (and its failure behaviour: print, exit 2)
//! identical across `scenario`, `suite` and the figure drivers, and provide
//! the one place that reads a [`ScenarioSpec`] from a JSON file.

use sprinklers_sim::spec::ScenarioSpec;

/// The value following `--flag`, if present.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// True if the bare flag is present.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Print an error and exit with status 2 (usage / input error).
pub fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Parse a flag's value, failing loudly on garbage instead of silently
/// substituting the default (absent flag => `None` => caller's default).
pub fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    arg_value(args, flag).map(|v| {
        v.parse()
            .unwrap_or_else(|_| fail(&format!("invalid value '{v}' for {flag}")))
    })
}

/// Parse a comma-separated list flag (e.g. `--loads 0.1,0.5,0.9`).  A
/// present-but-empty list (e.g. an unset shell variable) is an error, not an
/// empty vector — an empty override would silently expand every suite to
/// zero cases.
pub fn parse_list_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<Vec<T>> {
    arg_value(args, flag).map(|v| {
        let values: Vec<T> = v
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid value '{s}' in {flag}")))
            })
            .collect();
        if values.is_empty() {
            fail(&format!("{flag} requires at least one value"));
        }
        values
    })
}

/// Read and parse a `ScenarioSpec` JSON file, exiting with a clear message
/// on I/O or parse failure.  Relative trace paths inside the spec are
/// resolved against the spec file's directory, so specs can reference
/// traces checked in next to them regardless of the working directory.
pub fn load_spec_file(path: &str) -> ScenarioSpec {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read spec file {path}: {e}")));
    let mut spec = ScenarioSpec::from_json(&text).unwrap_or_else(|e| fail(&e.to_string()));
    if let Some(parent) = std::path::Path::new(path).parent() {
        spec.rebase_paths(parent);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_value_finds_the_following_token() {
        let a = args(&["--n", "32", "--quick"]);
        assert_eq!(arg_value(&a, "--n").as_deref(), Some("32"));
        assert_eq!(arg_value(&a, "--quick"), None);
        assert_eq!(arg_value(&a, "--missing"), None);
        assert!(has_flag(&a, "--quick"));
        assert!(!has_flag(&a, "--slow"));
    }

    #[test]
    fn parse_flag_reads_typed_values() {
        let a = args(&["--n", "32", "--load", "0.85"]);
        assert_eq!(parse_flag::<usize>(&a, "--n"), Some(32));
        assert_eq!(parse_flag::<f64>(&a, "--load"), Some(0.85));
        assert_eq!(parse_flag::<usize>(&a, "--workers"), None);
    }

    #[test]
    fn parse_list_flag_splits_on_commas() {
        let a = args(&["--loads", "0.1, 0.5,0.9", "--schemes", "oq,foff"]);
        assert_eq!(
            parse_list_flag::<f64>(&a, "--loads"),
            Some(vec![0.1, 0.5, 0.9])
        );
        assert_eq!(
            parse_list_flag::<String>(&a, "--schemes"),
            Some(vec!["oq".to_string(), "foff".to_string()])
        );
        assert_eq!(parse_list_flag::<f64>(&a, "--absent"), None);
    }
}
