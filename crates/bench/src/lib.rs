//! Experiment harness: regenerates every table and figure of the paper.
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Table 1 (overload probability bounds) | [`experiments::table1_csv`] | `table1` |
//! | Figure 5 (intermediate-stage delay vs N) | [`experiments::figure5_csv`] | `figure5` |
//! | Figure 6 (delay vs load, uniform traffic) | [`experiments::figure6`] | `figure6` |
//! | Figure 7 (delay vs load, diagonal traffic) | [`experiments::figure7`] | `figure7` |
//! | Ablation: input discipline × alignment | [`experiments::ablation_alignment`] | `ablation_alignment` |
//! | Ablation: stripe sizing policy | [`experiments::ablation_sizing`] | `ablation_sizing` |
//! | Any scheme × traffic × size (JSON `ScenarioSpec`) | — | `scenario` |
//! | A directory of specs × scheme/load overrides, run in parallel | — | `suite` |
//!
//! Each binary prints a CSV to stdout; `cargo bench` (the `experiments_quick`
//! bench target) runs reduced-size versions of all of them so the whole
//! evaluation can be smoke-tested in one command.  Every simulation point is
//! a `sprinklers_sim::spec::ScenarioSpec` resolved by the scheme registry
//! and executed by `sprinklers_sim::engine::Engine`, so the binaries, the
//! benches and external spec files all describe runs the same way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod cli;
pub mod experiments;
