//! Minimal ASCII charting for the figure binaries.
//!
//! The paper's Figures 6 and 7 are log-scale delay-vs-load plots with one
//! series per scheme.  The figure binaries print CSV for downstream plotting,
//! but also render a quick ASCII version of the same chart so the shape can
//! be eyeballed straight from the terminal (who wins, by how much, where the
//! curves cross) without any external tooling.

use std::collections::BTreeMap;

/// One named series of (x, y) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, sorted by x.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create a series, sorting the points by x.
    pub fn new(label: impl Into<String>, mut points: Vec<(f64, f64)>) -> Self {
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("x values must not be NaN"));
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Render a log10-y ASCII chart of several series.
///
/// Each series is drawn with its own marker character; collisions show the
/// marker of the later series.  Returns a multi-line string.
pub fn log_y_chart(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "chart must be at least 16x4");
    let markers = ['S', 'U', 'F', 'P', 'L', 'x', 'o', '*', '+'];
    let all_points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|&(_, y)| y > 0.0 && y.is_finite())
        .collect();
    if all_points.is_empty() {
        return String::from("(no data)\n");
    }
    let x_min = all_points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = all_points
        .iter()
        .map(|p| p.0)
        .fold(f64::NEG_INFINITY, f64::max);
    let y_min = all_points
        .iter()
        .map(|p| p.1.log10())
        .fold(f64::INFINITY, f64::min);
    let y_max = all_points
        .iter()
        .map(|p| p.1.log10())
        .fold(f64::NEG_INFINITY, f64::max);
    let x_span = (x_max - x_min).max(1e-9);
    let y_span = (y_max - y_min).max(1e-9);

    let mut grid: BTreeMap<(usize, usize), char> = BTreeMap::new();
    for (si, s) in series.iter().enumerate() {
        let marker = markers[si % markers.len()];
        for &(x, y) in &s.points {
            if y <= 0.0 || !y.is_finite() {
                continue;
            }
            let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row = (((y.log10() - y_min) / y_span) * (height - 1) as f64).round() as usize;
            grid.insert((height - 1 - row, col), marker);
        }
    }

    let mut out = String::new();
    for r in 0..height {
        // y-axis label: the log10 value at this row.
        let log_y = y_max - (r as f64 / (height - 1) as f64) * y_span;
        out.push_str(&format!("{:>8.1} |", 10f64.powf(log_y)));
        for c in 0..width {
            out.push(*grid.get(&(r, c)).unwrap_or(&' '));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>9}{:<width$.2}{:>8.2}\n",
        "",
        x_min,
        x_max,
        width = width - 4
    ));
    out.push_str("legend: ");
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{}={} ", markers[si % markers.len()], s.label));
    }
    out.push('\n');
    out
}

/// Group delay-vs-load experiment points into chart series (one per scheme).
pub fn points_to_series(points: &[crate::experiments::SchemePoint]) -> Vec<Series> {
    let mut by_scheme: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for p in points {
        by_scheme
            .entry(p.scheme.clone())
            .or_default()
            .push((p.load, p.report.delay.mean().max(1.0)));
    }
    by_scheme
        .into_iter()
        .map(|(label, pts)| Series::new(label, pts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_every_series_marker_and_label() {
        let s1 = Series::new("sprinklers", vec![(0.1, 10.0), (0.5, 20.0), (0.9, 100.0)]);
        let s2 = Series::new("ufs", vec![(0.1, 5000.0), (0.5, 800.0), (0.9, 200.0)]);
        let chart = log_y_chart(&[s1, s2], 40, 10);
        assert!(chart.contains('S'));
        assert!(chart.contains('U'));
        assert!(chart.contains("sprinklers"));
        assert!(chart.contains("ufs"));
        assert!(chart.lines().count() > 10);
    }

    #[test]
    fn series_points_are_sorted_by_x() {
        let s = Series::new("a", vec![(0.9, 1.0), (0.1, 2.0), (0.5, 3.0)]);
        assert_eq!(s.points[0].0, 0.1);
        assert_eq!(s.points[2].0, 0.9);
    }

    #[test]
    fn empty_input_renders_a_placeholder() {
        assert_eq!(log_y_chart(&[], 40, 10), "(no data)\n");
        let s = Series::new("a", vec![(0.5, f64::NAN)]);
        assert_eq!(log_y_chart(&[s], 40, 10), "(no data)\n");
    }

    #[test]
    #[should_panic]
    fn tiny_charts_are_rejected() {
        let s = Series::new("a", vec![(0.1, 1.0)]);
        let _ = log_y_chart(&[s], 4, 2);
    }

    #[test]
    fn higher_y_values_appear_on_higher_rows() {
        let s = Series::new("a", vec![(0.0, 1.0), (1.0, 1000.0)]);
        let chart = log_y_chart(&[s], 20, 8);
        let lines: Vec<&str> = chart.lines().collect();
        // The high-value point (x = 1.0) must appear on an earlier (higher)
        // line than the low-value point (x = 0.0).
        let row_of = |col_predicate: fn(usize) -> bool| {
            lines
                .iter()
                .position(|l| {
                    l.char_indices()
                        .any(|(i, ch)| ch == 'S' && col_predicate(i))
                })
                .unwrap()
        };
        let high_row = row_of(|i| i > 20);
        let low_row = row_of(|i| i <= 20);
        assert!(high_row < low_row);
    }
}
