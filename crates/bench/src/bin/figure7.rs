//! Regenerate Figure 7 of the paper: average delay versus load under
//! quasi-diagonal Bernoulli traffic, N = 32.
//!
//! Usage: `cargo run --release -p sprinklers-bench --bin figure7 [--quick]`

use sprinklers_bench::chart::{log_y_chart, points_to_series};
use sprinklers_bench::experiments::{figure7, points_to_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    eprintln!("running figure 7 (quasi-diagonal traffic), quick = {quick} ...");
    let points = figure7(quick);
    println!("# Figure 7: average delay vs load, quasi-diagonal traffic, N = 32");
    print!("{}", points_to_csv(&points));
    println!();
    println!("# mean delay (slots, log scale) vs offered load:");
    print!("{}", log_y_chart(&points_to_series(&points), 60, 18));
}
