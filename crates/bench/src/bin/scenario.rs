//! Run one simulation scenario described by a JSON `ScenarioSpec`.
//!
//! This is the generic front end to the engine: any scheme the registry
//! knows, any traffic pattern, any run length — one spec file (or inline
//! flags), one CSV row out.
//!
//! Usage:
//! ```text
//! cargo run --release -p sprinklers-bench --bin scenario -- --spec scenario.json
//! cargo run --release -p sprinklers-bench --bin scenario -- \
//!     --scheme sprinklers --n 32 --load 0.9 --pattern diagonal [--quick]
//! cargo run --release -p sprinklers-bench --bin scenario -- --print-template
//! cargo run --release -p sprinklers-bench --bin scenario -- --list-schemes
//! ```

use sprinklers_bench::cli::{arg_value, fail, has_flag, load_spec_file, parse_flag};
use sprinklers_sim::engine::{Engine, RunConfig};
use sprinklers_sim::registry;
use sprinklers_sim::report::SimReport;
use sprinklers_sim::spec::{ScenarioSpec, TrafficSpec};

const USAGE: &str = "\
Run one simulation scenario described by a JSON ScenarioSpec.

Usage:
  scenario --spec <file.json> [--batch <slots>] [--threads <N>]
  scenario [--scheme <name>] [--n <ports>] [--load <rho>]
           [--pattern uniform|diagonal] [--seed <u64>] [--quick]
           [--batch <slots>] [--threads <N>]
  scenario [--scheme <name>] [--n <ports>] --trace <file.{csv,sprt}>
           [--repeat <copies>] [--scale <factor>] [--seed <u64>] [--quick]
  scenario --print-template    print a ScenarioSpec JSON template
  scenario --list-schemes      list every scheme the registry knows

Sidecar:
  --metrics full --metrics-out <file.json>
      also write the full metrics JSON (delay histogram, per-output
      throughput and utilization, Jain fairness, windowed time series) to
      <file.json>; stdout stays the same two CSV lines either way

--trace replays a recorded trace file (see the `trace` binary) instead of a
synthetic pattern; --repeat tiles it and --scale compresses (>1) or
stretches (<1) its timebase.

A spec file may carry a \"topology\" object (kinds: fat-tree2, butterfly)
to run a multi-switch fabric instead of one switch: the scheme is
instantiated at every fabric node, \"routing\" picks the inter-switch path
strategy (ecmp | random | stripe) and \"link\" sets the wire latency and
admission gap.  Metrics are end-to-end (host to host).  See the README's
\"Fabric topologies\" section for the schema.

A fabric spec may additionally carry a \"faults\" object: timed
\"events\" ({\"slot\", \"kind\": link-down|link-up|node-down|node-up,
\"link\"|\"node\": index}) plus an optional seeded \"random\" link-failure
generator ({\"mtbf\", \"mttr\", \"seed\"}).  Faulted runs stay
byte-identical at any batch/thread/worker setting; losses are typed and
reported (with per-event reconvergence times) in the metrics sidecar.
See the README's \"Fault injection\" section for semantics.

--batch sets how many slots each Switch::step_batch call advances (default
64; effectively capped at n by the occupancy-sampling period).  It is a
pure performance knob: the report is byte-identical at any value.

--threads shards each simulated slot's fabric work across N worker threads
(default 1 = serial; clamped to n by the switch).  Also a pure performance
knob: the report is byte-identical at any value.

Defaults: --scheme sprinklers --n 32 --load 0.6 --pattern uniform --seed 2014";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if has_flag(&args, "--help") || has_flag(&args, "-h") {
        println!("{USAGE}");
        return;
    }
    if has_flag(&args, "--list-schemes") {
        for scheme in registry::schemes() {
            println!("{scheme}");
        }
        return;
    }
    if has_flag(&args, "--print-template") {
        println!("{}", ScenarioSpec::new("sprinklers", 32).to_json());
        return;
    }

    let mut spec = if let Some(path) = arg_value(&args, "--spec") {
        load_spec_file(&path)
    } else {
        let scheme = arg_value(&args, "--scheme").unwrap_or_else(|| "sprinklers".into());
        let n: usize = parse_flag(&args, "--n").unwrap_or(32);
        let load: f64 = parse_flag(&args, "--load").unwrap_or(0.6);
        let traffic = if let Some(trace) = arg_value(&args, "--trace") {
            // Silently ignoring --load/--pattern here would let a user
            // believe they swept a trace's load; the trace knobs are
            // --scale and --repeat.
            if arg_value(&args, "--load").is_some() || arg_value(&args, "--pattern").is_some() {
                fail("--trace replays the recorded workload; use --scale (not --load/--pattern) to reshape it");
            }
            TrafficSpec::Trace {
                path: trace,
                format: None,
                repeat: parse_flag(&args, "--repeat").unwrap_or(1),
                scale: parse_flag(&args, "--scale").unwrap_or(1.0),
            }
        } else {
            match arg_value(&args, "--pattern").as_deref() {
                None | Some("uniform") => TrafficSpec::Uniform { load },
                Some("diagonal") => TrafficSpec::Diagonal { load },
                Some(other) => fail(&format!("unknown --pattern {other} (uniform|diagonal)")),
            }
        };
        let run = if has_flag(&args, "--quick") {
            RunConfig::quick()
        } else {
            RunConfig::default()
        };
        let seed: u64 = parse_flag(&args, "--seed").unwrap_or(2014);
        ScenarioSpec::new(scheme, n)
            .with_traffic(traffic)
            .with_run(run)
            .with_seed(seed)
    };
    if let Some(batch) = parse_flag::<u32>(&args, "--batch") {
        if batch == 0 {
            fail("--batch must be at least 1");
        }
        spec.batch = batch;
    }
    if let Some(threads) = parse_flag::<u32>(&args, "--threads") {
        if threads == 0 {
            fail("--threads must be at least 1");
        }
        spec.threads = threads;
    }

    let metrics_out = match arg_value(&args, "--metrics").as_deref() {
        None => {
            if arg_value(&args, "--metrics-out").is_some() {
                fail("--metrics-out requires --metrics full");
            }
            None
        }
        Some("full") => Some(
            arg_value(&args, "--metrics-out")
                .unwrap_or_else(|| fail("--metrics full needs --metrics-out <file.json>")),
        ),
        Some(other) => fail(&format!("--metrics only understands 'full', got '{other}'")),
    };

    eprintln!("running scenario: {}", spec.label());
    eprintln!("{}", spec.to_json());
    let report = Engine::new()
        .run(&spec)
        .unwrap_or_else(|e| fail(&e.to_string()));
    print_report(&report);
    if let Some(path) = metrics_out {
        let mut json = report.metrics_json();
        json.push('\n');
        std::fs::write(&path, json).unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote metrics sidecar to {path}");
    }
}

fn print_report(report: &SimReport) {
    println!("{}", SimReport::csv_header());
    println!("{}", report.csv_row());
    eprintln!(
        "delivered {}/{} packets ({:.1}%), mean delay {:.1} slots, \
         VOQ reorders {}, flow reorders {}",
        report.delivered_packets,
        report.offered_packets,
        report.delivery_ratio() * 100.0,
        report.delay.mean(),
        report.reordering.voq_reorder_events,
        report.reordering.flow_reorder_events,
    );
}
