//! Regenerate Figure 5 of the paper: expected intermediate-stage delay (in
//! service periods) versus switch size at ρ = 0.9.
//!
//! Usage: `cargo run --release -p sprinklers-bench --bin figure5 [--quick]`

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("# Figure 5: expected delay at the intermediate stage, rho = 0.9");
    print!("{}", sprinklers_bench::experiments::figure5_csv(quick));
}
