//! Regenerate Table 1 of the paper: worst-case overload probability bounds.
//!
//! Usage: `cargo run --release -p sprinklers-bench --bin table1`

fn main() {
    println!("# Table 1: upper bound on P(single queue overloaded), Chernoff/Theorem 2");
    println!("# (the paper's own table saturates around 1e-29/1e-30; values below that");
    println!("#  are reported here at their true, much smaller, magnitude)");
    print!("{}", sprinklers_bench::experiments::table1_csv());
}
