//! Regenerate Figure 6 of the paper: average delay versus load under uniform
//! Bernoulli traffic, N = 32, for the baseline load-balanced switch, UFS,
//! FOFF, Padded Frames and Sprinklers.
//!
//! Usage: `cargo run --release -p sprinklers-bench --bin figure6 [--quick]`

use sprinklers_bench::chart::{log_y_chart, points_to_series};
use sprinklers_bench::experiments::{figure6, points_to_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    eprintln!("running figure 6 (uniform traffic), quick = {quick} ...");
    let points = figure6(quick);
    println!("# Figure 6: average delay vs load, uniform traffic, N = 32");
    print!("{}", points_to_csv(&points));
    println!();
    println!("# mean delay (slots, log scale) vs offered load:");
    print!("{}", log_y_chart(&points_to_series(&points), 60, 18));
}
