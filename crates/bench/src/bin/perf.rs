//! Simulator-throughput trajectory harness: Mslots/s of the batched stepping
//! hot path for a scheme × n × load × batch grid, with a machine-readable
//! `--json` mode so successive PRs can track the perf trajectory
//! (`BENCH_5.json` pins the numbers measured when sparse stepping landed).
//!
//! Unlike the criterion benches this binary times the *stepping* path in
//! isolation: the arrival schedule is pre-generated outside the timed region
//! (as compact records, not packets), so at light load the measurement shows
//! what the switch costs per slot rather than what the traffic generator
//! costs.  The timed loop mirrors the engine exactly — inject the slot's
//! arrivals, then `step_batch` maximal arrival-free runs in `batch`-sized
//! chunks — and every cell ends with an arrival-free drain window, the
//! drain-tail shape that dominates real `RunConfig`s.
//!
//! ```text
//! perf [--schemes a,b,..] [--ns 64,256] [--loads 0.05,0.3,0.95]
//!      [--batches 1,64] [--threads 1,4] [--slots 8192] [--drain 16384]
//!      [--reps 3] [--json out.json] [--quick] [--fabric ExCxH]
//! ```
//!
//! `--threads` is a grid dimension like `--batches`: each listed value runs
//! every cell with that many intra-slot worker threads
//! ([`Switch::set_threads`]).  Deliveries are byte-identical at any value;
//! only the throughput column should move.
//!
//! `--fabric ExCxH` appends fat-tree fabric cells (E edge switches, C
//! cores, H hosts per edge, stripe routing) after the single-switch grid:
//! the same timed loop drives a whole [`FabricWorld`] through the
//! [`Steppable`] surface, so the numbers are directly comparable slots/s.
//! Schemes whose node sizes the fabric can't instantiate (e.g. Sprinklers
//! on a non-power-of-two node) are skipped with a note on stderr.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprinklers_bench::cli::{has_flag, parse_flag, parse_list_flag};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::Packet;
use sprinklers_core::switch::{CountingSink, Steppable};
use sprinklers_sim::fabric::FabricWorld;
use sprinklers_sim::registry;
use sprinklers_sim::spec::{LinkSpec, RoutingSpec, SizingSpec, TopologySpec};
use std::fmt::Write as _;
use std::time::Instant;

/// One pre-generated arrival: (slot, input, output).  Packets are built
/// inside the timed loop (arrival-side work is part of what is measured);
/// the records keep the schedule's memory footprint small at large n.
type Arrival = (u64, u32, u32);

/// Bernoulli-uniform arrival schedule: each input fires with probability
/// `load` per slot, destination uniform — the same admissible pattern the
/// engine's uniform traffic generates, pre-drawn so RNG cost stays outside
/// the timed region.
fn schedule(n: usize, load: f64, slots: u64, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for slot in 0..slots {
        for input in 0..n {
            if rng.gen_range(0.0..1.0) < load {
                let output = rng.gen_range(0..n);
                out.push((slot, input as u32, output as u32));
            }
        }
    }
    out
}

struct Cell {
    scheme: String,
    n: usize,
    load: f64,
    batch: u32,
    threads: u32,
    total_slots: u64,
    delivered: u64,
    mslots_per_sec: f64,
}

/// Grid coordinates of one timed cell (everything `drive` needs besides the
/// pre-generated schedule and the window lengths).
struct CellCfg<'a> {
    scheme: &'a str,
    n: usize,
    load: f64,
    batch: u64,
    threads: u32,
    /// When set, the cell times a whole fabric (n = its host count)
    /// instead of one switch.  Perf cells always run fault-free: the
    /// harness measures the steady-state hot path, and healthy fabrics
    /// skip the fault machinery entirely (`FabricWorld::with_faults` is
    /// never installed here).
    fabric: Option<&'a TopologySpec>,
}

/// Build the world a cell times: a lone registry switch, or a fabric.
fn build_world(cfg: &CellCfg) -> Result<Box<dyn Steppable>, String> {
    let load = cfg.load.max(0.01);
    match cfg.fabric {
        Some(topo) => FabricWorld::build(topo, cfg.scheme, &SizingSpec::Matrix, 7, load)
            .map(|w| Box::new(w) as Box<dyn Steppable>)
            .map_err(|e| e.to_string()),
        None => {
            let matrix = TrafficMatrix::uniform(cfg.n, load);
            registry::build_named(cfg.scheme, cfg.n, &SizingSpec::Matrix, &matrix, 7)
                .map(|s| Box::new(s) as Box<dyn Steppable>)
                .map_err(|e| e.to_string())
        }
    }
}

/// Drive one cell once: inject + advance over offered + drain slots,
/// timed.  Returns (seconds, delivered packets).
fn drive(cfg: &CellCfg, arrivals: &[Arrival], offered_slots: u64, drain_slots: u64) -> (f64, u64) {
    let &CellCfg {
        n, batch, threads, ..
    } = cfg;
    let mut world = build_world(cfg).unwrap_or_else(|e| sprinklers_bench::cli::fail(&e));
    world.set_parallelism(threads as usize);
    let mut voq_seq = vec![0u64; n * n];
    let mut sink = CountingSink::default();
    let total = offered_slots + drain_slots;
    let start = Instant::now();
    let mut idx = 0usize;
    let mut next_id = 0u64;
    let mut slot = 0u64;
    while slot < total {
        while idx < arrivals.len() && arrivals[idx].0 == slot {
            let (_, input, output) = arrivals[idx];
            let (input, output) = (input as usize, output as usize);
            let key = input * n + output;
            let p = Packet::new(input, output, next_id, slot).with_voq_seq(voq_seq[key]);
            voq_seq[key] += 1;
            next_id += 1;
            world.inject(p);
            idx += 1;
        }
        let next_arrival = arrivals.get(idx).map_or(total, |a| a.0);
        let run_end = next_arrival.clamp(slot + 1, total);
        let mut s = slot;
        while s < run_end {
            let count = batch.min(run_end - s);
            world.advance(s, count as u32, &mut sink);
            s += count;
        }
        slot = run_end;
    }
    (start.elapsed().as_secs_f64(), sink.total())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let schemes = parse_list_flag::<String>(&args, "--schemes").unwrap_or_else(|| {
        let all = [
            "sprinklers",
            "oq",
            "baseline-lb",
            "ufs",
            "foff",
            "padded-frames",
            "tcp-hash",
        ];
        let quick_set = ["sprinklers", "oq", "baseline-lb"];
        let list: &[&str] = if quick { &quick_set } else { &all };
        list.iter().map(|s| s.to_string()).collect()
    });
    let ns = parse_list_flag::<usize>(&args, "--ns").unwrap_or_else(|| {
        if quick {
            vec![64]
        } else {
            vec![64, 256]
        }
    });
    let loads = parse_list_flag::<f64>(&args, "--loads").unwrap_or_else(|| {
        if quick {
            vec![0.05, 0.95]
        } else {
            vec![0.05, 0.3, 0.95]
        }
    });
    let batches = parse_list_flag::<u32>(&args, "--batches").unwrap_or_else(|| vec![1, 64]);
    let threads_grid = parse_list_flag::<u32>(&args, "--threads").unwrap_or_else(|| vec![1]);
    if threads_grid.contains(&0) {
        sprinklers_bench::cli::fail("--threads values must be at least 1");
    }
    let offered: u64 = parse_flag(&args, "--slots").unwrap_or(if quick { 2_048 } else { 8_192 });
    let drain: u64 = parse_flag(&args, "--drain").unwrap_or(if quick { 4_096 } else { 16_384 });
    let reps: u32 = parse_flag(&args, "--reps").unwrap_or(if quick { 1 } else { 3 });
    let json_path = sprinklers_bench::cli::arg_value(&args, "--json");

    let mut cells: Vec<Cell> = Vec::new();
    println!("scheme,n,load,batch,threads,total_slots,delivered,mslots_per_sec");
    for &n in &ns {
        for &load in &loads {
            let arrivals = schedule(n, load, offered, 2014);
            for scheme in &schemes {
                for &batch in &batches {
                    for &threads in &threads_grid {
                        // Best-of-reps: throughput benchmarking wants the
                        // least perturbed run, not the average.
                        let mut best = f64::INFINITY;
                        let mut delivered = 0u64;
                        let cfg = CellCfg {
                            scheme,
                            n,
                            load,
                            batch: u64::from(batch),
                            threads,
                            fabric: None,
                        };
                        for _ in 0..reps {
                            let (secs, d) = drive(&cfg, &arrivals, offered, drain);
                            best = best.min(secs);
                            delivered = d;
                        }
                        let total_slots = offered + drain;
                        let mslots = total_slots as f64 / best / 1e6;
                        println!(
                            "{scheme},{n},{load},{batch},{threads},{total_slots},\
                             {delivered},{mslots:.2}"
                        );
                        cells.push(Cell {
                            scheme: scheme.clone(),
                            n,
                            load,
                            batch,
                            threads,
                            total_slots,
                            delivered,
                            mslots_per_sec: mslots,
                        });
                    }
                }
            }
        }
    }

    // Fabric cells ride after the single-switch grid: same timed loop, the
    // whole fat-tree as the world, n = its host count.
    if let Some(shape) = sprinklers_bench::cli::arg_value(&args, "--fabric") {
        let topo = parse_fabric(&shape);
        let hosts = topo.hosts();
        topo.validate(hosts)
            .unwrap_or_else(|e| sprinklers_bench::cli::fail(&e.to_string()));
        for &load in &loads {
            let arrivals = schedule(hosts, load, offered, 2014);
            for scheme in &schemes {
                for &batch in &batches {
                    for &threads in &threads_grid {
                        let cfg = CellCfg {
                            scheme,
                            n: hosts,
                            load,
                            batch: u64::from(batch),
                            threads,
                            fabric: Some(&topo),
                        };
                        let label = match build_world(&cfg) {
                            Ok(world) => world.label(),
                            Err(e) => {
                                eprintln!("skipping fabric cell for {scheme}: {e}");
                                continue;
                            }
                        };
                        let mut best = f64::INFINITY;
                        let mut delivered = 0u64;
                        for _ in 0..reps {
                            let (secs, d) = drive(&cfg, &arrivals, offered, drain);
                            best = best.min(secs);
                            delivered = d;
                        }
                        let total_slots = offered + drain;
                        let mslots = total_slots as f64 / best / 1e6;
                        println!(
                            "{label},{hosts},{load},{batch},{threads},{total_slots},\
                             {delivered},{mslots:.2}"
                        );
                        cells.push(Cell {
                            scheme: label,
                            n: hosts,
                            load,
                            batch,
                            threads,
                            total_slots,
                            delivered,
                            mslots_per_sec: mslots,
                        });
                    }
                }
            }
        }
    }

    if let Some(path) = json_path {
        std::fs::write(&path, render_json(offered, drain, &cells))
            .unwrap_or_else(|e| sprinklers_bench::cli::fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
}

/// Parse `--fabric ExCxH` into a stripe-routed fat-tree with unit links.
fn parse_fabric(shape: &str) -> TopologySpec {
    let parts: Vec<usize> = shape
        .split('x')
        .map(|p| {
            p.parse().unwrap_or_else(|_| {
                sprinklers_bench::cli::fail(&format!(
                    "--fabric expects ExCxH (e.g. 2x2x4), got '{shape}'"
                ))
            })
        })
        .collect();
    let [edges, cores, hosts_per_edge] = parts[..] else {
        sprinklers_bench::cli::fail(&format!(
            "--fabric expects ExCxH (e.g. 2x2x4), got '{shape}'"
        ));
    };
    TopologySpec::FatTree2 {
        edges,
        cores,
        hosts_per_edge,
        routing: RoutingSpec::Stripe,
        link: LinkSpec::default(),
    }
}

/// `{:.2}` for a finite throughput, JSON `null` otherwise.  `Display` for
/// f64 happily writes `inf` or `NaN` — neither is JSON — and a cell whose
/// best elapsed time rounds to ~0 s really does produce an infinite
/// Mslots/s, so the guard is load-bearing, not defensive.
fn json_mslots(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "null".to_string()
    }
}

/// Render the machine-readable report.  Hand-rolled JSON: the workspace's
/// serde is an offline marker shim, and the schema here is flat enough that
/// formatting it directly is clearer than growing the shim a serializer.
fn render_json(offered: u64, drain: u64, cells: &[Cell]) -> String {
    let mut out = String::from("{\n  \"bench\": \"sparse_stepping\",\n");
    let _ = writeln!(out, "  \"offered_slots\": {offered},");
    let _ = writeln!(out, "  \"drain_slots\": {drain},");
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"scheme\": \"{}\", \"n\": {}, \"load\": {}, \"batch\": {}, \
             \"threads\": {}, \"total_slots\": {}, \"delivered\": {}, \
             \"mslots_per_sec\": {}}}{}",
            c.scheme,
            c.n,
            c.load,
            c.batch,
            c.threads,
            c.total_slots,
            c.delivered,
            json_mslots(c.mslots_per_sec),
            comma
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal JSON well-formedness checker (the sim crate's spec reader is
    /// deliberately object/number/string-only, so it can't validate the
    /// array-bearing report).  Returns the rest of the input on success.
    fn skip_value(s: &str) -> Result<&str, String> {
        let s = s.trim_start();
        let mut chars = s.char_indices();
        match chars.next().map(|(_, c)| c) {
            Some('{') => skip_seq(&s[1..], '}', true),
            Some('[') => skip_seq(&s[1..], ']', false),
            Some('"') => skip_string(s),
            Some(c) if c == '-' || c.is_ascii_digit() => {
                let end = s
                    .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                    .unwrap_or(s.len());
                s[..end]
                    .parse::<f64>()
                    .map_err(|e| format!("bad number '{}': {e}", &s[..end]))?;
                Ok(&s[end..])
            }
            _ if s.starts_with("null") => Ok(&s[4..]),
            _ if s.starts_with("true") => Ok(&s[4..]),
            _ if s.starts_with("false") => Ok(&s[5..]),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn skip_string(s: &str) -> Result<&str, String> {
        let inner = &s[1..];
        let end = inner.find('"').ok_or("unterminated string")?;
        Ok(&inner[end + 1..])
    }

    fn skip_seq(mut s: &str, close: char, keyed: bool) -> Result<&str, String> {
        loop {
            s = s.trim_start();
            if let Some(rest) = s.strip_prefix(close) {
                return Ok(rest);
            }
            if keyed {
                s = skip_string(s.trim_start())?;
                s = s
                    .trim_start()
                    .strip_prefix(':')
                    .ok_or("missing ':' after key")?;
            }
            s = skip_value(s)?;
            s = s.trim_start();
            if let Some(rest) = s.strip_prefix(',') {
                s = rest;
            } else if !s.starts_with(close) {
                return Err(format!(
                    "expected ',' or '{close}' at {:?}",
                    &s[..s.len().min(12)]
                ));
            }
        }
    }

    fn assert_parses(text: &str) {
        let rest = skip_value(text).unwrap_or_else(|e| panic!("{e}\nin:\n{text}"));
        assert!(rest.trim().is_empty(), "trailing input: {rest:?}");
    }

    #[test]
    fn report_json_is_well_formed_even_with_non_finite_throughput() {
        let cell = |mslots: f64| Cell {
            scheme: "sprinklers".into(),
            n: 64,
            load: 0.05,
            batch: 64,
            threads: 4,
            total_slots: 6144,
            delivered: 19_000,
            mslots_per_sec: mslots,
        };
        // A ~0s best elapsed time yields ±inf; a 0/0 pathology yields NaN.
        // `{:.2}` would write them verbatim, producing unparseable JSON.
        for cells in [
            vec![],
            vec![cell(123.45)],
            vec![cell(f64::INFINITY)],
            vec![cell(f64::NAN), cell(0.0), cell(f64::NEG_INFINITY)],
        ] {
            let text = render_json(2048, 4096, &cells);
            assert_parses(&text);
            assert!(!text.contains("inf") && !text.contains("NaN"), "{text}");
        }
    }

    #[test]
    fn non_finite_throughput_renders_as_null() {
        assert_eq!(json_mslots(f64::INFINITY), "null");
        assert_eq!(json_mslots(f64::NEG_INFINITY), "null");
        assert_eq!(json_mslots(f64::NAN), "null");
        assert_eq!(json_mslots(12.345), "12.35");
    }
}
