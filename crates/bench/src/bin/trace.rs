//! Record, inspect and convert workload traces.
//!
//! `trace record` turns *any* scenario — every synthetic generator the spec
//! language knows, at any load, seed and run length — into a replayable
//! trace file, capturing the exact arrival stream the engine would inject
//! plus provenance metadata (label + rate matrix), so replaying the trace
//! under the same scheme/seed/run reproduces the original report byte for
//! byte.  `trace info` validates a trace end to end and prints its header
//! and summary statistics; `trace convert` transcodes between the
//! human-editable CSV and the compact binary `.sprt` without loading the
//! trace into memory.
//!
//! Usage:
//! ```text
//! trace record --spec <file.json> --out <trace.{csv,sprt}> [--format csv|sprt]
//!              [--emit-spec <replay.json>]
//! trace info --in <trace> [--format csv|sprt]
//! trace convert --in <a> --out <b> [--in-format csv|sprt] [--out-format csv|sprt]
//!               [--n <ports>]
//! ```

use sprinklers_bench::cli::{arg_value, fail, has_flag, load_spec_file, parse_flag};
use sprinklers_sim::spec::TrafficSpec;
use sprinklers_sim::traffic::trace_io::{record_spec, TraceFormat, TraceReader, TraceWriter};
use std::path::Path;

const USAGE: &str = "\
Record, inspect and convert workload traces.

Subcommands:
  record   Run a ScenarioSpec's traffic generator and capture its arrival
           stream (the exact packets the engine would inject) to a trace
           file with full provenance metadata.  Replaying the trace under
           the same scheme, seed and run config reproduces the original
           report byte for byte.
  info     Validate a trace file end to end and print its header and
           summary statistics.
  convert  Transcode a trace between CSV and binary .sprt (streaming;
           metadata is preserved).

Usage:
  trace record --spec <file.json> --out <trace.{csv,sprt}> [--format csv|sprt]
               [--emit-spec <replay.json>]
  trace info --in <trace> [--format csv|sprt]
  trace convert --in <a> --out <b> [--in-format csv|sprt] [--out-format csv|sprt]
                [--n <ports>]

Formats default to the file extension (.sprt = binary, anything else CSV).
--emit-spec writes a replay ScenarioSpec next to the trace: the recorded
spec with its traffic block swapped for {\"kind\": \"trace\", ...}.
--n supplies a port count when converting a metadata-free CSV to .sprt.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || has_flag(&args, "--help") || has_flag(&args, "-h") {
        println!("{USAGE}");
        return;
    }
    match args[0].as_str() {
        "record" => record(&args),
        "info" => info(&args),
        "convert" => convert(&args),
        other => fail(&format!("unknown subcommand '{other}' (see --help)")),
    }
}

fn explicit_format(args: &[String], flag: &str) -> Option<TraceFormat> {
    arg_value(args, flag)
        .map(|name| TraceFormat::from_name(&name).unwrap_or_else(|e| fail(&e.to_string())))
}

fn record(args: &[String]) {
    let spec_path =
        arg_value(args, "--spec").unwrap_or_else(|| fail("record needs --spec (see --help)"));
    let out = arg_value(args, "--out").unwrap_or_else(|| fail("record needs --out (see --help)"));
    let spec = load_spec_file(&spec_path);
    let format = explicit_format(args, "--format")
        .unwrap_or_else(|| TraceFormat::from_path(Path::new(&out)));

    let (records, span) = record_spec(&spec, &out, format).unwrap_or_else(|e| fail(&e.to_string()));
    eprintln!(
        "recorded {} ({}): {records} packets over {span} slots from {}",
        out,
        format.name(),
        spec.label(),
    );

    if let Some(replay_path) = arg_value(args, "--emit-spec") {
        // The loaders rebase relative trace paths against the *spec file's*
        // directory, so reference the trace by bare file name when both live
        // in the same directory, and by absolute path otherwise (a cwd-
        // relative path would resolve against the wrong base at load time).
        let out_path = Path::new(&out);
        let trace_ref = match (out_path.parent(), Path::new(&replay_path).parent()) {
            (Some(a), Some(b)) if a == b => out_path
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_else(|| out.clone()),
            _ => std::fs::canonicalize(out_path)
                .unwrap_or_else(|e| fail(&format!("cannot resolve {out}: {e}")))
                .to_string_lossy()
                .into_owned(),
        };
        let mut replay = spec.clone();
        replay.traffic = TrafficSpec::Trace {
            path: trace_ref,
            format: Some(format),
            repeat: 1,
            scale: 1.0,
        };
        std::fs::write(&replay_path, replay.to_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {replay_path}: {e}")));
        eprintln!("wrote replay spec {replay_path}");
    }
}

fn info(args: &[String]) {
    let input = arg_value(args, "--in").unwrap_or_else(|| fail("info needs --in (see --help)"));
    let format = explicit_format(args, "--in-format").or_else(|| explicit_format(args, "--format"));
    let mut reader = TraceReader::open(&input, format).unwrap_or_else(|e| fail(&e.to_string()));

    println!("path:    {input}");
    println!("format:  {}", reader.format().name());
    match reader.meta().n {
        Some(n) => println!("n:       {n}"),
        None => println!("n:       (not declared)"),
    }
    match &reader.meta().label {
        Some(label) => println!("label:   {label}"),
        None => println!("label:   (none)"),
    }
    println!(
        "matrix:  {}",
        if reader.meta().matrix.is_some() {
            "recorded"
        } else {
            "absent (replay derives empirical rates)"
        }
    );
    let declared_slots = reader.meta().slots;

    // Full validating scan: counts, span, and per-port peaks — also the
    // cheapest way to lint a hand-edited trace for format errors.
    let mut records = 0u64;
    let mut first_slot = None;
    let mut last_slot = 0u64;
    let mut busiest_input = (0usize, 0u64);
    let mut input_counts: Vec<u64> = Vec::new();
    loop {
        match reader.next_record() {
            Ok(Some(rec)) => {
                records += 1;
                first_slot.get_or_insert(rec.slot);
                last_slot = rec.slot;
                if rec.input >= input_counts.len() {
                    input_counts.resize(rec.input + 1, 0);
                }
                input_counts[rec.input] += 1;
                if input_counts[rec.input] > busiest_input.1 {
                    busiest_input = (rec.input, input_counts[rec.input]);
                }
            }
            Ok(None) => break,
            Err(e) => fail(&e.to_string()),
        }
    }
    // Mirror the replay path's header check: a file `info` blesses must
    // also open for replay.
    if declared_slots > 0 && records > 0 && declared_slots <= last_slot {
        fail(&format!(
            "header declares {declared_slots} slots but the trace contains slot {last_slot}"
        ));
    }
    let span = declared_slots.max(if records > 0 { last_slot + 1 } else { 0 });
    println!("records: {records}");
    println!("slots:   {span} (declared {declared_slots})");
    if records > 0 {
        println!(
            "first/last arrival slot: {} / {last_slot}",
            first_slot.unwrap_or(0)
        );
        println!(
            "busiest input: port {} with {} packets ({:.3} load)",
            busiest_input.0,
            busiest_input.1,
            busiest_input.1 as f64 / span.max(1) as f64,
        );
    }
    eprintln!("ok: trace validates");
}

fn convert(args: &[String]) {
    let input = arg_value(args, "--in").unwrap_or_else(|| fail("convert needs --in (see --help)"));
    let out = arg_value(args, "--out").unwrap_or_else(|| fail("convert needs --out (see --help)"));
    let in_format = explicit_format(args, "--in-format");
    let out_format = explicit_format(args, "--out-format")
        .unwrap_or_else(|| TraceFormat::from_path(Path::new(&out)));

    let mut reader = TraceReader::open(&input, in_format).unwrap_or_else(|e| fail(&e.to_string()));
    let mut meta = reader.meta().clone();
    if meta.n.is_none() {
        // Metadata-free CSVs can still become .sprt if the caller supplies n.
        meta.n = parse_flag::<usize>(args, "--n");
        if meta.n.is_none() && out_format == TraceFormat::Sprt {
            fail("the input declares no port count; pass --n to convert to .sprt");
        }
    }
    let mut writer =
        TraceWriter::create(&out, out_format, &meta).unwrap_or_else(|e| fail(&e.to_string()));
    loop {
        match reader.next_record() {
            Ok(Some(rec)) => writer.write(&rec).unwrap_or_else(|e| fail(&e.to_string())),
            Ok(None) => break,
            Err(e) => fail(&e.to_string()),
        }
    }
    let (records, span) = writer.finish().unwrap_or_else(|e| fail(&e.to_string()));
    eprintln!(
        "converted {input} ({}) -> {out} ({}): {records} packets over {span} slots",
        reader.format().name(),
        out_format.name(),
    );
}
