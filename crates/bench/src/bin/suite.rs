//! Run a whole directory of scenario specs across every core.
//!
//! The suite runner is the entry point for figure-scale experiment batches:
//! it loads every `*.json` [`ScenarioSpec`] in a directory, optionally
//! crosses each with a scheme list and a load grid (the shape of the paper's
//! Figures 6/7), fans the expanded cases out over a worker pool, and merges
//! the per-run reports into one CSV — byte-identical at any worker count,
//! because results are reassembled in case order and every run is seeded
//! from its spec alone.
//!
//! Two optional sidecars ride along without touching the CSV bytes:
//!
//! * `--cache <dir>` keeps a content-addressed store of finished runs,
//!   keyed by each spec's scientific identity
//!   ([`ScenarioSpec::content_hash`]); cells whose hash already has an
//!   entry are served from the cache instead of re-simulated, and the
//!   merged CSV stays byte-identical either way.
//! * `--metrics full` writes a JSON metrics sidecar (one
//!   [`SimReport::metrics_json`] line per case) next to the CSV.
//!
//! Specs may carry fabric topologies and fault schedules (see the README's
//! "Fabric topologies" and "Fault injection" sections); faulted runs merge
//! byte-identically at any worker count just like healthy ones — the
//! `fault-smoke` CI job pins this.
//!
//! Usage:
//! ```text
//! cargo run --release -p sprinklers-bench --bin suite -- --dir specs/smoke
//! cargo run --release -p sprinklers-bench --bin suite -- \
//!     --dir specs/smoke --workers 4 --quick \
//!     --schemes sprinklers,foff --loads 0.3,0.6,0.9 \
//!     --cache .sprinklers-cache --metrics full --out merged.csv
//! ```

use sprinklers_bench::cli::{arg_value, fail, has_flag, parse_flag, parse_list_flag};
use sprinklers_sim::cache::{CachedRun, ExperimentCache};
use sprinklers_sim::engine::RunConfig;
use sprinklers_sim::parallel::{default_workers, run_specs_parallel};
use sprinklers_sim::report::{merge_csv_rows, metrics_sidecar_json, SimReport};
use sprinklers_sim::spec::{ScenarioSpec, SuiteSpec};

const USAGE: &str = "\
Run every ScenarioSpec JSON file in a directory, in parallel, and merge the
reports into one CSV (stdout or --out).  A per-scheme summary goes to stderr.

Usage:
  suite --dir <specs-dir> [options]

Options:
  --dir <path>         directory of *.json ScenarioSpec files (required)
  --workers <N>        worker threads (default: one per core; 0 means that too)
  --schemes <a,b,c>    re-run every spec once per scheme (overrides the spec)
  --loads <x,y,z>      re-run every (spec, scheme) once per offered load
  --batch <slots>      slots per Switch::step_batch call (perf knob, default
                       from each spec; results are identical at any value)
  --threads <N>        intra-slot worker threads per run (perf knob, default
                       from each spec; results are identical at any value)
  --quick              shrink every run to the quick RunConfig
  --out <file.csv>     write the merged CSV to a file instead of stdout
  --cache <dir>        reuse finished runs from (and store new runs into) a
                       content-addressed cache; keyed by each spec's
                       scientific identity, so --workers/--batch/--threads
                       never affect hits and output stays byte-identical
  --metrics full       also write a JSON metrics sidecar (delay histogram,
                       per-output throughput, Jain fairness, windowed series)
  --metrics-out <file> sidecar path (default: <out>.metrics.json; required
                       if --metrics full is used without --out)

The merged CSV is deterministic: same specs + seeds give byte-identical
output at any --workers, any --batch and any --threads value, and whether
each cell came from the cache or a fresh run.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if has_flag(&args, "--help") || has_flag(&args, "-h") {
        println!("{USAGE}");
        return;
    }

    let dir = arg_value(&args, "--dir").unwrap_or_else(|| fail("--dir is required (see --help)"));
    let workers = parse_flag::<usize>(&args, "--workers").unwrap_or(0);
    let out = arg_value(&args, "--out");
    let want_metrics = match arg_value(&args, "--metrics").as_deref() {
        None => false,
        Some("full") => true,
        Some(other) => fail(&format!("--metrics only understands 'full', got '{other}'")),
    };
    let metrics_out = arg_value(&args, "--metrics-out");
    let sidecar_path = if want_metrics {
        Some(metrics_out.clone().unwrap_or_else(|| match &out {
            Some(csv) => format!("{csv}.metrics.json"),
            None => {
                fail("--metrics full needs --out (to derive the sidecar path) or --metrics-out")
            }
        }))
    } else {
        if metrics_out.is_some() {
            fail("--metrics-out requires --metrics full");
        }
        None
    };
    let cache = arg_value(&args, "--cache").map(|dir| {
        ExperimentCache::open(&dir)
            .unwrap_or_else(|e| fail(&format!("cannot open cache directory {dir}: {e}")))
    });

    let mut suite = SuiteSpec::new(&dir);
    if let Some(schemes) = parse_list_flag::<String>(&args, "--schemes") {
        suite = suite.with_schemes(schemes);
    }
    if let Some(loads) = parse_list_flag::<f64>(&args, "--loads") {
        suite = suite.with_loads(loads);
    }
    if let Some(batch) = parse_flag::<u32>(&args, "--batch") {
        if batch == 0 {
            fail("--batch must be at least 1");
        }
        suite = suite.with_batch(batch);
    }
    if let Some(threads) = parse_flag::<u32>(&args, "--threads") {
        if threads == 0 {
            fail("--threads must be at least 1");
        }
        suite = suite.with_threads(threads);
    }

    let mut cases = suite.load_cases().unwrap_or_else(|e| fail(&e.to_string()));
    if has_flag(&args, "--quick") {
        for case in &mut cases {
            case.spec.run = RunConfig::quick();
        }
    }

    let effective_workers = if workers == 0 {
        default_workers()
    } else {
        workers
    };
    eprintln!(
        "suite: {} case(s) from {dir} across {effective_workers} worker(s)",
        cases.len()
    );

    // Probe the cache *after* every override (--quick changes the run
    // config, which is part of the scientific identity).  A stored entry
    // lacking metrics cannot serve a --metrics run, so it counts as a
    // miss and gets recomputed (and re-stored with metrics).
    let mut outcomes: Vec<Option<CachedRun>> = cases
        .iter()
        .map(|case| {
            cache
                .as_ref()
                .and_then(|c| c.load(case.spec.content_hash()))
                .filter(|run| !want_metrics || run.metrics_json.is_some())
        })
        .collect();
    let miss_indices: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter_map(|(i, o)| o.is_none().then_some(i))
        .collect();
    if cache.is_some() {
        let (total, misses) = (cases.len(), miss_indices.len());
        if misses == 0 {
            eprintln!("suite: cache: all {total} case(s) served from cache");
        } else {
            eprintln!(
                "suite: cache: {} hit(s), {misses} miss(es) of {total}",
                total - misses
            );
        }
    }

    let miss_specs: Vec<ScenarioSpec> = miss_indices
        .iter()
        .map(|&i| cases[i].spec.clone())
        .collect();
    let t0 = std::time::Instant::now();
    let results = run_specs_parallel(&miss_specs, workers);
    let elapsed = t0.elapsed();
    let computed = results.len();

    // Fail on the earliest failing case (deterministic), naming it.
    for (&i, result) in miss_indices.iter().zip(results) {
        let report: SimReport = match result {
            Ok(report) => report,
            Err(e) => fail(&e.context(format!("case '{}'", cases[i].name)).to_string()),
        };
        let run = CachedRun::from_report(&report, want_metrics);
        if let Some(cache) = &cache {
            let hash = cases[i].spec.content_hash();
            cache
                .store(hash, &run)
                .unwrap_or_else(|e| fail(&format!("cannot store cache entry {hash:032x}: {e}")));
        }
        outcomes[i] = Some(run);
    }
    let runs: Vec<CachedRun> = outcomes.into_iter().map(Option::unwrap).collect();

    let csv = merge_csv_rows(
        cases
            .iter()
            .map(|c| c.name.as_str())
            .zip(runs.iter().map(|r| r.csv_row.clone())),
    );
    match &out {
        Some(path) => {
            std::fs::write(path, &csv)
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            eprintln!("suite: wrote {} rows to {path}", runs.len());
        }
        None => print!("{csv}"),
    }
    if let Some(path) = &sidecar_path {
        let sidecar = metrics_sidecar_json(
            cases
                .iter()
                .zip(&runs)
                .map(|(c, r)| (c.name.as_str(), r.metrics_json.as_deref().unwrap())),
        );
        std::fs::write(path, &sidecar)
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("suite: wrote metrics sidecar to {path}");
    }

    print_summary(&cases, &runs);
    eprintln!(
        "suite: {computed} run(s) in {:.2} s ({:.2} s/run effective)",
        elapsed.as_secs_f64(),
        elapsed.as_secs_f64() / computed.max(1) as f64,
    );
}

/// Per-scheme aggregate table on stderr, sorted by scheme name.  Works
/// from [`CachedRun`] scalars so cached and fresh cells contribute
/// identically.
fn print_summary(cases: &[sprinklers_sim::spec::SuiteCase], runs: &[CachedRun]) {
    struct Agg {
        runs: usize,
        delay_sum: f64,
        worst_p99: u64,
        reorders: u64,
        min_delivery: f64,
    }
    let mut schemes: Vec<(String, Agg)> = Vec::new();
    for (case, run) in cases.iter().zip(runs) {
        let key = case.spec.scheme.clone();
        let agg = match schemes.iter_mut().find(|(name, _)| *name == key) {
            Some((_, agg)) => agg,
            None => {
                schemes.push((
                    key,
                    Agg {
                        runs: 0,
                        delay_sum: 0.0,
                        worst_p99: 0,
                        reorders: 0,
                        min_delivery: f64::INFINITY,
                    },
                ));
                &mut schemes.last_mut().unwrap().1
            }
        };
        agg.runs += 1;
        agg.delay_sum += run.mean_delay;
        agg.worst_p99 = agg.worst_p99.max(run.p99_delay);
        agg.reorders += run.voq_reorders;
        agg.min_delivery = agg.min_delivery.min(run.delivery_ratio);
    }
    schemes.sort_by(|a, b| a.0.cmp(&b.0));

    eprintln!(
        "{:<22} {:>5} {:>12} {:>10} {:>9} {:>9}",
        "scheme", "runs", "mean_delay", "worst_p99", "reorders", "min_dlvr"
    );
    for (name, agg) in &schemes {
        eprintln!(
            "{:<22} {:>5} {:>12.2} {:>10} {:>9} {:>8.1}%",
            name,
            agg.runs,
            agg.delay_sum / agg.runs as f64,
            agg.worst_p99,
            agg.reorders,
            agg.min_delivery * 100.0,
        );
    }
}
