//! Run a whole directory of scenario specs across every core.
//!
//! The suite runner is the entry point for figure-scale experiment batches:
//! it loads every `*.json` [`ScenarioSpec`] in a directory, optionally
//! crosses each with a scheme list and a load grid (the shape of the paper's
//! Figures 6/7), fans the expanded cases out over a worker pool, and merges
//! the per-run reports into one CSV — byte-identical at any worker count,
//! because results are reassembled in case order and every run is seeded
//! from its spec alone.
//!
//! Usage:
//! ```text
//! cargo run --release -p sprinklers-bench --bin suite -- --dir specs/smoke
//! cargo run --release -p sprinklers-bench --bin suite -- \
//!     --dir specs/smoke --workers 4 --quick \
//!     --schemes sprinklers,foff --loads 0.3,0.6,0.9 --out merged.csv
//! ```

use sprinklers_bench::cli::{arg_value, fail, has_flag, parse_flag, parse_list_flag};
use sprinklers_sim::engine::RunConfig;
use sprinklers_sim::parallel::{default_workers, run_specs_parallel};
use sprinklers_sim::report::{merge_csv, SimReport};
use sprinklers_sim::spec::{ScenarioSpec, SuiteSpec};

const USAGE: &str = "\
Run every ScenarioSpec JSON file in a directory, in parallel, and merge the
reports into one CSV (stdout or --out).  A per-scheme summary goes to stderr.

Usage:
  suite --dir <specs-dir> [options]

Options:
  --dir <path>         directory of *.json ScenarioSpec files (required)
  --workers <N>        worker threads (default: one per core; 0 means that too)
  --schemes <a,b,c>    re-run every spec once per scheme (overrides the spec)
  --loads <x,y,z>      re-run every (spec, scheme) once per offered load
  --batch <slots>      slots per Switch::step_batch call (perf knob, default
                       from each spec; results are identical at any value)
  --threads <N>        intra-slot worker threads per run (perf knob, default
                       from each spec; results are identical at any value)
  --quick              shrink every run to the quick RunConfig
  --out <file.csv>     write the merged CSV to a file instead of stdout

The merged CSV is deterministic: same specs + seeds give byte-identical
output at any --workers, any --batch and any --threads value.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if has_flag(&args, "--help") || has_flag(&args, "-h") {
        println!("{USAGE}");
        return;
    }

    let dir = arg_value(&args, "--dir").unwrap_or_else(|| fail("--dir is required (see --help)"));
    let workers = parse_flag::<usize>(&args, "--workers").unwrap_or(0);
    let mut suite = SuiteSpec::new(&dir);
    if let Some(schemes) = parse_list_flag::<String>(&args, "--schemes") {
        suite = suite.with_schemes(schemes);
    }
    if let Some(loads) = parse_list_flag::<f64>(&args, "--loads") {
        suite = suite.with_loads(loads);
    }
    if let Some(batch) = parse_flag::<u32>(&args, "--batch") {
        if batch == 0 {
            fail("--batch must be at least 1");
        }
        suite = suite.with_batch(batch);
    }
    if let Some(threads) = parse_flag::<u32>(&args, "--threads") {
        if threads == 0 {
            fail("--threads must be at least 1");
        }
        suite = suite.with_threads(threads);
    }

    let mut cases = suite.load_cases().unwrap_or_else(|e| fail(&e.to_string()));
    if has_flag(&args, "--quick") {
        for case in &mut cases {
            case.spec.run = RunConfig::quick();
        }
    }

    let effective_workers = if workers == 0 {
        default_workers()
    } else {
        workers
    };
    eprintln!(
        "suite: {} case(s) from {dir} across {effective_workers} worker(s)",
        cases.len()
    );

    let specs: Vec<ScenarioSpec> = cases.iter().map(|c| c.spec.clone()).collect();
    let t0 = std::time::Instant::now();
    let results = run_specs_parallel(&specs, workers);
    let elapsed = t0.elapsed();

    // Fail on the earliest failing case (deterministic), naming it.
    let mut reports: Vec<SimReport> = Vec::with_capacity(results.len());
    for (case, result) in cases.iter().zip(results) {
        match result {
            Ok(report) => reports.push(report),
            Err(e) => fail(&e.context(format!("case '{}'", case.name)).to_string()),
        }
    }

    let csv = merge_csv(cases.iter().map(|c| c.name.as_str()).zip(reports.iter()));
    match arg_value(&args, "--out") {
        Some(path) => {
            std::fs::write(&path, &csv)
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            eprintln!("suite: wrote {} rows to {path}", reports.len());
        }
        None => print!("{csv}"),
    }

    print_summary(&cases, &reports);
    eprintln!(
        "suite: {} run(s) in {:.2} s ({:.2} s/run effective)",
        reports.len(),
        elapsed.as_secs_f64(),
        elapsed.as_secs_f64() / reports.len().max(1) as f64,
    );
}

/// Per-scheme aggregate table on stderr, sorted by scheme name.
fn print_summary(cases: &[sprinklers_sim::spec::SuiteCase], reports: &[SimReport]) {
    struct Agg {
        runs: usize,
        delay_sum: f64,
        worst_p99: u64,
        reorders: u64,
        min_delivery: f64,
    }
    let mut schemes: Vec<(String, Agg)> = Vec::new();
    for (case, report) in cases.iter().zip(reports) {
        let key = case.spec.scheme.clone();
        let agg = match schemes.iter_mut().find(|(name, _)| *name == key) {
            Some((_, agg)) => agg,
            None => {
                schemes.push((
                    key,
                    Agg {
                        runs: 0,
                        delay_sum: 0.0,
                        worst_p99: 0,
                        reorders: 0,
                        min_delivery: f64::INFINITY,
                    },
                ));
                &mut schemes.last_mut().unwrap().1
            }
        };
        agg.runs += 1;
        agg.delay_sum += report.delay.mean();
        agg.worst_p99 = agg.worst_p99.max(report.delay.percentile(0.99));
        agg.reorders += report.reordering.voq_reorder_events;
        agg.min_delivery = agg.min_delivery.min(report.delivery_ratio());
    }
    schemes.sort_by(|a, b| a.0.cmp(&b.0));

    eprintln!(
        "{:<22} {:>5} {:>12} {:>10} {:>9} {:>9}",
        "scheme", "runs", "mean_delay", "worst_p99", "reorders", "min_dlvr"
    );
    for (name, agg) in &schemes {
        eprintln!(
            "{:<22} {:>5} {:>12.2} {:>10} {:>9} {:>8.1}%",
            name,
            agg.runs,
            agg.delay_sum / agg.runs as f64,
            agg.worst_p99,
            agg.reorders,
            agg.min_delivery * 100.0,
        );
    }
}
