//! Ablation: how the input-port scheduling discipline (Algorithm 1 vs the
//! simplified row scan of §3.4.2) and the intermediate-port eligibility rule
//! affect packet ordering and delay.
//!
//! Usage: `cargo run --release -p sprinklers-bench --bin ablation_alignment [--quick]`

use sprinklers_bench::experiments::{ablation_alignment, points_to_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    eprintln!("running alignment/discipline ablation, quick = {quick} ...");
    let points = ablation_alignment(quick);
    println!("# Ablation: Sprinklers scheduling variants (uniform traffic, N = 32)");
    println!("# sprinklers          = StripeAtomic input + Immediate intermediate (default)");
    println!("# sprinklers-rowscan  = RowScan input (work-conserving, paper §3.4.2)");
    println!("# sprinklers-aligned  = StripeAtomic input + StripeComplete intermediate");
    print!("{}", points_to_csv(&points));
}
