//! Ablation: stripe sizing policy (matrix-driven, adaptive, fixed 1, fixed N).
//!
//! Fixed size 1 degenerates to single-path per-VOQ routing (TCP-hash-like
//! load balancing with a deterministic hash); fixed size N degenerates to
//! full-frame spreading (UFS-like accumulation delay).  The rate-proportional
//! rule of the paper sits between the two.
//!
//! Usage: `cargo run --release -p sprinklers-bench --bin ablation_sizing [--quick]`

use sprinklers_bench::experiments::{ablation_sizing, points_to_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    eprintln!("running stripe-sizing ablation, quick = {quick} ...");
    let points = ablation_sizing(quick);
    println!("# Ablation: stripe sizing policies (uniform traffic, N = 32)");
    print!("{}", points_to_csv(&points));
}
