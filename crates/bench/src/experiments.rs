//! The experiment implementations behind every table and figure.
//!
//! All simulation experiments are expressed as [`ScenarioSpec`]s and executed
//! by the shared [`Engine`], so a figure is nothing more than a grid of specs
//! plus CSV formatting.

use sprinklers_analysis::chernoff;
use sprinklers_analysis::markov;
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::switch::Switch;
use sprinklers_sim::engine::{Engine, RunConfig};
use sprinklers_sim::registry;
use sprinklers_sim::report::SimReport;
use sprinklers_sim::spec::{ScenarioSpec, SizingSpec, TrafficSpec};
use sprinklers_sim::traffic::bernoulli::BernoulliTraffic;

/// Switch size used by the paper's delay simulations (§6).
pub const PAPER_N: usize = 32;

/// The traffic patterns of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// Uniform destinations (Figure 6).
    Uniform,
    /// Quasi-diagonal destinations (Figure 7).
    Diagonal,
}

impl TrafficKind {
    /// The rate matrix of this pattern at load `rho`.
    pub fn matrix(&self, n: usize, rho: f64) -> TrafficMatrix {
        self.spec(rho).matrix(n)
    }

    /// A Bernoulli traffic generator for this pattern.
    pub fn generator(&self, n: usize, rho: f64, seed: u64) -> BernoulliTraffic {
        match self {
            TrafficKind::Uniform => BernoulliTraffic::uniform(n, rho, seed),
            TrafficKind::Diagonal => BernoulliTraffic::diagonal(n, rho, seed),
        }
    }

    /// The equivalent declarative [`TrafficSpec`].
    pub fn spec(&self, rho: f64) -> TrafficSpec {
        match self {
            TrafficKind::Uniform => TrafficSpec::Uniform { load: rho },
            TrafficKind::Diagonal => TrafficSpec::Diagonal { load: rho },
        }
    }
}

/// The five schemes compared in Figures 6 and 7.
pub const PAPER_SCHEMES: [&str; 5] = ["baseline-lb", "ufs", "foff", "padded-frames", "sprinklers"];

/// Build a switch by scheme name through the `sprinklers-sim` registry.  The
/// traffic matrix is used by Sprinklers for stripe sizing; the other schemes
/// ignore it.
///
/// # Panics
///
/// Panics on a scheme name the registry does not know.
pub fn build_switch(scheme: &str, n: usize, matrix: &TrafficMatrix, seed: u64) -> Box<dyn Switch> {
    registry::build_named(scheme, n, &SizingSpec::Matrix, matrix, seed)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// The scenario spec of one experiment point.
pub fn point_spec(
    scheme: &str,
    n: usize,
    load: f64,
    kind: TrafficKind,
    run: RunConfig,
    seed: u64,
) -> ScenarioSpec {
    ScenarioSpec::new(scheme, n)
        .with_traffic(kind.spec(load))
        .with_run(run)
        .with_seed(seed)
}

/// One data point of a delay-vs-load experiment.
#[derive(Debug, Clone)]
pub struct SchemePoint {
    /// Scheme name (or ablation variant label).
    pub scheme: String,
    /// Offered load.
    pub load: f64,
    /// The full simulation report.
    pub report: SimReport,
}

impl SchemePoint {
    /// CSV header shared by the figure binaries.
    pub fn csv_header() -> &'static str {
        "scheme,load,mean_delay,p50_delay,p99_delay,max_delay,voq_reorders,flow_reorders,\
         delivered,offered,padding"
    }

    /// One CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{:.2},{:.2},{},{},{},{},{},{},{},{}",
            self.scheme,
            self.load,
            self.report.delay.mean(),
            self.report.delay.percentile(0.5),
            self.report.delay.percentile(0.99),
            self.report.delay.max(),
            self.report.reordering.voq_reorder_events,
            self.report.reordering.flow_reorder_events,
            self.report.delivered_packets,
            self.report.offered_packets,
            self.report.padding_packets,
        )
    }
}

/// Run one scheme at one load against one traffic pattern.
pub fn run_point(
    scheme: &str,
    n: usize,
    load: f64,
    kind: TrafficKind,
    run: RunConfig,
    seed: u64,
) -> SchemePoint {
    let spec = point_spec(scheme, n, load, kind, run, seed);
    let report = Engine::new().run(&spec).unwrap_or_else(|e| panic!("{e}"));
    SchemePoint {
        scheme: scheme.to_string(),
        load,
        report,
    }
}

/// Delay-vs-load sweep across a set of schemes.
pub fn delay_vs_load(
    schemes: &[&str],
    n: usize,
    loads: &[f64],
    kind: TrafficKind,
    run: RunConfig,
    seed: u64,
) -> Vec<SchemePoint> {
    let mut engine = Engine::new();
    let mut out = Vec::new();
    for &scheme in schemes {
        for &load in loads {
            let spec = point_spec(scheme, n, load, kind, run, seed);
            let report = engine.run(&spec).unwrap_or_else(|e| panic!("{e}"));
            out.push(SchemePoint {
                scheme: scheme.to_string(),
                load,
                report,
            });
        }
    }
    out
}

/// The load grid of Figures 6 and 7.
pub fn paper_loads(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.1, 0.3, 0.5, 0.7, 0.9]
    } else {
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95]
    }
}

/// Simulation length used by the figure experiments.
pub fn paper_run_config(quick: bool) -> RunConfig {
    if quick {
        RunConfig {
            slots: 30_000,
            warmup_slots: 5_000,
            drain_slots: 30_000,
        }
    } else {
        RunConfig {
            slots: 200_000,
            warmup_slots: 30_000,
            drain_slots: 120_000,
        }
    }
}

/// Figure 6: average delay versus load under uniform traffic, N = 32.
pub fn figure6(quick: bool) -> Vec<SchemePoint> {
    delay_vs_load(
        &PAPER_SCHEMES,
        PAPER_N,
        &paper_loads(quick),
        TrafficKind::Uniform,
        paper_run_config(quick),
        2014,
    )
}

/// Figure 7: average delay versus load under quasi-diagonal traffic, N = 32.
pub fn figure7(quick: bool) -> Vec<SchemePoint> {
    delay_vs_load(
        &PAPER_SCHEMES,
        PAPER_N,
        &paper_loads(quick),
        TrafficKind::Diagonal,
        paper_run_config(quick),
        2014,
    )
}

/// Ablation: every combination of input discipline and intermediate alignment
/// for the Sprinklers switch, checking ordering and delay impact.
pub fn ablation_alignment(quick: bool) -> Vec<SchemePoint> {
    let variants = ["sprinklers", "sprinklers-rowscan", "sprinklers-aligned"];
    delay_vs_load(
        &variants,
        PAPER_N,
        &paper_loads(quick),
        TrafficKind::Uniform,
        paper_run_config(quick),
        99,
    )
}

/// Ablation: matrix-driven sizing vs adaptive (measured-rate) sizing vs the
/// degenerate fixed sizes 1 and N.
pub fn ablation_sizing(quick: bool) -> Vec<SchemePoint> {
    let n = PAPER_N;
    let loads = paper_loads(quick);
    let run = paper_run_config(quick);
    let variants: [(&str, SizingSpec); 4] = [
        ("sizing-matrix", SizingSpec::Matrix),
        ("sizing-adaptive", SizingSpec::Adaptive),
        ("sizing-fixed-1", SizingSpec::Fixed(1)),
        ("sizing-fixed-n", SizingSpec::Fixed(n)),
    ];
    let mut engine = Engine::new();
    let mut out = Vec::new();
    for &load in &loads {
        for (name, sizing) in variants {
            let spec =
                point_spec("sprinklers", n, load, TrafficKind::Uniform, run, 7).with_sizing(sizing);
            let report = engine.run(&spec).unwrap_or_else(|e| panic!("{e}"));
            out.push(SchemePoint {
                scheme: name.to_string(),
                load,
                report,
            });
        }
    }
    out
}

/// Table 1 as CSV: the single-queue overload bound for the paper's grid of
/// loads and switch sizes, plus the switch-wide union bound.
pub fn table1_csv() -> String {
    let mut out = String::from("rho,n,log10_bound,bound,log10_switch_wide,switch_wide\n");
    for row in chernoff::table1() {
        out.push_str(&format!(
            "{:.2},{},{:.3},{:.3e},{:.3},{:.3e}\n",
            row.rho,
            row.n,
            row.log_bound / std::f64::consts::LN_10,
            row.bound,
            row.log_switch_wide / std::f64::consts::LN_10,
            row.switch_wide,
        ));
    }
    out
}

/// Figure 5 as CSV: expected intermediate-stage delay (in periods) versus
/// switch size at ρ = 0.9, from both the closed form and the numerical
/// stationary distribution.
pub fn figure5_csv(quick: bool) -> String {
    let sizes: Vec<usize> = if quick {
        vec![8, 32, 128, 512]
    } else {
        vec![8, 16, 32, 64, 128, 256, 384, 512, 640, 768, 896, 1024]
    };
    let rho = 0.9;
    let mut out = String::from("n,expected_delay_closed_form,expected_delay_numeric,p99_numeric\n");
    for &n in &sizes {
        let closed = markov::expected_queue_length(n, rho);
        // The numerical chain gets expensive for very large N; cap it.
        let (numeric, p99) = if n <= 512 {
            let model = markov::IntermediateDelayModel::solve(n, rho);
            (model.mean_queue_length(), model.percentile(0.99) as f64)
        } else {
            (f64::NAN, f64::NAN)
        };
        out.push_str(&format!("{n},{closed:.1},{numeric:.1},{p99:.0}\n"));
    }
    out
}

/// Render a set of [`SchemePoint`]s as CSV.
pub fn points_to_csv(points: &[SchemePoint]) -> String {
    let mut out = String::from(SchemePoint::csv_header());
    out.push('\n');
    for p in points {
        out.push_str(&p.csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_csv_has_24_data_rows() {
        let csv = table1_csv();
        assert_eq!(csv.lines().count(), 25);
        assert!(csv.contains("0.93,2048"));
    }

    #[test]
    fn figure5_csv_matches_closed_form_shape() {
        let csv = figure5_csv(true);
        assert!(csv.lines().count() >= 4);
        // Delay grows with N.
        let rows: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(rows.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn build_switch_knows_every_scheme() {
        let m = TrafficMatrix::uniform(8, 0.5);
        for scheme in PAPER_SCHEMES {
            let sw = build_switch(scheme, 8, &m, 1);
            assert_eq!(sw.n(), 8);
        }
        let sw = build_switch("tcp-hash", 8, &m, 1);
        assert_eq!(sw.name(), "tcp-hash");
        let sw = build_switch("oq", 8, &m, 1);
        assert_eq!(sw.name(), "oq");
    }

    #[test]
    #[should_panic]
    fn unknown_scheme_panics() {
        let m = TrafficMatrix::uniform(8, 0.5);
        let _ = build_switch("does-not-exist", 8, &m, 1);
    }

    #[test]
    fn run_point_produces_a_consistent_report() {
        let p = run_point(
            "sprinklers",
            16,
            0.4,
            TrafficKind::Uniform,
            RunConfig {
                slots: 4_000,
                warmup_slots: 500,
                drain_slots: 4_000,
            },
            5,
        );
        assert_eq!(p.report.n, 16);
        assert!(p.report.reordering.is_ordered());
        assert!(p.report.delivery_ratio() > 0.9);
        // CSV row matches the header's column count.
        assert_eq!(
            p.csv_row().split(',').count(),
            SchemePoint::csv_header().split(',').count()
        );
    }

    #[test]
    fn point_spec_round_trips_through_json() {
        let spec = point_spec(
            "foff",
            32,
            0.8,
            TrafficKind::Diagonal,
            paper_run_config(true),
            2014,
        );
        assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
    }
}
