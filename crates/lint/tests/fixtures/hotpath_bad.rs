//! Fixture: panicking and allocating constructs inside a designated
//! hot-path function all fire; the same constructs in a cold function don't.

// lint: hot-path
fn step(queue: &mut Vec<Option<u32>>) -> u32 {
    let head = queue.pop().unwrap();
    let value = head.expect("head is present");
    let scratch: Vec<u32> = Vec::new();
    let label = format!("{value}");
    let copy = label.clone();
    let _ = (scratch, copy);
    value
}

fn cold(queue: &mut Vec<Option<u32>>) -> u32 {
    queue.pop().unwrap().expect("cold paths may panic")
}
