//! Fixture: a `// SAFETY:` comment — single-line, trailing, or the first
//! line of a multi-line block — satisfies the unsafe audit.

fn zeroed() -> u8 {
    // SAFETY: u8 has no invalid bit patterns, so a zeroed value is valid.
    unsafe { std::mem::zeroed() }
}

fn trailing() -> u8 {
    unsafe { std::mem::zeroed() } // SAFETY: u8 tolerates all bit patterns.
}

fn multi_line() -> u8 {
    // SAFETY: the justification for this block spans several comment
    // lines, and only the first one carries the keyword; the audit
    // accepts the whole contiguous block.
    unsafe { std::mem::zeroed() }
}
