//! Fixture: a bare allow marker is itself a violation, and the cast it
//! fails to justify still fires.

fn narrow(a: usize) -> u16 {
    // lint: allow(cast)
    a as u16
}
