//! Fixture: a justified allow marker suppresses the cast and is audited.

fn narrow(a: usize) -> u16 {
    debug_assert!(a <= u16::MAX as usize);
    // lint: allow(cast) — bounded by the caller's assert_ports_fit guard
    a as u16
}
