//! Fixture: bare narrowing casts fire under the cast scope.

fn narrow(a: usize, b: usize) -> (u16, u32) {
    (a as u16, b as u32)
}

fn widening_is_fine(a: u16) -> u64 {
    a as u64
}
