//! Fixture: deterministic equivalents pass; mentions of HashMap in prose,
//! strings and test modules never fire.

use std::collections::{BTreeMap, BTreeSet};

/// A HashMap would randomize iteration order; a BTreeMap never does.
fn containers() {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    let s: BTreeSet<u32> = BTreeSet::new();
    let msg = "HashMap Instant thread_rng are only words inside this string";
    let _ = (m, s, msg);
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_may_use_hash_containers() {
        let m: HashMap<u32, u32> = HashMap::new();
        let _ = (m, Instant::now());
    }
}
