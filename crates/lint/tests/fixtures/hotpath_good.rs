//! Fixture: infallible, allocation-free patterns pass inside a hot path.

// lint: hot-path
fn step(queue: &mut Vec<Option<u32>>) -> u32 {
    let Some(head) = queue.pop() else { return 0 };
    // `unwrap_or` and `unwrap_or_default` are infallible, not `unwrap`.
    let value = head.unwrap_or_default();
    value.saturating_add(1)
}

fn warm_up(n: usize) -> Vec<u32> {
    // Preallocation happens outside the designated hot function.
    Vec::with_capacity(n)
}
