//! Fixture: an allow marker that suppresses nothing is a violation.

fn plain() -> u64 {
    // lint: allow(determinism) — stale marker left behind by a refactor
    41 + 1
}
