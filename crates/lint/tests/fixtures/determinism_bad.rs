//! Fixture: every determinism deny-list entry fires (scope: determinism).

use std::collections::{HashMap, HashSet};
use std::time::Instant;

fn read_env() -> String {
    std::env::var("SPRINKLERS_MODE").unwrap_or_default()
}

fn timing() -> Instant {
    Instant::now()
}

fn containers() {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
    let _ = (m, s);
}
