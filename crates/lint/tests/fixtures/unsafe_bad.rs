//! Fixture: `unsafe` without a `// SAFETY:` comment fires in any scope.

fn uninit() -> u8 {
    unsafe { std::mem::zeroed() }
}
