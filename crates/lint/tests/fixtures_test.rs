//! Fixture-based end-to-end tests: each rule family fires on its known-bad
//! fixture with the exact diagnostic, and stays silent on the known-good one.

use sprinklers_lint::rules::{analyze, Rule, Scope};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

const DETERMINISM: Scope = Scope {
    determinism: true,
    cast: false,
};
const CAST: Scope = Scope {
    determinism: false,
    cast: true,
};
const UNSCOPED: Scope = Scope {
    determinism: false,
    cast: false,
};

fn rendered(name: &str, scope: Scope) -> Vec<String> {
    analyze(&fixture(name), scope)
        .violations
        .iter()
        .map(|v| v.render(name))
        .collect()
}

#[test]
fn determinism_fixture_fires_on_every_denied_construct() {
    let v = rendered("determinism_bad.rs", DETERMINISM);
    let expected = [
        "determinism_bad.rs:3: [determinism] `HashMap` is nondeterministic: randomized \
         iteration order (default hasher); use BTreeMap or a flat vector",
        "determinism_bad.rs:3: [determinism] `HashSet` is nondeterministic: randomized \
         iteration order (default hasher); use BTreeSet or a bitset",
        "determinism_bad.rs:4: [determinism] `Instant` is nondeterministic: wall-clock \
         readings differ across runs",
        "determinism_bad.rs:7: [determinism] `env::var` makes results depend on the \
         process environment",
    ];
    for e in expected {
        assert!(v.contains(&e.to_string()), "missing {e:?} in {v:#?}");
    }
    // Instant in the signature and body of `timing`, both HashMap/HashSet
    // constructor calls: 10 in total.
    assert_eq!(v.len(), 10, "{v:#?}");
    assert!(v.iter().all(|d| d.contains("[determinism]")), "{v:#?}");
}

#[test]
fn determinism_fixture_good_is_clean_and_out_of_scope_bad_is_too() {
    assert!(rendered("determinism_good.rs", DETERMINISM).is_empty());
    // The same bad file outside the determinism scope (e.g. crates/bench)
    // is not checked.
    assert!(rendered("determinism_bad.rs", UNSCOPED).is_empty());
}

#[test]
fn hotpath_fixture_fires_inside_the_designated_fn_only() {
    let v = rendered("hotpath_bad.rs", UNSCOPED);
    let expected = [
        "hotpath_bad.rs:6: [hot-path] `unwrap` can panic inside a hot-path function; \
         restructure to an infallible pattern",
        "hotpath_bad.rs:7: [hot-path] `expect` can panic inside a hot-path function; \
         restructure to an infallible pattern",
        "hotpath_bad.rs:8: [hot-path] allocating constructor `::new` inside a hot-path \
         function; preallocate outside the per-slot loop",
        "hotpath_bad.rs:9: [hot-path] `format!` allocates inside a hot-path function",
        "hotpath_bad.rs:10: [hot-path] `clone` allocates inside a hot-path function",
    ];
    assert_eq!(v, expected, "{v:#?}");
}

#[test]
fn hotpath_fixture_good_is_clean() {
    assert!(rendered("hotpath_good.rs", UNSCOPED).is_empty());
}

#[test]
fn cast_fixture_fires_on_narrowing_only() {
    let v = rendered("cast_bad.rs", CAST);
    let expected = [
        "cast_bad.rs:4: [cast] bare `as u16` narrowing; use a checked accessor or \
         try_into (silent truncation corrupts routing fields)",
        "cast_bad.rs:4: [cast] bare `as u32` narrowing; use a checked accessor or \
         try_into (silent truncation corrupts routing fields)",
    ];
    assert_eq!(v, expected, "{v:#?}");
    // Outside the cast scope (everything but crates/core) it is silent.
    assert!(rendered("cast_bad.rs", UNSCOPED).is_empty());
}

#[test]
fn cast_fixture_allow_marker_suppresses_and_is_audited() {
    let report = analyze(&fixture("cast_good.rs"), CAST);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert_eq!(report.allows_used.len(), 1);
    let a = &report.allows_used[0];
    assert_eq!(a.rule, Rule::Cast);
    assert_eq!(
        a.justification,
        "bounded by the caller's assert_ports_fit guard"
    );
}

#[test]
fn deleting_an_allow_justification_makes_the_gate_fail() {
    // The acceptance criterion in reverse: strip the justification off the
    // good fixture's marker and both a marker violation and the no-longer-
    // suppressed cast must appear.
    let src = fixture("cast_good.rs").replace(
        "// lint: allow(cast) — bounded by the caller's assert_ports_fit guard",
        "// lint: allow(cast)",
    );
    let report = analyze(&src, CAST);
    assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
    assert_eq!(report.violations[0].rule, Rule::Marker);
    assert!(report.violations[0]
        .message
        .contains("missing a justification"));
    assert_eq!(report.violations[1].rule, Rule::Cast);
    assert!(report.allows_used.is_empty());
}

#[test]
fn bare_allow_marker_fixture_fails() {
    let v = rendered("allow_missing_justification.rs", CAST);
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v[0].contains("[marker]"), "{v:#?}");
    assert!(v[0].contains("missing a justification"), "{v:#?}");
    assert!(v[1].contains("[cast]"), "{v:#?}");
}

#[test]
fn unused_allow_marker_fixture_fails() {
    let v = rendered("unused_allow.rs", DETERMINISM);
    assert_eq!(v.len(), 1, "{v:#?}");
    assert!(v[0].contains("unused allow marker"), "{v:#?}");
}

#[test]
fn unsafe_fixture_requires_safety_comment_in_any_scope() {
    let v = rendered("unsafe_bad.rs", UNSCOPED);
    let expected = ["unsafe_bad.rs:4: [unsafe] `unsafe` without a preceding `// SAFETY:` comment"];
    assert_eq!(v, expected, "{v:#?}");
}

#[test]
fn unsafe_fixture_good_accepts_all_safety_comment_shapes() {
    assert!(rendered("unsafe_good.rs", UNSCOPED).is_empty());
}
