//! The live tree must pass its own gate.
//!
//! This is the test-suite form of `cargo run -p sprinklers-lint -- check`:
//! the workspace stays clean, and the audited allow markers it does carry
//! keep their justifications.

use sprinklers_lint::{find_workspace_root, lint_tree};
use std::path::Path;

#[test]
fn the_workspace_passes_its_own_gate() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");
    let report = lint_tree(&root).expect("workspace tree is readable");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walk broken?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "the tree has lint violations:\n{}",
        report.rendered_violations().join("\n")
    );
    // The checked Packet accessors carry the workspace's audited casts; if
    // this count drifts, the audit table in the README needs updating too.
    let casts = report
        .allows_used
        .iter()
        .filter(|(_, a)| a.rule == sprinklers_lint::rules::Rule::Cast)
        .count();
    assert!(casts >= 5, "expected the Packet accessors' audited casts");
    assert!(
        report
            .allows_used
            .iter()
            .all(|(_, a)| !a.justification.is_empty()),
        "audited allows must carry justifications"
    );
}
