//! A minimal Rust lexer: just enough to token-scan source files safely.
//!
//! The analyzer never parses Rust properly — it *scrubs* a file (replacing
//! the contents of comments, string literals, char literals and doc comments
//! with spaces, preserving byte offsets and line structure exactly) and then
//! token-scans the scrubbed text.  That is sufficient for the repo's rules
//! because every denied construct is an identifier or macro name, and the
//! scrubbing guarantees a `HashMap` mentioned in a doc comment or an error
//! message string never trips the gate.
//!
//! Comments are collected (with their line numbers and byte offsets) rather
//! than discarded: the `unsafe` audit needs `// SAFETY:` comments, and the
//! suppression system needs `// lint: allow(...)` / `// lint: hot-path`
//! markers.

/// A comment extracted during scrubbing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Line the comment *ends* on (1-based).  For single-line comments this
    /// is also the start line; for block comments the end line is what
    /// adjacency checks (SAFETY, allow markers) care about.
    pub line: usize,
    /// Byte offset of the comment's start in the source.
    pub start: usize,
    /// The comment's text with the `//`/`/* */` framing and any doc `!`/`/`
    /// prefix removed, trimmed.
    pub text: String,
}

/// The result of scrubbing a source file.
#[derive(Debug)]
pub struct Scrubbed {
    /// Same byte length and line structure as the input, with the contents of
    /// comments and string/char literals replaced by spaces.
    pub text: String,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

fn blank(out: &mut [u8], start: usize, end: usize) {
    let end = end.min(out.len());
    for b in &mut out[start..end] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Scrub `src`: blank out comments and literal contents, collect comments.
pub fn scrub(src: &str) -> Scrubbed {
    let bytes = src.as_bytes();
    let len = bytes.len();
    let mut out = bytes.to_vec();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < len {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < len && bytes[i + 1] == b'/' => {
                let start = i;
                while i < len && bytes[i] != b'\n' {
                    i += 1;
                }
                let raw = &src[start..i];
                let text = raw
                    .trim_start_matches('/')
                    .trim_start_matches('!')
                    .trim()
                    .to_string();
                comments.push(Comment { line, start, text });
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < len && bytes[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < len && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < len && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < len && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let inner_end = if depth == 0 { i - 2 } else { i };
                let text = src
                    .get(start + 2..inner_end)
                    .unwrap_or("")
                    .trim_start_matches(['*', '!'])
                    .trim()
                    .to_string();
                comments.push(Comment { line, start, text });
                blank(&mut out, start, i);
            }
            b'"' => {
                i = scan_string(bytes, i, &mut line, &mut out);
            }
            b'r' if (i == 0 || !is_ident_byte(bytes[i - 1]))
                && i + 1 < len
                && (bytes[i + 1] == b'"' || bytes[i + 1] == b'#') =>
            {
                if let Some(next) = scan_raw_string(bytes, i, &mut line, &mut out) {
                    i = next;
                } else {
                    i += 1;
                }
            }
            b'b' if (i == 0 || !is_ident_byte(bytes[i - 1])) && i + 1 < len => match bytes[i + 1] {
                b'"' => {
                    i = scan_string(bytes, i + 1, &mut line, &mut out);
                }
                b'\'' => {
                    i = scan_char_literal(bytes, i + 1, &mut out);
                }
                b'r' if i + 2 < len && (bytes[i + 2] == b'"' || bytes[i + 2] == b'#') => {
                    if let Some(next) = scan_raw_string(bytes, i + 1, &mut line, &mut out) {
                        i = next;
                    } else {
                        i += 1;
                    }
                }
                _ => i += 1,
            },
            b'\'' => {
                // Lifetime (or loop label) vs char literal.
                if i + 1 < len && bytes[i + 1] == b'\\' {
                    i = scan_char_literal(bytes, i, &mut out);
                } else if i + 1 < len {
                    let ch_len = utf8_len(bytes[i + 1]);
                    if bytes[i + 1] != b'\''
                        && i + 1 + ch_len < len
                        && bytes[i + 1 + ch_len] == b'\''
                    {
                        // 'x' (any single char, possibly multi-byte).
                        blank(&mut out, i + 1, i + 1 + ch_len);
                        i += 2 + ch_len;
                    } else {
                        // A lifetime like 'a — leave the identifier; it can
                        // never match a denied token because of the quote? No:
                        // the quote is a separate byte, and the identifier
                        // after it could theoretically collide.  Denied
                        // tokens are never lifetime names in practice.
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    let text = String::from_utf8(out).unwrap_or_else(|e| {
        // Scrubbing only writes ASCII spaces over whole UTF-8 sequences it
        // recognized; reaching here means the file was not valid UTF-8 to
        // begin with, which `fs::read_to_string` already rejects upstream.
        String::from_utf8_lossy(e.as_bytes()).into_owned()
    });
    Scrubbed { text, comments }
}

/// Scan a (cooked) string literal starting at the opening quote; blanks the
/// contents and returns the index one past the closing quote.
fn scan_string(bytes: &[u8], open: usize, line: &mut usize, out: &mut [u8]) -> usize {
    let len = bytes.len();
    let mut i = open + 1;
    while i < len {
        match bytes[i] {
            b'\\' => {
                // A `\`-continued string still ends the source line: count
                // the escaped newline or every later comment/token line is
                // off by one, which silently breaks adjacency checks.
                if i + 1 < len && bytes[i + 1] == b'\n' {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => {
                blank(out, open + 1, i);
                return i + 1;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    blank(out, open + 1, len);
    len
}

/// Scan a raw string `r"..."` / `r#"..."#` starting at the `r`; returns the
/// index one past the end, or `None` if it is not actually a raw string.
fn scan_raw_string(bytes: &[u8], r_pos: usize, line: &mut usize, out: &mut [u8]) -> Option<usize> {
    let len = bytes.len();
    let mut i = r_pos + 1;
    let mut hashes = 0usize;
    while i < len && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= len || bytes[i] != b'"' {
        return None; // e.g. `r#foo` raw identifier
    }
    let content_start = i + 1;
    i += 1;
    while i < len {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"' {
            let close_ok = bytes[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
                && i + 1 + hashes <= len;
            if close_ok {
                blank(out, content_start, i);
                return Some(i + 1 + hashes);
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    blank(out, content_start, len);
    Some(len)
}

/// Scan a char (or byte) literal starting at the opening quote; blanks the
/// contents and returns the index one past the closing quote.
fn scan_char_literal(bytes: &[u8], open: usize, out: &mut [u8]) -> usize {
    let len = bytes.len();
    let mut i = open + 1;
    while i < len {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => {
                blank(out, open + 1, i);
                return i + 1;
            }
            b'\n' => return i, // malformed; bail without eating the line
            _ => i += 1,
        }
    }
    len
}

/// One token of the scrubbed text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Byte range in the scrubbed (== original) text.
    pub start: usize,
    pub end: usize,
    /// 1-based line number.
    pub line: usize,
    /// True if the token is an identifier/keyword; false for a single
    /// punctuation byte.
    pub is_ident: bool,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Tokenize scrubbed text into identifiers and single-byte punctuation.
pub fn tokenize(scrubbed: &str) -> Vec<Token> {
    let bytes = scrubbed.as_bytes();
    let len = bytes.len();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < len {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
        } else if b.is_ascii_whitespace() {
            i += 1;
        } else if is_ident_byte(b) && !b.is_ascii_digit() {
            let start = i;
            while i < len && is_ident_byte(bytes[i]) {
                i += 1;
            }
            tokens.push(Token {
                start,
                end: i,
                line,
                is_ident: true,
            });
        } else if b.is_ascii_digit() {
            // Numeric literal (possibly with a type suffix): consume as one
            // non-ident token so `0u64` never produces a `u64` identifier.
            let start = i;
            while i < len && (is_ident_byte(bytes[i]) || bytes[i] == b'.') {
                i += 1;
            }
            tokens.push(Token {
                start,
                end: i,
                line,
                is_ident: false,
            });
        } else if b < 0x80 {
            tokens.push(Token {
                start: i,
                end: i + 1,
                line,
                is_ident: false,
            });
            i += 1;
        } else {
            i += utf8_len(b);
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_and_collected() {
        let src = "let x = 1; // HashMap here\nlet y = 2;";
        let s = scrub(src);
        assert!(!s.text.contains("HashMap"));
        assert_eq!(s.text.len(), src.len());
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 1);
        assert_eq!(s.comments[0].text, "HashMap here");
    }

    #[test]
    fn doc_comments_and_block_comments_are_blanked() {
        let src = "/// uses HashMap\n/* block\nHashSet */ fn f() {}";
        let s = scrub(src);
        assert!(!s.text.contains("HashMap"));
        assert!(!s.text.contains("HashSet"));
        assert!(s.text.contains("fn f"));
        // The block comment is recorded at its *end* line.
        assert_eq!(s.comments[1].line, 3);
    }

    #[test]
    fn strings_are_blanked_but_code_survives() {
        let src = r#"let s = "HashMap::new()"; let t = HashMap::new();"#;
        let s = scrub(src);
        assert_eq!(s.text.matches("HashMap").count(), 1);
    }

    #[test]
    fn raw_strings_and_escapes_are_handled() {
        let src = "let a = r#\"say \"HashMap\"\"#; let b = \"esc\\\"HashSet\"; let c = 1;";
        let s = scrub(src);
        assert!(!s.text.contains("HashMap"));
        assert!(!s.text.contains("HashSet"));
        assert!(s.text.contains("let c"));
    }

    #[test]
    fn char_literals_and_lifetimes_coexist() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let s = scrub(src);
        assert!(s.text.contains("fn f"));
        assert!(!s.text.contains("'x'") || s.text.contains("' '"));
        let src2 = "let q = '\\''; let l = '\\n';";
        let s2 = scrub(src2);
        assert_eq!(s2.text.len(), src2.len());
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n/* x\ny */\nb \"s\ntr\" c\n";
        let s = scrub(src);
        assert_eq!(
            s.text.matches('\n').count(),
            src.matches('\n').count(),
            "newline count must survive scrubbing"
        );
    }

    #[test]
    fn backslash_continued_strings_keep_comment_lines_aligned() {
        // A `\`-continuation escapes the newline inside the literal; the
        // scrubber must still count it or every comment after the string is
        // recorded one line too low (which broke SAFETY adjacency checks).
        let src = "let s = \"one \\\n two\";\n// SAFETY: fine\nlet x = 1;\n";
        let s = scrub(src);
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 3, "{:?}", s.comments[0]);
        assert!(s.comments[0].text.contains("SAFETY:"));
    }

    #[test]
    fn tokens_carry_lines_and_identity() {
        let toks = tokenize("foo.bar()\nbaz!");
        let texts: Vec<&str> = toks.iter().map(|t| t.text("foo.bar()\nbaz!")).collect();
        assert_eq!(texts, vec!["foo", ".", "bar", "(", ")", "baz", "!"]);
        assert_eq!(toks[5].line, 2);
        assert!(toks[0].is_ident);
        assert!(!toks[1].is_ident);
    }

    #[test]
    fn numeric_suffixes_do_not_produce_identifiers() {
        let toks = tokenize("let x = 0u64; let y = 1.5f32;");
        let src = "let x = 0u64; let y = 1.5f32;";
        assert!(toks
            .iter()
            .filter(|t| t.is_ident)
            .all(|t| !t.text(src).starts_with(|c: char| c.is_ascii_digit())));
        assert!(!toks.iter().any(|t| t.is_ident && t.text(src) == "u64"));
    }
}
