//! `sprinklers-lint` — the workspace's static-analysis gate.
//!
//! The runtime verification net (golden CSVs, worker/batch parity,
//! record→replay trace parity) rests on invariants that are conventions, not
//! compiler guarantees: no randomized-iteration containers or ambient
//! entropy in result paths, no panicking or allocating constructs in the
//! per-slot fabric hot paths, no silently-truncating casts onto the compact
//! `Packet` fields, and an audit trail for any `unsafe`.  This crate turns
//! those conventions into a machine-enforced gate: a dependency-free
//! analyzer that scrubs comments/strings with a hand-rolled lexer
//! ([`lexer`]) and token-scans every `.rs` file in the workspace against the
//! rule families in [`rules`].
//!
//! Violations are suppressible only via an inline
//! `// lint: allow(<rule>) — <justification>` marker; the justification is
//! mandatory and every use is counted into the summary `check` prints.  Hot
//! functions are designated in-source with `// lint: hot-path` directly
//! above the `fn`.
//!
//! Run `cargo run -p sprinklers-lint -- check` (CI does) or `-- rules` for
//! the rule reference.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use rules::{analyze, scope_for_path, AllowUse, Violation, ALL_RULES};
use std::path::{Path, PathBuf};

/// Result of linting a whole tree.
#[derive(Debug, Default)]
pub struct TreeReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// `(workspace-relative path, violation)` pairs, in path order.
    pub violations: Vec<(String, Violation)>,
    /// `(workspace-relative path, allow)` pairs, in path order.
    pub allows_used: Vec<(String, AllowUse)>,
}

impl TreeReport {
    /// True if the tree passes the gate.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render every violation as `path:line: [rule] message`, in order.
    pub fn rendered_violations(&self) -> Vec<String> {
        self.violations
            .iter()
            .map(|(path, v)| v.render(path))
            .collect()
    }

    /// The `(rule, count)` allow summary, covering all rule families.
    pub fn allow_summary(&self) -> Vec<(&'static str, usize)> {
        ALL_RULES
            .iter()
            .map(|&r| {
                (
                    r.name(),
                    self.allows_used.iter().filter(|(_, a)| a.rule == r).count(),
                )
            })
            .collect()
    }
}

/// Directories never descended into: build output, VCS metadata, and the
/// analyzer's own known-bad fixture corpus.
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | ".git" | "fixtures")
}

/// Collect every `.rs` file under `root` (sorted for deterministic output).
fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                let name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                if !skip_dir(&name) {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint every `.rs` file under `root` (the workspace root).
pub fn lint_tree(root: &Path) -> std::io::Result<TreeReport> {
    let mut report = TreeReport::default();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        let file_report = analyze(&src, scope_for_path(&rel));
        report.files_scanned += 1;
        for v in file_report.violations {
            report.violations.push((rel.clone(), v));
        }
        for a in file_report.allows_used {
            report.allows_used.push((rel.clone(), a));
        }
    }
    Ok(report)
}

/// Find the workspace root by walking up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_directories_are_skipped() {
        assert!(skip_dir("fixtures"));
        assert!(skip_dir("target"));
        assert!(!skip_dir("src"));
    }
}
