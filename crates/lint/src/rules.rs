//! The repo's rule families and the per-file analysis that enforces them.
//!
//! Four families, matching the invariants the runtime verification net
//! (golden CSVs, worker/batch parity, record→replay) depends on:
//!
//! * **determinism** — no randomized-iteration containers or ambient
//!   entropy in simulation/result paths (`crates/core`, `crates/baselines`,
//!   `crates/sim`).
//! * **hot-path** — no panicking or allocating constructs inside functions
//!   designated `// lint: hot-path` (the per-slot fabric passes, occupancy
//!   scans and the resequencer).
//! * **cast** — no bare `as u16` / `as u32` narrowing in `crates/core`
//!   outside the checked `Packet` accessors.
//! * **unsafe** — every `unsafe` must be preceded by a `// SAFETY:` comment.
//!
//! Suppression is explicit and audited: `// lint: allow(<rule>) — <why>`
//! on (or directly above) the offending line.  The justification is
//! mandatory — a bare marker is itself a violation — and every allow is
//! counted into the summary the `check` subcommand prints.

use crate::lexer::{scrub, tokenize, Token};

/// The rule families, plus an internal `Marker` category for hygiene
/// diagnostics about the markers themselves (missing justification, unknown
/// rule name, unused marker, dangling designator).  Marker diagnostics are
/// never suppressible — `Marker` is not a valid allow-marker target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    Determinism,
    HotPath,
    Cast,
    Unsafe,
    Marker,
}

/// The allowable rule families, in the order summaries print them.
pub const ALL_RULES: [Rule; 4] = [Rule::Determinism, Rule::HotPath, Rule::Cast, Rule::Unsafe];

impl Rule {
    /// The name used in diagnostics and allow markers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::HotPath => "hot-path",
            Rule::Cast => "cast",
            Rule::Unsafe => "unsafe",
            Rule::Marker => "marker",
        }
    }

    /// Parse an allow-marker rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// One-paragraph description for the `rules` subcommand.
    pub fn description(self) -> &'static str {
        match self {
            Rule::Determinism => {
                "Denies sources of run-to-run nondeterminism in simulation and result \
                 paths (crates/core, crates/baselines, crates/sim; #[cfg(test)] code is \
                 exempt): std HashMap/HashSet (randomized iteration order with the \
                 default hasher), RandomState, DefaultHasher, Instant, SystemTime, \
                 thread_rng, from_entropy, and env var reads (var/var_os/vars). The \
                 byte-identical report guarantees (worker/batch parity, record→replay, \
                 golden CSVs) all assume none of these reach an output path."
            }
            Rule::HotPath => {
                "Denies panicking constructs (unwrap, expect, panic!, todo!, \
                 unimplemented!) and heap-allocating calls (Vec/VecDeque/Box/String::new \
                 or ::with_capacity, vec![], format!, to_vec, to_string, to_owned, \
                 clone) inside functions designated with a `// lint: hot-path` marker \
                 comment — the per-slot fabric passes, occupancy scans and the \
                 resequencer. Complements the runtime counting-allocator test with a \
                 static gate."
            }
            Rule::Cast => {
                "Denies bare `as u16` / `as u32` narrowing casts in crates/core \
                 (#[cfg(test)] code is exempt). The compact Packet layout narrows its \
                 fields only behind checked accessors; everything else must use \
                 try_into or widen instead."
            }
            Rule::Unsafe => {
                "Every `unsafe` block, fn or impl must be immediately preceded by a \
                 `// SAFETY:` comment explaining why the invariants hold. (The \
                 workspace currently compiles with #![forbid(unsafe_code)] everywhere; \
                 this rule keeps any future exception audited.)"
            }
            Rule::Marker => {
                "Hygiene of the markers themselves: an allow marker must name a known \
                 rule and carry a non-empty justification, must actually suppress \
                 something, and a `lint: hot-path` designator must be followed by a \
                 function with a body. Marker diagnostics cannot be suppressed."
            }
        }
    }
}

/// Which rule scopes apply to a file (derived from its workspace-relative
/// path by [`scope_for_path`], or set explicitly by fixture tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// File is in a determinism-scoped crate (core/baselines/sim sources).
    pub determinism: bool,
    /// File is in the cast-hygiene scope (crates/core sources).
    pub cast: bool,
}

/// Derive the rule scope from a workspace-relative path (with `/` or `\`
/// separators).
pub fn scope_for_path(rel_path: &str) -> Scope {
    let p = rel_path.replace('\\', "/");
    let in_any = |prefixes: &[&str]| prefixes.iter().any(|pre| p.starts_with(pre));
    Scope {
        determinism: in_any(&[
            "crates/core/src/",
            "crates/baselines/src/",
            "crates/sim/src/",
        ]),
        cast: in_any(&["crates/core/src/"]),
    }
}

/// A single diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl Violation {
    /// Render as `path:line: [rule] message`.
    pub fn render(&self, path: &str) -> String {
        format!(
            "{}:{}: [{}] {}",
            path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// An allow marker that suppressed at least one violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowUse {
    pub line: usize,
    pub rule: Rule,
    pub justification: String,
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub violations: Vec<Violation>,
    pub allows_used: Vec<AllowUse>,
}

/// A parsed `// lint: allow(rule) — justification` marker.
#[derive(Debug)]
struct AllowMarker {
    line: usize,
    rule: Rule,
    justification: String,
    used: bool,
}

const ALLOW_PREFIX: &str = "lint: allow(";
const HOT_PATH_MARKER: &str = "lint: hot-path";

/// Identifiers denied by the determinism rule, with explanations.
const DETERMINISM_DENY: [(&str, &str); 8] = [
    (
        "HashMap",
        "randomized iteration order (default hasher); use BTreeMap or a flat vector",
    ),
    (
        "HashSet",
        "randomized iteration order (default hasher); use BTreeSet or a bitset",
    ),
    ("RandomState", "per-process random hasher state"),
    ("DefaultHasher", "hasher keyed by per-process random state"),
    ("Instant", "wall-clock readings differ across runs"),
    ("SystemTime", "wall-clock readings differ across runs"),
    (
        "thread_rng",
        "OS-entropy-seeded RNG; derive from the scenario seed instead",
    ),
    (
        "from_entropy",
        "OS-entropy-seeded RNG; derive from the scenario seed instead",
    ),
];

/// Identifiers that read the process environment (env-dependent behavior).
const DETERMINISM_ENV: [&str; 3] = ["var", "var_os", "vars"];

/// Panicking identifiers denied in hot paths (method or macro position).
const HOT_PANICKING: [&str; 5] = ["unwrap", "expect", "panic", "todo", "unimplemented"];

/// `Type::method` pairs denied in hot paths (constructors that allocate).
const HOT_ALLOC_TYPES: [&str; 4] = ["Vec", "VecDeque", "Box", "String"];
const HOT_ALLOC_CTORS: [&str; 2] = ["new", "with_capacity"];

/// Allocating method/macro identifiers denied in hot paths.
const HOT_ALLOC_CALLS: [(&str, bool); 6] = [
    // (identifier, is_macro)
    ("vec", true),
    ("format", true),
    ("to_vec", false),
    ("to_string", false),
    ("to_owned", false),
    ("clone", false),
];

/// Analyze one file's source text under the given scope.
///
/// `path` is only used in the "dangling marker" messages; the caller renders
/// diagnostics with whatever path label it wants.
pub fn analyze(src: &str, scope: Scope) -> FileReport {
    let scrubbed = scrub(src);
    let text = scrubbed.text.as_str();
    let tokens = tokenize(text);

    let test_regions = find_test_regions(text, &tokens);
    let in_test = |offset: usize| test_regions.iter().any(|&(s, e)| offset >= s && offset < e);

    let mut report = FileReport::default();
    let mut allows: Vec<AllowMarker> = Vec::new();
    let mut hot_regions: Vec<(usize, usize)> = Vec::new();

    // Pass 1: markers.
    for c in &scrubbed.comments {
        if let Some(rest) = c.text.strip_prefix(ALLOW_PREFIX) {
            match parse_allow(rest) {
                Ok((rule, justification)) => allows.push(AllowMarker {
                    line: c.line,
                    rule,
                    justification,
                    used: false,
                }),
                Err(msg) => report.violations.push(Violation {
                    line: c.line,
                    rule: Rule::Marker,
                    message: msg,
                }),
            }
        } else if c.text == HOT_PATH_MARKER || c.text.starts_with("lint: hot-path ") {
            match hot_region_after(text, &tokens, c.start) {
                Some(region) => hot_regions.push(region),
                None => report.violations.push(Violation {
                    line: c.line,
                    rule: Rule::Marker,
                    message: "dangling `lint: hot-path` marker: no `fn` with a body follows it"
                        .to_string(),
                }),
            }
        } else if c.text.starts_with("lint:") {
            report.violations.push(Violation {
                line: c.line,
                rule: Rule::Marker,
                message: format!(
                    "unrecognized lint marker `{}` (expected `lint: allow(<rule>) — <why>` \
                     or `lint: hot-path`)",
                    c.text
                ),
            });
        }
    }
    let in_hot = |offset: usize| hot_regions.iter().any(|&(s, e)| offset >= s && offset < e);

    // Pass 2: token rules.
    let mut raw: Vec<Violation> = Vec::new();
    for (idx, tok) in tokens.iter().enumerate() {
        if !tok.is_ident {
            continue;
        }
        let name = tok.text(text);

        // determinism --------------------------------------------------
        if scope.determinism && !in_test(tok.start) {
            if let Some((_, why)) = DETERMINISM_DENY.iter().find(|(n, _)| *n == name) {
                raw.push(Violation {
                    line: tok.line,
                    rule: Rule::Determinism,
                    message: format!("`{name}` is nondeterministic: {why}"),
                });
            }
            // `env::var(...)` / `std::env::var_os(...)`: flag the call only
            // when it is path-qualified by `env` to avoid false positives on
            // unrelated `var` identifiers.
            if DETERMINISM_ENV.contains(&name)
                && prev_is_path_segment(&tokens, idx, text, "env")
                && next_punct_is(&tokens, idx, text, b'(')
            {
                raw.push(Violation {
                    line: tok.line,
                    rule: Rule::Determinism,
                    message: format!(
                        "`env::{name}` makes results depend on the process environment"
                    ),
                });
            }
        }

        // hot-path ------------------------------------------------------
        if in_hot(tok.start) {
            if HOT_PANICKING.contains(&name) {
                let is_macro = next_punct_is(&tokens, idx, text, b'!');
                let is_method = prev_punct_is(&tokens, idx, text, b'.');
                let flagged = match name {
                    "unwrap" | "expect" => is_method,
                    _ => is_macro,
                };
                if flagged {
                    raw.push(Violation {
                        line: tok.line,
                        rule: Rule::HotPath,
                        message: format!(
                            "`{name}{}` can panic inside a hot-path function; restructure to an \
                             infallible pattern",
                            if is_macro { "!" } else { "" }
                        ),
                    });
                }
            }
            if HOT_ALLOC_CTORS.contains(&name)
                && HOT_ALLOC_TYPES
                    .iter()
                    .any(|ty| prev_is_path_segment(&tokens, idx, text, ty))
            {
                raw.push(Violation {
                    line: tok.line,
                    rule: Rule::HotPath,
                    message: format!(
                        "allocating constructor `::{name}` inside a hot-path function; \
                         preallocate outside the per-slot loop"
                    ),
                });
            }
            for (call, is_macro) in HOT_ALLOC_CALLS {
                if name != call {
                    continue;
                }
                let matches_shape = if is_macro {
                    next_punct_is(&tokens, idx, text, b'!')
                } else {
                    prev_punct_is(&tokens, idx, text, b'.')
                };
                if matches_shape {
                    raw.push(Violation {
                        line: tok.line,
                        rule: Rule::HotPath,
                        message: format!(
                            "`{name}{}` allocates inside a hot-path function",
                            if is_macro { "!" } else { "" }
                        ),
                    });
                }
            }
        }

        // cast ----------------------------------------------------------
        if scope.cast && !in_test(tok.start) && name == "as" {
            if let Some(next) = tokens.get(idx + 1) {
                if next.is_ident {
                    let target = next.text(text);
                    if target == "u16" || target == "u32" {
                        raw.push(Violation {
                            line: tok.line,
                            rule: Rule::Cast,
                            message: format!(
                                "bare `as {target}` narrowing; use a checked accessor or \
                                 try_into (silent truncation corrupts routing fields)"
                            ),
                        });
                    }
                }
            }
        }

        // unsafe ---------------------------------------------------------
        if name == "unsafe" {
            // Accept `SAFETY:` anywhere in the contiguous comment block that
            // ends on this line or the one above (multi-line justifications
            // put the keyword on the block's first line).
            let commented = |line: usize| scrubbed.comments.iter().any(|c| c.line == line);
            let mut has_safety = false;
            let mut line = tok.line;
            loop {
                if scrubbed
                    .comments
                    .iter()
                    .any(|c| c.line == line && c.text.contains("SAFETY:"))
                {
                    has_safety = true;
                    break;
                }
                if line == 0 || !commented(line - 1) {
                    break;
                }
                line -= 1;
            }
            if !has_safety {
                raw.push(Violation {
                    line: tok.line,
                    rule: Rule::Unsafe,
                    message: "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
                });
            }
        }
    }

    // Pass 3: apply allow markers (a marker suppresses matching violations on
    // its own line — trailing-comment form — or the line directly below).
    for v in raw {
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line) {
                if !a.used {
                    a.used = true;
                    report.allows_used.push(AllowUse {
                        line: a.line,
                        rule: a.rule,
                        justification: a.justification.clone(),
                    });
                }
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            report.violations.push(v);
        }
    }
    for a in &allows {
        if !a.used {
            report.violations.push(Violation {
                line: a.line,
                rule: Rule::Marker,
                message: format!(
                    "unused allow marker for `{}`: nothing on this or the next line \
                     triggers the rule",
                    a.rule.name()
                ),
            });
        }
    }

    report.violations.sort_by_key(|v| v.line);
    report
}

/// Parse the tail of an allow marker after `lint: allow(`.
fn parse_allow(rest: &str) -> Result<(Rule, String), String> {
    let Some(close) = rest.find(')') else {
        return Err("malformed allow marker: missing `)`".to_string());
    };
    let name = rest[..close].trim();
    let Some(rule) = Rule::from_name(name) else {
        return Err(format!(
            "allow marker names unknown rule `{name}` (known: determinism, hot-path, cast, unsafe)"
        ));
    };
    let justification = rest[close + 1..]
        .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
        .trim()
        .to_string();
    if justification.is_empty() {
        return Err(format!(
            "allow marker for `{}` is missing a justification — write \
             `lint: allow({}) — <why this is sound>`",
            rule.name(),
            rule.name()
        ));
    }
    Ok((rule, justification))
}

/// True if the token before `idx` (skipping none) is `::` preceded by the
/// identifier `segment` — i.e. the token at `idx` is path-qualified by it.
fn prev_is_path_segment(tokens: &[Token], idx: usize, text: &str, segment: &str) -> bool {
    if idx < 3 {
        return false;
    }
    let c1 = &tokens[idx - 1];
    let c2 = &tokens[idx - 2];
    let seg = &tokens[idx - 3];
    !c1.is_ident
        && !c2.is_ident
        && c1.text(text) == ":"
        && c2.text(text) == ":"
        && seg.is_ident
        && seg.text(text) == segment
}

fn next_punct_is(tokens: &[Token], idx: usize, text: &str, punct: u8) -> bool {
    tokens
        .get(idx + 1)
        .is_some_and(|t| !t.is_ident && t.text(text).as_bytes() == [punct])
}

fn prev_punct_is(tokens: &[Token], idx: usize, text: &str, punct: u8) -> bool {
    idx > 0 && !tokens[idx - 1].is_ident && tokens[idx - 1].text(text).as_bytes() == [punct]
}

/// Byte ranges of `#[cfg(test)]` / `#[test]`-gated items (including their
/// attribute lists and bodies).
fn find_test_regions(text: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some((attr_end, gated)) = parse_attribute(tokens, i, text) {
            if gated {
                // Skip any further attributes, then the item itself.
                let mut j = attr_end;
                while let Some((next_end, _)) = parse_attribute(tokens, j, text) {
                    j = next_end;
                }
                let end = skip_item(tokens, j, text);
                regions.push((tokens[i].start, end));
                i = j;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    regions
}

/// If tokens[i..] starts an attribute `#[...]`, return (index one past it,
/// whether it test-gates the following item).
fn parse_attribute(tokens: &[Token], i: usize, text: &str) -> Option<(usize, bool)> {
    if i + 1 >= tokens.len() {
        return None;
    }
    if tokens[i].is_ident || tokens[i].text(text) != "#" {
        return None;
    }
    let mut j = i + 1;
    // Inner attributes `#![...]` never gate an item.
    let inner = !tokens[j].is_ident && tokens[j].text(text) == "!";
    if inner {
        j += 1;
    }
    if j >= tokens.len() || tokens[j].is_ident || tokens[j].text(text) != "[" {
        return None;
    }
    let mut depth = 0usize;
    let mut is_test = false;
    let mut saw_cfg_or_test_head = false;
    let mut k = j;
    while k < tokens.len() {
        let t = &tokens[k];
        let s = t.text(text);
        if !t.is_ident {
            match s {
                "[" | "(" => depth += 1,
                "]" | ")" => {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                _ => {}
            }
        } else {
            if depth == 1 && (s == "cfg" || s == "test") {
                saw_cfg_or_test_head = true;
                if s == "test" {
                    is_test = true;
                }
            }
            if depth >= 2 && s == "test" && saw_cfg_or_test_head {
                is_test = true;
            }
        }
        k += 1;
    }
    Some((k, is_test && !inner))
}

/// Skip one item starting at tokens[i]: consume to its body's matching `}` or
/// a terminating `;`, returning the end byte offset.
fn skip_item(tokens: &[Token], i: usize, text: &str) -> usize {
    let mut depth = 0usize;
    let mut k = i;
    while k < tokens.len() {
        let t = &tokens[k];
        if !t.is_ident {
            match t.text(text) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return t.end;
                    }
                }
                ";" if depth == 0 => return t.end,
                _ => {}
            }
        }
        k += 1;
    }
    text.len()
}

/// The body byte-range of the first `fn` after `after` (for hot markers).
fn hot_region_after(text: &str, tokens: &[Token], after: usize) -> Option<(usize, usize)> {
    let mut i = tokens.iter().position(|t| t.start >= after)?;
    while i < tokens.len() {
        if tokens[i].is_ident && tokens[i].text(text) == "fn" {
            // Find the body's opening brace, then match it.
            let mut k = i + 1;
            while k < tokens.len() {
                let s = tokens[k].text(text);
                if !tokens[k].is_ident && s == "{" {
                    let start = tokens[k].start;
                    let end = skip_item(tokens, k, text);
                    return Some((start, end));
                }
                if !tokens[k].is_ident && s == ";" {
                    return None; // trait method signature without a body
                }
                k += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str, scope: Scope) -> Vec<String> {
        analyze(src, scope)
            .violations
            .iter()
            .map(|v| v.render("f.rs"))
            .collect()
    }

    const FULL: Scope = Scope {
        determinism: true,
        cast: true,
    };

    #[test]
    fn determinism_flags_hashmap_but_not_in_tests() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let v = lint(src, FULL);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].starts_with("f.rs:1: [determinism]"), "{v:?}");
    }

    #[test]
    fn determinism_is_scope_gated() {
        let src = "use std::collections::HashMap;\n";
        assert!(lint(src, Scope::default()).is_empty());
    }

    #[test]
    fn env_var_is_flagged_only_when_path_qualified() {
        let src = "fn f() { let _ = std::env::var(\"X\"); }\nfn g(var: u8) -> u8 { var }\n";
        let v = lint(src, FULL);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("env::var"), "{v:?}");
    }

    #[test]
    fn hot_path_catches_panics_and_allocation() {
        let src = "// lint: hot-path\n\
                   fn step() {\n\
                       let x = Some(1).unwrap();\n\
                       let v = Vec::new();\n\
                       let s = format!(\"x\");\n\
                   }\n\
                   fn cold() { let y = Some(1).unwrap(); let _ = y; }\n";
        let v = lint(src, Scope::default());
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v[0].contains("unwrap"));
        assert!(v[1].contains("::new"));
        assert!(v[2].contains("format!"));
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "// lint: hot-path\nfn step() { let x = a.unwrap_or_default(); }\n";
        assert!(lint(src, Scope::default()).is_empty());
    }

    #[test]
    fn cast_rule_fires_and_is_suppressible_inline() {
        let src = "fn f(x: usize) -> u16 { x as u16 }\n\
                   // lint: allow(cast) — bounded by assert_ports_fit\n\
                   fn g(x: usize) -> u16 { x as u16 }\n";
        let v = lint(src, FULL);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].starts_with("f.rs:1: [cast]"));
        let allows = analyze(src, FULL).allows_used;
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].justification, "bounded by assert_ports_fit");
    }

    #[test]
    fn allow_without_justification_is_a_violation() {
        let src = "// lint: allow(cast)\nfn g(x: usize) -> u16 { x as u16 }\n";
        let v = lint(src, FULL);
        assert_eq!(v.len(), 2, "marker error plus the unsuppressed cast: {v:?}");
        assert!(v[0].contains("missing a justification"), "{v:?}");
    }

    #[test]
    fn unused_allow_is_a_violation() {
        let src = "// lint: allow(determinism) — no reason to exist\nfn g() {}\n";
        let v = lint(src, FULL);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("unused allow marker"), "{v:?}");
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let src = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n\
                   // SAFETY: g is only called with valid invariants.\n\
                   fn g() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let v = lint(src, Scope::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].starts_with("f.rs:1: [unsafe]"), "{v:?}");
    }

    #[test]
    fn dangling_hot_marker_is_reported() {
        let src = "// lint: hot-path\nconst X: u8 = 0;\n";
        let v = lint(src, Scope::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("dangling"), "{v:?}");
    }

    #[test]
    fn strings_and_comments_never_trip_rules() {
        let src = "fn f() -> &'static str { \"HashMap Instant unwrap() as u16\" }\n\
                   // HashMap in prose is fine\n";
        assert!(lint(src, FULL).is_empty());
    }

    #[test]
    fn test_attribute_variants_are_skipped() {
        let src = "#[test]\nfn t() { let m = std::collections::HashMap::<u8, u8>::new(); }\n\
                   #[cfg(all(test, feature = \"x\"))]\nmod m { use std::time::Instant; }\n";
        assert!(lint(src, FULL).is_empty());
    }
}
