//! CLI entry point: `sprinklers-lint check [--root <path>]` / `rules`.

#![forbid(unsafe_code)]

use sprinklers_lint::rules::ALL_RULES;
use sprinklers_lint::{find_workspace_root, lint_tree};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
sprinklers-lint — the workspace static-analysis gate

USAGE:
    sprinklers-lint check [--root <path>]   lint every .rs file; exit 1 on violation
    sprinklers-lint rules                   print the rule reference

Suppression (audited, justification mandatory):
    // lint: allow(<rule>) — <why this is sound>
on the offending line or the line directly above it.

Hot-path designation:
    // lint: hot-path
directly above a `fn` marks its body as a hot region.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match lint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for line in report.rendered_violations() {
        println!("{line}");
    }

    println!(
        "sprinklers-lint: {} files scanned, {} violation{}, {} audited allow{}",
        report.files_scanned,
        report.violations.len(),
        if report.violations.len() == 1 {
            ""
        } else {
            "s"
        },
        report.allows_used.len(),
        if report.allows_used.len() == 1 {
            ""
        } else {
            "s"
        },
    );
    println!("  rule         allows");
    for (name, count) in report.allow_summary() {
        println!("  {name:<12} {count}");
    }
    if !report.allows_used.is_empty() {
        println!("audited allows:");
        for (path, a) in &report.allows_used {
            println!(
                "  {path}:{}: [{}] {}",
                a.line,
                a.rule.name(),
                a.justification
            );
        }
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_rules() {
    println!("sprinklers-lint rule reference\n");
    for rule in ALL_RULES {
        println!("[{}]", rule.name());
        println!("{}\n", rule.description());
    }
    println!(
        "Suppression: `// lint: allow(<rule>) — <justification>` on the offending line\n\
         or the line directly above.  The justification is mandatory; unused markers\n\
         are violations; every allow is counted in the `check` summary.\n\n\
         Hot-path designation: `// lint: hot-path` directly above a `fn` marks its\n\
         body as a hot region for the hot-path rule."
    );
}
