//! Thread-sharded scenario execution.
//!
//! The paper's headline figures are scheme × load grids — dozens of
//! independent simulation runs — and a [`crate::engine::Engine`] run touches
//! nothing but its own switch, traffic generator and metrics.  This module
//! exploits that independence: [`run_specs_parallel`] fans a slice of
//! [`ScenarioSpec`]s out across a pool of worker threads (one engine per
//! worker, self-scheduling work pickup so fast runs steal slack from slow
//! ones) and reassembles the results **in submission order**, so the output
//! is byte-for-byte identical no matter how many workers ran it.
//!
//! Determinism is the load-bearing property here: every scenario's RNG is
//! seeded from its spec alone, workers share nothing but the read-only spec
//! slice, and reassembly is positional — the `determinism` integration test
//! pins all of this down.

use crate::engine::Engine;
use crate::report::SimReport;
use crate::spec::{ScenarioSpec, SpecError};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The worker count used when a caller passes `workers == 0`: one per
/// available hardware thread (falling back to 1 when the platform cannot
/// say).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run every spec, sharded across `workers` OS threads (`0` = one worker per
/// core).  Each worker owns one [`Engine`] for its whole lifetime, so the
/// engine's arrival buffer is reused across the runs that land on it.
///
/// The returned vector is in **submission order** — `result[i]` always
/// belongs to `specs[i]` — regardless of worker count or completion order,
/// and per-run results are bitwise independent of scheduling (each run is
/// seeded purely from its spec).  A failing spec yields its own `Err` slot;
/// the other runs still complete.
pub fn run_specs_parallel(
    specs: &[ScenarioSpec],
    workers: usize,
) -> Vec<Result<SimReport, SpecError>> {
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    }
    .min(specs.len().max(1));

    if workers <= 1 {
        // Serial fast path: same engine reuse, no thread or channel overhead.
        let mut engine = Engine::new();
        return specs.iter().map(|spec| engine.run(spec)).collect();
    }

    // Self-scheduling pool: a shared atomic cursor is the work queue, so an
    // idle worker always takes the next unclaimed spec (cheap work stealing
    // without per-worker deques), and a channel carries `(index, result)`
    // pairs back for positional reassembly.
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<SimReport, SpecError>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || {
                let mut engine = Engine::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    match specs.get(i) {
                        Some(spec) => {
                            // The receiver outlives the scope; a send can only
                            // fail if the main thread panicked, in which case
                            // the scope is unwinding anyway.
                            let _ = tx.send((i, engine.run(spec)));
                        }
                        None => break,
                    }
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<Result<SimReport, SpecError>>> =
            (0..specs.len()).map(|_| None).collect();
        for (i, result) in rx {
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every submitted spec produces exactly one result"))
            .collect()
    })
}

/// Like [`run_specs_parallel`], but collapses the per-spec results into one
/// `Result`: on failure, the error of the **earliest submitted** failing spec
/// is returned (with its label as context), so error reporting is as
/// deterministic as the success path.
pub fn run_specs_parallel_ok(
    specs: &[ScenarioSpec],
    workers: usize,
) -> Result<Vec<SimReport>, SpecError> {
    specs
        .iter()
        .zip(run_specs_parallel(specs, workers))
        .map(|(spec, result)| result.map_err(|e| e.context(spec.label())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RunConfig;
    use crate::spec::TrafficSpec;

    fn grid() -> Vec<ScenarioSpec> {
        let mut specs = Vec::new();
        for scheme in ["oq", "baseline-lb", "sprinklers"] {
            for load in [0.2, 0.5, 0.8] {
                specs.push(
                    ScenarioSpec::new(scheme, 8)
                        .with_traffic(TrafficSpec::Uniform { load })
                        .with_run(RunConfig {
                            slots: 1_500,
                            warmup_slots: 150,
                            drain_slots: 3_000,
                        })
                        .with_seed(9),
                );
            }
        }
        specs
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let specs = grid();
        let results = run_specs_parallel(&specs, 4);
        assert_eq!(results.len(), specs.len());
        for (spec, result) in specs.iter().zip(&results) {
            let report = result.as_ref().unwrap();
            assert_eq!(report.switch_name, spec.scheme, "order scrambled");
            assert_eq!(report.n, spec.n);
        }
    }

    #[test]
    fn worker_count_does_not_change_the_reports() {
        let specs = grid();
        let serial = run_specs_parallel(&specs, 1);
        for workers in [2, 4, 0] {
            let parallel = run_specs_parallel(&specs, workers);
            for (a, b) in serial.iter().zip(&parallel) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.csv_row(), b.csv_row(), "workers={workers} diverged");
            }
        }
    }

    #[test]
    fn metrics_sidecar_is_identical_at_any_worker_count() {
        // The CSV row summarises; the metrics JSON exposes every counter,
        // the full delay histogram and the windowed series.  All of it must
        // be scheduling-invariant, not just the 14 summary columns.
        let specs = grid();
        let serial = run_specs_parallel(&specs, 1);
        for workers in [3, 0] {
            let parallel = run_specs_parallel(&specs, workers);
            for (a, b) in serial.iter().zip(&parallel) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(
                    a.metrics_json(),
                    b.metrics_json(),
                    "workers={workers} diverged"
                );
            }
        }
    }

    #[test]
    fn batch_size_is_orthogonal_to_worker_count() {
        // Batched stepping and thread sharding are both pure perf knobs; any
        // combination must reproduce the same reports in the same order.
        let specs_at = |batch: u32| {
            let mut specs = grid();
            for spec in &mut specs {
                spec.batch = batch;
            }
            specs
        };
        let baseline = run_specs_parallel(&specs_at(1), 1);
        for (batch, workers) in [(64, 1), (1, 4), (64, 4), (7, 3)] {
            let runs = run_specs_parallel(&specs_at(batch), workers);
            for (a, b) in baseline.iter().zip(&runs) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(
                    a.csv_row(),
                    b.csv_row(),
                    "batch={batch} workers={workers} diverged"
                );
            }
        }
    }

    #[test]
    fn failures_stay_in_their_slot() {
        let mut specs = grid();
        specs[4].scheme = "no-such-scheme".into();
        let results = run_specs_parallel(&specs, 3);
        for (i, result) in results.iter().enumerate() {
            if i == 4 {
                let e = result.as_ref().unwrap_err().to_string();
                assert!(e.contains("no-such-scheme"), "{e}");
            } else {
                assert!(result.is_ok(), "spec {i} should have run");
            }
        }
    }

    #[test]
    fn collapsed_form_reports_the_earliest_failure_with_context() {
        let mut specs = grid();
        specs[7].scheme = "late-bogus".into();
        specs[2].scheme = "early-bogus".into();
        let err = run_specs_parallel_ok(&specs, 4).unwrap_err().to_string();
        assert!(err.contains("early-bogus"), "{err}");
        assert!(!err.contains("late-bogus"), "{err}");
    }

    #[test]
    fn empty_and_single_spec_inputs_work() {
        assert!(run_specs_parallel(&[], 8).is_empty());
        let one = [ScenarioSpec::new("oq", 4).with_run(RunConfig {
            slots: 500,
            warmup_slots: 0,
            drain_slots: 1_000,
        })];
        let results = run_specs_parallel(&one, 8);
        assert_eq!(results.len(), 1);
        assert!(results[0].is_ok());
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
