//! Content-addressed experiment cache.
//!
//! Every [`ScenarioSpec`] has a *scientific identity*: the subset of its
//! fields that can change the simulation's result.  `batch` and `threads`
//! are deliberately excluded — they are pure performance knobs whose
//! byte-identical-output guarantee is enforced by the `batch-parity` and
//! `thread-parity` CI jobs and the differential property suite.  Hashing
//! the identity (canonical JSON, FNV-1a 128) yields a stable key, and
//! [`ExperimentCache`] maps that key to the finished run's CSV row, the
//! summary scalars the suite prints, and optionally the full metrics
//! sidecar line.
//!
//! Two properties matter for correctness:
//!
//! * **A hit must be indistinguishable from a recompute.**  The cache
//!   stores the exact `csv_row` string and the exact f64 bit patterns of
//!   the summary scalars, so suite output assembled from hits is
//!   byte-identical to a cold run.
//! * **A corrupt or foreign entry must read as a miss, never as data.**
//!   [`ExperimentCache::load`] parses the fixed v1 line format strictly
//!   and returns `None` on any deviation; the suite then simply
//!   recomputes the cell.
//!
//! Writes go through a temp file in the same directory followed by a
//! rename, so a crash mid-store leaves either the old entry or none — a
//! reader never sees a half-written file.  (Entries are written serially
//! by the suite's main thread; the scheme is not designed for concurrent
//! writers of the *same* key from different processes, where last-rename
//! wins — which is still a complete, valid entry.)
//!
//! The hasher is FNV-1a (128-bit) implemented inline: the workspace lint
//! gate bans `std::collections::hash_map::DefaultHasher` in library code
//! because its output is unspecified across releases, and cache keys must
//! be stable across builds.

use crate::engine::DEFAULT_BATCH;
use crate::report::SimReport;
use crate::spec::ScenarioSpec;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// FNV-1a offset basis for the 128-bit variant.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a prime for the 128-bit variant (2^88 + 2^8 + 0x3b).
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Hash `bytes` with 128-bit FNV-1a.
///
/// Stable across builds, platforms and releases (unlike `DefaultHasher`),
/// dependency-free, and 128 bits wide so accidental collisions between
/// distinct scenario identities are not a practical concern.
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut hash = FNV128_OFFSET;
    for &b in bytes {
        hash ^= u128::from(b);
        hash = hash.wrapping_mul(FNV128_PRIME);
    }
    hash
}

impl ScenarioSpec {
    /// Canonical JSON for this scenario's *scientific identity*: the spec
    /// with `batch` and `threads` normalised to their defaults, rendered
    /// by the same writer that serialises spec files.  Two specs that can
    /// only differ in performance knobs produce the same string.
    pub fn scientific_identity_json(&self) -> String {
        let mut identity = self.clone();
        identity.batch = DEFAULT_BATCH;
        identity.threads = 1;
        identity.to_json()
    }

    /// 128-bit content hash of [`Self::scientific_identity_json`].  This
    /// is the experiment cache key: it changes whenever any
    /// result-affecting field changes (scheme, n, sizing, traffic, run
    /// lengths, seed — including a trace's *path*, format, repeat and
    /// scale, though not the trace file's contents) and stays fixed
    /// across `batch`/`threads` values.
    pub fn content_hash(&self) -> u128 {
        fnv1a_128(self.scientific_identity_json().as_bytes())
    }
}

/// Everything the suite needs to reproduce one finished run's output
/// without re-simulating: the exact CSV row, the scalars behind the
/// per-scheme summary table, and (when captured) the metrics sidecar
/// line.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedRun {
    /// The run's [`SimReport::csv_row`] output, verbatim.
    pub csv_row: String,
    /// Mean post-warm-up delay ([`crate::metrics::DelayStats::mean`]).
    pub mean_delay: f64,
    /// 99th-percentile delay.
    pub p99_delay: u64,
    /// Per-VOQ reorder events.
    pub voq_reorders: u64,
    /// Delivered / offered data packets.
    pub delivery_ratio: f64,
    /// The run's [`SimReport::metrics_json`] line, if metrics capture was
    /// requested when the entry was stored.  An entry without it still
    /// serves CSV-only suite runs; a metrics-enabled run treats such an
    /// entry as a miss and recomputes.
    pub metrics_json: Option<String>,
}

impl CachedRun {
    /// Capture a finished report.  `include_metrics` controls whether the
    /// (comparatively large) metrics sidecar line is stored.
    pub fn from_report(report: &SimReport, include_metrics: bool) -> Self {
        CachedRun {
            csv_row: report.csv_row(),
            mean_delay: report.delay.mean(),
            p99_delay: report.delay.percentile(0.99),
            voq_reorders: report.reordering.voq_reorder_events,
            delivery_ratio: report.delivery_ratio(),
            metrics_json: include_metrics.then(|| report.metrics_json()),
        }
    }
}

/// A directory of `<hash>.run` files, one per scenario identity.
#[derive(Debug, Clone)]
pub struct ExperimentCache {
    dir: PathBuf,
}

impl ExperimentCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ExperimentCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, hash: u128) -> PathBuf {
        self.dir.join(format!("{hash:032x}.run"))
    }

    /// Load the entry for `hash`.  Returns `None` on a missing file *and*
    /// on any parse deviation — a corrupt entry is a cache miss, not an
    /// error, because the caller can always recompute.
    pub fn load(&self, hash: u128) -> Option<CachedRun> {
        let text = fs::read_to_string(self.entry_path(hash)).ok()?;
        let mut lines = text.lines();
        if lines.next()? != "sprinklers-cache v1" {
            return None;
        }
        let csv_row = lines.next()?.strip_prefix("row ")?.to_string();
        let mean_delay = parse_f64_bits(lines.next()?.strip_prefix("mean_delay_bits ")?)?;
        let p99_delay = lines.next()?.strip_prefix("p99_delay ")?.parse().ok()?;
        let voq_reorders = lines.next()?.strip_prefix("voq_reorders ")?.parse().ok()?;
        let delivery_ratio = parse_f64_bits(lines.next()?.strip_prefix("delivery_ratio_bits ")?)?;
        let metrics = lines.next()?.strip_prefix("metrics ")?;
        let metrics_json = match metrics {
            "-" => None,
            json => Some(json.to_string()),
        };
        if lines.next().is_some() {
            return None; // trailing garbage: treat the whole entry as corrupt
        }
        Some(CachedRun {
            csv_row,
            mean_delay,
            p99_delay,
            voq_reorders,
            delivery_ratio,
            metrics_json,
        })
    }

    /// Store `run` under `hash`, atomically replacing any existing entry.
    pub fn store(&self, hash: u128, run: &CachedRun) -> std::io::Result<()> {
        debug_assert!(
            !run.csv_row.contains('\n') && !run.csv_row.contains('\r'),
            "csv_row must be a single line"
        );
        let mut text = String::with_capacity(256);
        text.push_str("sprinklers-cache v1\n");
        let _ = writeln!(text, "row {}", run.csv_row);
        // f64s as bit patterns: exact round-trip, no decimal formatting
        // ambiguity, so a hit reprints the summary byte-identically.
        let _ = writeln!(text, "mean_delay_bits {:016x}", run.mean_delay.to_bits());
        let _ = writeln!(text, "p99_delay {}", run.p99_delay);
        let _ = writeln!(text, "voq_reorders {}", run.voq_reorders);
        let _ = writeln!(
            text,
            "delivery_ratio_bits {:016x}",
            run.delivery_ratio.to_bits()
        );
        match &run.metrics_json {
            Some(json) => {
                debug_assert!(!json.contains('\n'), "metrics_json must be a single line");
                let _ = writeln!(text, "metrics {json}");
            }
            None => text.push_str("metrics -\n"),
        }
        let tmp = self.dir.join(format!(".{hash:032x}.tmp"));
        fs::write(&tmp, &text)?;
        fs::rename(&tmp, self.entry_path(hash))
    }
}

fn parse_f64_bits(hex: &str) -> Option<f64> {
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TrafficSpec;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sprinklers-cache-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fnv1a_128_matches_the_published_basis_and_separates_inputs() {
        assert_eq!(fnv1a_128(b""), 0x6c62272e07bb014262b821756295c58d);
        assert_ne!(fnv1a_128(b"a"), fnv1a_128(b"b"));
        assert_ne!(fnv1a_128(b"ab"), fnv1a_128(b"ba"));
        // Deterministic across calls (the whole point versus DefaultHasher).
        assert_eq!(fnv1a_128(b"sprinklers"), fnv1a_128(b"sprinklers"));
    }

    #[test]
    fn content_hash_ignores_performance_knobs_only() {
        let base = ScenarioSpec::new("sprinklers", 8);
        let hash = base.content_hash();
        assert_eq!(base.clone().with_batch(1).content_hash(), hash);
        assert_eq!(base.clone().with_batch(4096).content_hash(), hash);
        assert_eq!(base.clone().with_threads(8).content_hash(), hash);

        assert_ne!(base.clone().with_seed(2).content_hash(), hash);
        assert_ne!(ScenarioSpec::new("sprinklers", 16).content_hash(), hash);
        assert_ne!(ScenarioSpec::new("oq", 8).content_hash(), hash);
        assert_ne!(
            base.clone()
                .with_traffic(TrafficSpec::Uniform { load: 0.61 })
                .content_hash(),
            hash
        );
    }

    #[test]
    fn content_hash_separates_fault_schedules() {
        // A faulted run and its fault-free twin must never collide in the
        // experiment cache — nor may two different fault schedules.
        use crate::spec::{
            FaultEventSpec, FaultKind, FaultSpec, LinkSpec, RandomFaultSpec, RoutingSpec,
            TopologySpec,
        };
        let topo = TopologySpec::FatTree2 {
            edges: 2,
            cores: 4,
            hosts_per_edge: 8,
            routing: RoutingSpec::Stripe,
            link: LinkSpec { latency: 1, gap: 1 },
        };
        let base = ScenarioSpec::new("oq", 16).with_topology(topo);
        let event = |slot| FaultEventSpec {
            slot,
            kind: FaultKind::LinkDown,
            index: 0,
        };
        let faulted = |slot| {
            base.clone().with_faults(FaultSpec {
                events: vec![event(slot)],
                random: None,
            })
        };
        let healthy = base.content_hash();
        assert_ne!(faulted(100).content_hash(), healthy);
        assert_ne!(faulted(100).content_hash(), faulted(200).content_hash());
        let random = base.clone().with_faults(FaultSpec {
            events: vec![],
            random: Some(RandomFaultSpec {
                mtbf: 5_000,
                mttr: 300,
                seed: 5,
            }),
        });
        assert_ne!(random.content_hash(), healthy);
        // Fault fields are scientific identity, not perf knobs: they stay
        // in the hash even as batch/threads are canonicalized away.
        assert_eq!(
            faulted(100).with_batch(1).with_threads(8).content_hash(),
            faulted(100).content_hash()
        );
        assert!(faulted(100).scientific_identity_json().contains("faults"));
    }

    #[test]
    fn entries_round_trip_exactly_including_f64_bits() {
        let cache = ExperimentCache::open(tmp_dir("roundtrip")).unwrap();
        let run = CachedRun {
            csv_row: "oq,uniform(0.6),8,2000,9561,9561,3.117,2,9,13,31,0,0,0.00".into(),
            // A value with no short decimal form: only bit-exact storage
            // reproduces it.
            mean_delay: f64::from_bits(0x4008ef9db22d0e56),
            p99_delay: 13,
            voq_reorders: 0,
            delivery_ratio: 0.9999999999999999,
            metrics_json: Some("{\"schema\":\"sprinklers-metrics/1\"}".into()),
        };
        cache.store(7, &run).unwrap();
        assert_eq!(cache.load(7).unwrap(), run);

        let bare = CachedRun {
            metrics_json: None,
            ..run.clone()
        };
        cache.store(8, &bare).unwrap();
        assert_eq!(cache.load(8).unwrap(), bare);
        assert_eq!(cache.load(9), None, "absent key is a miss");
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let cache = ExperimentCache::open(tmp_dir("corrupt")).unwrap();
        let path = cache.entry_path(1);
        for bad in [
            "",
            "sprinklers-cache v2\nrow x\n",
            "sprinklers-cache v1\nrow only-a-row\n",
            // bad hex width in the bits field
            "sprinklers-cache v1\nrow r\nmean_delay_bits 00\np99_delay 1\nvoq_reorders 0\ndelivery_ratio_bits 3ff0000000000000\nmetrics -\n",
            // trailing garbage after a complete entry
            "sprinklers-cache v1\nrow r\nmean_delay_bits 3ff0000000000000\np99_delay 1\nvoq_reorders 0\ndelivery_ratio_bits 3ff0000000000000\nmetrics -\nextra\n",
        ] {
            std::fs::write(&path, bad).unwrap();
            assert_eq!(cache.load(1), None, "accepted: {bad:?}");
        }
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn from_report_captures_the_summary_scalars() {
        let spec = ScenarioSpec::new("oq", 4).with_run(crate::engine::RunConfig::quick());
        let report = crate::engine::Engine::new().run(&spec).unwrap();
        let run = CachedRun::from_report(&report, true);
        assert_eq!(run.csv_row, report.csv_row());
        assert_eq!(run.mean_delay.to_bits(), report.delay.mean().to_bits());
        assert_eq!(run.p99_delay, report.delay.percentile(0.99));
        assert_eq!(
            run.delivery_ratio.to_bits(),
            report.delivery_ratio().to_bits()
        );
        assert_eq!(
            run.metrics_json.as_deref(),
            Some(report.metrics_json().as_str())
        );
        assert_eq!(CachedRun::from_report(&report, false).metrics_json, None);
    }
}
