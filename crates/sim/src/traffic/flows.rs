//! Application-flow-structured traffic.
//!
//! The TCP-hashing baseline (§2.1 of the paper) routes every packet of an
//! application flow through the same intermediate port, so evaluating it —
//! and checking that Sprinklers preserves per-flow order, which follows from
//! per-VOQ order — requires traffic in which packets carry flow identifiers.
//!
//! `FlowTraffic` layers a flow structure on top of Bernoulli arrivals: each
//! `(input, output)` pair maintains a current flow; after every packet the
//! flow ends with probability `1/mean_flow_len` and a fresh flow id is drawn.
//! Flow sizes are therefore geometric with the configured mean, a standard
//! heavy-traffic approximation of TCP flow-size distributions.

use super::{row_cdf, sample_from_cdf, TrafficGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::Packet;

/// Bernoulli arrivals carrying geometric-size application flows.
pub struct FlowTraffic {
    n: usize,
    matrix: TrafficMatrix,
    per_input: Vec<(f64, Vec<f64>)>,
    mean_flow_len: f64,
    /// Current flow id of each (input, output) pair.
    current_flow: Vec<u64>,
    next_flow_id: u64,
    rng: StdRng,
}

impl FlowTraffic {
    /// Flow-structured traffic drawn from an arbitrary rate matrix.
    pub fn from_matrix(matrix: TrafficMatrix, mean_flow_len: f64, seed: u64) -> Self {
        assert!(
            mean_flow_len >= 1.0,
            "mean flow length must be at least 1 packet"
        );
        let n = matrix.n();
        let per_input = (0..n).map(|i| row_cdf(&matrix, i)).collect();
        let mut current_flow = vec![0u64; n * n];
        for (k, f) in current_flow.iter_mut().enumerate() {
            *f = k as u64;
        }
        FlowTraffic {
            n,
            matrix,
            per_input,
            mean_flow_len,
            next_flow_id: (n * n) as u64,
            current_flow,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform-destination flow traffic at load `rho` with the given mean flow
    /// length in packets.
    pub fn uniform(n: usize, rho: f64, mean_flow_len: f64, seed: u64) -> Self {
        Self::from_matrix(TrafficMatrix::uniform(n, rho), mean_flow_len, seed)
    }

    /// Mean flow length in packets.
    pub fn mean_flow_len(&self) -> f64 {
        self.mean_flow_len
    }
}

impl TrafficGenerator for FlowTraffic {
    fn n(&self) -> usize {
        self.n
    }

    fn arrivals_into(&mut self, slot: u64, out: &mut Vec<Packet>) {
        for input in 0..self.n {
            let (load, cdf) = &self.per_input[input];
            if *load > 0.0 && self.rng.gen::<f64>() < *load {
                let u = self.rng.gen::<f64>();
                let output = sample_from_cdf(cdf, u);
                let key = input * self.n + output;
                let flow = self.current_flow[key];
                out.push(Packet::new(input, output, 0, slot).with_flow(flow));
                // End the flow with probability 1/mean_flow_len.
                if self.rng.gen::<f64>() < 1.0 / self.mean_flow_len {
                    self.current_flow[key] = self.next_flow_id;
                    self.next_flow_id += 1;
                }
            }
        }
    }

    fn rate_matrix(&self) -> TrafficMatrix {
        self.matrix.clone()
    }

    fn label(&self) -> String {
        format!("flows(mean_len={})", self.mean_flow_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn packets_of_a_voq_share_flow_ids_in_runs() {
        let mut gen = FlowTraffic::uniform(4, 0.9, 10.0, 3);
        let mut per_voq_flows: BTreeMap<(usize, usize), Vec<u64>> = BTreeMap::new();
        for slot in 0..20_000 {
            for p in gen.arrivals(slot) {
                per_voq_flows.entry(p.voq()).or_default().push(p.flow);
            }
        }
        // Flow ids within a VOQ appear in contiguous runs (a flow never
        // resumes after it ended).
        for (_, flows) in per_voq_flows {
            let mut seen_closed = std::collections::BTreeSet::new();
            let mut current = None;
            for f in flows {
                if Some(f) != current {
                    if let Some(c) = current {
                        seen_closed.insert(c);
                    }
                    assert!(!seen_closed.contains(&f), "flow {f} resumed after ending");
                    current = Some(f);
                }
            }
        }
    }

    #[test]
    fn mean_flow_length_is_respected() {
        let mean = 8.0;
        let mut gen = FlowTraffic::uniform(2, 1.0, mean, 11);
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for slot in 0..100_000 {
            for p in gen.arrivals(slot) {
                *counts.entry(p.flow).or_insert(0) += 1;
            }
        }
        // Exclude the still-open flows (censored) by dropping the largest ids.
        let mut lens: Vec<u64> = counts.values().copied().collect();
        lens.sort_unstable();
        let measured: f64 = lens.iter().map(|&l| l as f64).sum::<f64>() / lens.len() as f64;
        assert!(
            (measured - mean).abs() < 1.5,
            "measured mean flow length {measured} should be ≈ {mean}"
        );
    }

    #[test]
    fn flow_ids_are_distinct_across_voqs() {
        let mut gen = FlowTraffic::uniform(4, 1.0, 5.0, 2);
        let mut flow_owner: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
        for slot in 0..5_000 {
            for p in gen.arrivals(slot) {
                let owner = flow_owner.entry(p.flow).or_insert_with(|| p.voq());
                assert_eq!(*owner, p.voq(), "flow {} spans two VOQs", p.flow);
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_sub_packet_flow_length() {
        let _ = FlowTraffic::uniform(4, 0.5, 0.5, 0);
    }
}
