//! Bernoulli i.i.d. arrivals — the traffic model of the paper's evaluation.
//!
//! In each time slot, input `i` receives a packet with probability equal to
//! its offered load; the destination is drawn from the input's destination
//! distribution.  The two destination distributions used in §6 are *uniform*
//! (every output equally likely) and *quasi-diagonal* (output `i` with
//! probability 1/2, every other output with probability `1/(2(N−1))`).
//! Arbitrary admissible rate matrices are also supported.

use super::{row_cdf, sample_from_cdf, TrafficGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::Packet;

/// Bernoulli i.i.d. traffic drawn from an arbitrary admissible rate matrix.
pub struct BernoulliTraffic {
    n: usize,
    matrix: TrafficMatrix,
    /// Per input: (arrival probability, destination CDF).
    per_input: Vec<(f64, Vec<f64>)>,
    rng: StdRng,
    label: String,
}

impl BernoulliTraffic {
    /// Bernoulli arrivals drawn from an explicit rate matrix.
    pub fn from_matrix(matrix: TrafficMatrix, seed: u64, label: impl Into<String>) -> Self {
        let n = matrix.n();
        let per_input = (0..n).map(|i| row_cdf(&matrix, i)).collect();
        BernoulliTraffic {
            n,
            matrix,
            per_input,
            rng: StdRng::seed_from_u64(seed),
            label: label.into(),
        }
    }

    /// The paper's uniform scenario: load `rho`, destinations uniform.
    pub fn uniform(n: usize, rho: f64, seed: u64) -> Self {
        Self::from_matrix(
            TrafficMatrix::uniform(n, rho),
            seed,
            format!("bernoulli-uniform(rho={rho})"),
        )
    }

    /// The paper's quasi-diagonal scenario: load `rho`, destination `i` with
    /// probability 1/2 from input `i`, all others with probability
    /// `1/(2(N−1))`.
    pub fn diagonal(n: usize, rho: f64, seed: u64) -> Self {
        Self::from_matrix(
            TrafficMatrix::diagonal(n, rho),
            seed,
            format!("bernoulli-diagonal(rho={rho})"),
        )
    }

    /// Hot-spot traffic (an extension scenario): a fraction of each input's
    /// load targets one output.
    pub fn hotspot(n: usize, rho: f64, hot_fraction: f64, seed: u64) -> Self {
        Self::from_matrix(
            TrafficMatrix::hotspot(n, rho, hot_fraction),
            seed,
            format!("bernoulli-hotspot(rho={rho},hot={hot_fraction})"),
        )
    }
}

impl TrafficGenerator for BernoulliTraffic {
    fn n(&self) -> usize {
        self.n
    }

    fn arrivals_into(&mut self, slot: u64, out: &mut Vec<Packet>) {
        for input in 0..self.n {
            let (load, cdf) = &self.per_input[input];
            if *load > 0.0 && self.rng.gen::<f64>() < *load {
                let u = self.rng.gen::<f64>();
                let output = sample_from_cdf(cdf, u);
                out.push(Packet::new(input, output, 0, slot));
            }
        }
    }

    fn rate_matrix(&self) -> TrafficMatrix {
        self.matrix.clone()
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_matrix(gen: &mut BernoulliTraffic, slots: u64) -> TrafficMatrix {
        let n = gen.n();
        let mut counts = vec![0u64; n * n];
        for slot in 0..slots {
            for p in gen.arrivals(slot) {
                counts[p.input() * n + p.output()] += 1;
            }
        }
        let rates: Vec<f64> = counts.iter().map(|&c| c as f64 / slots as f64).collect();
        TrafficMatrix::from_rates(n, rates).unwrap()
    }

    #[test]
    fn at_most_one_packet_per_input_per_slot() {
        let mut gen = BernoulliTraffic::uniform(8, 1.0, 3);
        for slot in 0..100 {
            let arrivals = gen.arrivals(slot);
            let mut seen = [false; 8];
            for p in &arrivals {
                assert!(
                    !seen[p.input()],
                    "two packets at input {} in one slot",
                    p.input()
                );
                seen[p.input()] = true;
                assert_eq!(p.arrival_slot, slot);
            }
        }
    }

    #[test]
    fn uniform_empirical_rates_match_the_matrix() {
        let n = 8;
        let rho = 0.72;
        let mut gen = BernoulliTraffic::uniform(n, rho, 11);
        let emp = empirical_matrix(&mut gen, 40_000);
        for i in 0..n {
            assert!(
                (emp.input_load(i) - rho).abs() < 0.03,
                "input {i} load {} should be ≈ {rho}",
                emp.input_load(i)
            );
            for j in 0..n {
                assert!((emp.rate(i, j) - rho / n as f64).abs() < 0.02);
            }
        }
    }

    #[test]
    fn diagonal_empirical_rates_are_concentrated_on_the_diagonal() {
        let n = 16;
        let rho = 0.8;
        let mut gen = BernoulliTraffic::diagonal(n, rho, 5);
        let emp = empirical_matrix(&mut gen, 40_000);
        for i in 0..n {
            assert!(
                (emp.rate(i, i) - rho * 0.5).abs() < 0.03,
                "diagonal rate {} should be ≈ {}",
                emp.rate(i, i),
                rho * 0.5
            );
        }
    }

    #[test]
    fn zero_load_generates_nothing() {
        let mut gen = BernoulliTraffic::uniform(4, 0.0, 1);
        for slot in 0..1000 {
            assert!(gen.arrivals(slot).is_empty());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = BernoulliTraffic::diagonal(8, 0.5, 42);
        let mut b = BernoulliTraffic::diagonal(8, 0.5, 42);
        for slot in 0..200 {
            let pa: Vec<(usize, usize)> = a
                .arrivals(slot)
                .iter()
                .map(|p| (p.input(), p.output()))
                .collect();
            let pb: Vec<(usize, usize)> = b
                .arrivals(slot)
                .iter()
                .map(|p| (p.input(), p.output()))
                .collect();
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn label_mentions_the_pattern() {
        assert!(BernoulliTraffic::uniform(8, 0.5, 0)
            .label()
            .contains("uniform"));
        assert!(BernoulliTraffic::diagonal(8, 0.5, 0)
            .label()
            .contains("diagonal"));
        assert!(BernoulliTraffic::hotspot(8, 0.5, 0.3, 0)
            .label()
            .contains("hotspot"));
    }
}
