//! Streaming trace replay: a [`TrafficGenerator`] fed from a trace file.
//!
//! [`TraceStream`] is the generator behind `TrafficSpec::Trace`.  Unlike the
//! in-memory [`super::trace::TraceTraffic`] (which tests use for hand-built
//! arrival lists), a `TraceStream` never holds the trace in memory: it keeps
//! one [`TraceReader`] open and pulls records as the engine advances through
//! slots, so replaying a multi-gigabyte capture costs the same memory as a
//! ten-packet one.
//!
//! Two replay knobs reshape the recorded workload:
//!
//! * `repeat` — tile the trace `repeat` times back to back, each copy offset
//!   by the recorded slot span (long steady-state runs from a short capture).
//! * `scale` — dilate time by mapping every slot to `floor(slot / scale)`.
//!   `scale < 1` stretches the trace out (lower offered load); `scale > 1`
//!   compresses it (higher load, up to inadmissible overload).  Compression
//!   that would place two packets on the same input in the same slot is a
//!   typed error, not a silent drop: an input line can physically carry at
//!   most one packet per slot.
//!
//! Opening a stream runs a full **validation pass** over the effective
//! (repeated + scaled) stream — still O(1) memory — so every malformed-file
//! and collision case surfaces as a [`SpecError`] *before* the simulation
//! starts; the replay loop itself then runs on a proven-clean file and never
//! errors mid-run.

use super::trace_io::{TraceFormat, TraceReader, TraceRecord, MAX_REPEAT};
use super::TrafficGenerator;
use crate::spec::SpecError;
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::Packet;
use std::path::Path;

/// Replays a recorded trace file as switch arrivals, streaming from disk.
#[derive(Debug)]
pub struct TraceStream {
    n: usize,
    reader: TraceReader,
    repeat: u32,
    scale: f64,
    /// Source-timebase span of one copy (offset between consecutive copies).
    span: u64,
    /// Copy currently being streamed (`0..repeat`).
    copy: u32,
    /// Next transformed record, not yet consumed by `arrivals_into`.
    pending: Option<TraceRecord>,
    exhausted: bool,
    entries_total: u64,
    label: String,
    matrix: TrafficMatrix,
}

/// `floor(abs_slot / scale)`, computed *exactly* for every `u64` slot.
///
/// The obvious `(abs_slot as f64 / scale).floor() as u64` silently corrupts
/// slots ≥ 2^53 (the `as f64` conversion rounds away low bits before the
/// division even happens) and can land on the wrong side of an integer
/// boundary even for small slots when the rounded quotient crosses it.
/// Instead, decompose the (finite, positive — validated in [`TraceStream::
/// open`]) scale into its exact dyadic form `m · 2^e` with `m` odd, so
///
/// ```text
/// floor(slot / (m · 2^e)) = floor((slot >> e) / m)            e ≥ 0
/// floor(slot / (m · 2^e)) = floor(slot · 2^(−e) / m)          e < 0
/// ```
///
/// using nested floor-division for `e ≥ 0` and a shift-and-subtract long
/// division (doubling the remainder `−e` times) for `e < 0`.  Results past
/// `u64::MAX` saturate, matching the old `as u64` cast's behavior.
fn scaled_slot(abs_slot: u64, scale: f64) -> u64 {
    if scale == 1.0 {
        return abs_slot; // identity must be bit-exact, not a float round-trip
    }
    // Exact dyadic decomposition of the f64: scale = m · 2^e, m odd.
    let bits = scale.to_bits();
    let exp_field = (bits >> 52) & 0x7ff;
    let frac = bits & ((1u64 << 52) - 1);
    let (mut m, mut e) = if exp_field == 0 {
        (frac, -1074i64) // subnormal: no implicit leading bit
    } else {
        (frac | (1u64 << 52), exp_field as i64 - 1075)
    };
    debug_assert!(m != 0, "open() rejects scale <= 0");
    let tz = i64::from(m.trailing_zeros());
    m >>= tz;
    e += tz;

    if e >= 0 {
        // floor(slot / (m << e)) via nested floor-division; e ≥ 64 means the
        // divisor exceeds any u64 slot.
        if e >= 64 {
            return 0;
        }
        (abs_slot >> e) / m
    } else {
        // floor(slot << k / m) with k = −e, without ever materializing the
        // (up to 1138-bit) numerator: standard long division, doubling the
        // running remainder once per shifted-in zero bit.
        let mut q = abs_slot / m;
        let mut r = abs_slot % m;
        for _ in 0..-e {
            r <<= 1; // r < m ≤ 2^53, cannot overflow
            let carry = u64::from(r >= m);
            r -= m & carry.wrapping_neg();
            q = match q.checked_mul(2).and_then(|d| d.checked_add(carry)) {
                Some(doubled) => doubled,
                None => return u64::MAX,
            };
        }
        q
    }
}

impl TraceStream {
    /// Open a trace for replay into an `n`-port switch and validate the
    /// entire effective stream (see the module docs).
    ///
    /// `format == None` selects by file extension.  `repeat` must be in
    /// `1..=MAX_REPEAT` and `scale` finite and positive.
    pub fn open(
        path: impl AsRef<Path>,
        format: Option<TraceFormat>,
        n: usize,
        repeat: u32,
        scale: f64,
    ) -> Result<Self, SpecError> {
        let path = path.as_ref();
        if repeat == 0 || repeat > MAX_REPEAT {
            return Err(SpecError::new(format!(
                "trace repeat must be in 1..={MAX_REPEAT}, got {repeat}"
            )));
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(SpecError::new(format!(
                "trace scale must be finite and positive, got {scale}"
            )));
        }
        let mut reader = TraceReader::open(path, format)?;
        if let Some(meta_n) = reader.meta().n {
            if meta_n != n {
                return Err(SpecError::new(format!(
                    "trace was recorded for n = {meta_n} ports but the scenario has n = {n}"
                ))
                .context(format!("trace file {}", path.display())));
            }
        }
        if let Some(matrix) = &reader.meta().matrix {
            if matrix.n() != n {
                return Err(SpecError::new(format!(
                    "trace matrix is {0}x{0} but the scenario has n = {n}",
                    matrix.n()
                ))
                .context(format!("trace file {}", path.display())));
            }
        }

        // Validation pass: stream one copy, checking ports and gathering the
        // span and (if the header lacks a matrix) empirical rates; then walk
        // the remaining copies' collision structure without re-reading.
        let path_ctx = || format!("trace file {}", path.display());
        let mut count_per_copy = 0u64;
        let mut last_source_slot: Option<u64> = None;
        let mut counts = vec![0u64; n * n];
        // Per-input slot of the last emitted (scaled) packet, for collision
        // detection under compression — O(n) state, not O(trace).
        let mut last_scaled: Vec<Option<u64>> = vec![None; n];
        while let Some(rec) = reader.next_record()? {
            if rec.input >= n || rec.output >= n {
                return Err(SpecError::new(format!(
                    "port out of range in record {}: input {} output {} but n = {n}",
                    count_per_copy + 1,
                    rec.input,
                    rec.output
                ))
                .context(path_ctx()));
            }
            let slot = scaled_slot(rec.slot, scale);
            if last_scaled[rec.input] == Some(slot) {
                return Err(SpecError::new(format!(
                    "two packets at input {} in slot {slot}{}",
                    rec.input,
                    if scale > 1.0 {
                        format!(" (scale {scale} compresses the trace past line rate)")
                    } else {
                        String::new()
                    }
                ))
                .context(path_ctx()));
            }
            last_scaled[rec.input] = Some(slot);
            counts[rec.input * n + rec.output] += 1;
            last_source_slot = Some(rec.slot);
            count_per_copy += 1;
        }
        let declared = reader.meta().slots;
        let data_span = last_source_slot.map_or(0, |s| s + 1);
        if declared > 0 && declared < data_span {
            return Err(SpecError::new(format!(
                "header declares {declared} slots but the trace contains slot {}",
                data_span - 1
            ))
            .context(path_ctx()));
        }
        let span = declared.max(data_span).max(1);
        // The header span is untrusted; proving span*repeat fits u64 here
        // makes every later `rec.slot + copy * span` offset overflow-free
        // (rec.slot < span, copy < repeat ⇒ the sum stays below span*repeat).
        let total_span = span.checked_mul(u64::from(repeat)).ok_or_else(|| {
            SpecError::new(format!(
                "slot span {span} × repeat {repeat} overflows the slot range"
            ))
            .context(path_ctx())
        })?;

        // Later copies replay the same source slots offset by k*span; under
        // compression a copy's first packets can collide with the previous
        // copy's last, and each copy's floor() phase differs — so every
        // remaining copy is walked in full (one rewind + re-decode per copy;
        // O(repeat × trace) I/O, paid only for this explicitly overloading
        // scale > 1 + repeat > 1 configuration).
        if repeat > 1 && scale > 1.0 {
            for copy in 1..u64::from(repeat) {
                reader.rewind()?;
                while let Some(rec) = reader.next_record()? {
                    let slot = scaled_slot(rec.slot + copy * span, scale);
                    if last_scaled[rec.input] == Some(slot) {
                        return Err(SpecError::new(format!(
                            "two packets at input {} in slot {slot} (scale {scale} \
                             compresses copy {} into copy {})",
                            rec.input,
                            copy + 1,
                            copy
                        ))
                        .context(path_ctx()));
                    }
                    last_scaled[rec.input] = Some(slot);
                }
            }
        }

        let entries_total = count_per_copy * u64::from(repeat);
        let effective_horizon = scaled_slot(total_span, scale).max(1);
        let matrix = match &reader.meta().matrix {
            // The recorded analytic matrix, rescaled by the time compression
            // (repeat leaves long-run rates unchanged).
            Some(m) => m.scaled(scale),
            // Hand-written traces: empirical rates over the effective span.
            None => {
                let mut m = TrafficMatrix::zero(n);
                let horizon = effective_horizon as f64;
                for i in 0..n {
                    for j in 0..n {
                        let c = counts[i * n + j] * u64::from(repeat);
                        if c > 0 {
                            m.set(i, j, c as f64 / horizon);
                        }
                    }
                }
                m
            }
        };
        let base_label = reader
            .meta()
            .label
            .clone()
            .unwrap_or_else(|| format!("trace({entries_total} packets)"));
        let label = if repeat == 1 && scale == 1.0 {
            base_label
        } else {
            format!("{base_label}·r{repeat}·s{scale}")
        };

        reader.rewind()?;
        Ok(TraceStream {
            n,
            reader,
            repeat,
            scale,
            span,
            copy: 0,
            pending: None,
            exhausted: false,
            entries_total,
            label,
            matrix,
        })
    }

    /// Total packets the stream will emit (per-copy count × `repeat`).
    pub fn entries(&self) -> u64 {
        self.entries_total
    }

    /// Source-timebase slot span of one copy of the trace.
    pub fn span(&self) -> u64 {
        self.span
    }

    /// Pull the next transformed record, rolling over into the next copy at
    /// end of file.  The open-time validation pass proved the stream clean,
    /// so errors here mean the file changed under us — surfaced as a panic
    /// with the underlying message (the replay loop has no error channel).
    fn next_transformed(&mut self) -> Option<TraceRecord> {
        if self.exhausted {
            return None;
        }
        loop {
            match self.reader.next_record() {
                Ok(Some(rec)) => {
                    let abs = rec.slot + u64::from(self.copy) * self.span;
                    return Some(TraceRecord {
                        slot: scaled_slot(abs, self.scale),
                        ..rec
                    });
                }
                Ok(None) => {
                    if self.copy + 1 < self.repeat {
                        self.copy += 1;
                        if let Err(e) = self.reader.rewind() {
                            panic!("trace replay failed mid-run (file changed?): {e}");
                        }
                    } else {
                        self.exhausted = true;
                        return None;
                    }
                }
                Err(e) => panic!("trace replay failed mid-run (file changed?): {e}"),
            }
        }
    }
}

impl TrafficGenerator for TraceStream {
    fn n(&self) -> usize {
        self.n
    }

    fn arrivals_into(&mut self, slot: u64, out: &mut Vec<Packet>) {
        loop {
            if self.pending.is_none() {
                self.pending = self.next_transformed();
            }
            match self.pending {
                Some(rec) if rec.slot <= slot => {
                    self.pending = None;
                    if rec.slot == slot {
                        out.push(Packet::new(rec.input, rec.output, 0, slot).with_flow(rec.flow));
                    }
                    // rec.slot < slot: the engine's clock has moved past this
                    // record (it skipped slots); drop it rather than deliver
                    // it late, mirroring `TraceTraffic`.
                }
                _ => return,
            }
        }
    }

    fn rate_matrix(&self) -> TrafficMatrix {
        self.matrix.clone()
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::super::trace::{TraceEntry, TraceTraffic};
    use super::super::trace_io::{TraceMeta, TraceWriter};
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "sprinklers-trace-stream-{}-{name}",
            std::process::id()
        ))
    }

    fn write_trace(path: &Path, format: TraceFormat, meta: &TraceMeta, recs: &[TraceRecord]) {
        let mut w = TraceWriter::create(path, format, meta).unwrap();
        for r in recs {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
    }

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                slot: 0,
                input: 0,
                output: 1,
                flow: 0,
            },
            TraceRecord {
                slot: 2,
                input: 1,
                output: 0,
                flow: 3,
            },
            TraceRecord {
                slot: 2,
                input: 3,
                output: 2,
                flow: 0,
            },
            TraceRecord {
                slot: 5,
                input: 0,
                output: 3,
                flow: 0,
            },
        ]
    }

    #[test]
    fn identity_replay_matches_the_in_memory_generator() {
        let path = tmp("identity.sprt");
        let meta = TraceMeta {
            n: Some(4),
            slots: 6,
            ..TraceMeta::default()
        };
        write_trace(&path, TraceFormat::Sprt, &meta, &sample());
        let mut stream = TraceStream::open(&path, None, 4, 1, 1.0).unwrap();
        let mut memory = TraceTraffic::new(
            4,
            sample()
                .iter()
                .map(|r| TraceEntry {
                    slot: r.slot,
                    input: r.input,
                    output: r.output,
                })
                .collect(),
        );
        for slot in 0..8u64 {
            let a = stream.arrivals(slot);
            let b = memory.arrivals(slot);
            assert_eq!(a.len(), b.len(), "slot {slot}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(
                    (x.input(), x.output()),
                    (y.input(), y.output()),
                    "slot {slot}"
                );
            }
        }
        assert_eq!(stream.entries(), 4);
        assert_eq!(stream.span(), 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repeat_tiles_the_trace_at_the_span_offset() {
        let path = tmp("repeat.csv");
        let meta = TraceMeta {
            n: Some(4),
            slots: 6,
            ..TraceMeta::default()
        };
        write_trace(&path, TraceFormat::Csv, &meta, &sample());
        let mut stream = TraceStream::open(&path, None, 4, 3, 1.0).unwrap();
        assert_eq!(stream.entries(), 12);
        let mut got = Vec::new();
        for slot in 0..20u64 {
            for p in stream.arrivals(slot) {
                got.push((slot, p.input(), p.output(), p.flow));
            }
        }
        assert_eq!(got.len(), 12);
        // Second copy starts exactly one span (6 slots) after the first.
        assert_eq!(got[4], (6, 0, 1, 0));
        assert_eq!(got[5], (8, 1, 0, 3));
        // Third copy likewise.
        assert_eq!(got[8], (12, 0, 1, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scale_below_one_stretches_time() {
        let path = tmp("stretch.csv");
        let meta = TraceMeta {
            n: Some(4),
            slots: 6,
            ..TraceMeta::default()
        };
        write_trace(&path, TraceFormat::Csv, &meta, &sample());
        let mut stream = TraceStream::open(&path, None, 4, 1, 0.5).unwrap();
        let mut got = Vec::new();
        for slot in 0..16u64 {
            for p in stream.arrivals(slot) {
                got.push((slot, p.input()));
            }
        }
        // Slots 0, 2, 2, 5 dilate to 0, 4, 4, 10.
        assert_eq!(got, vec![(0, 0), (4, 1), (4, 3), (10, 0)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scale_above_one_compresses_until_line_rate() {
        // Entries 4 slots apart compress cleanly at scale 2.0 …
        let path = tmp("compress.csv");
        let meta = TraceMeta {
            n: Some(4),
            slots: 16,
            ..TraceMeta::default()
        };
        let recs: Vec<TraceRecord> = (0..4)
            .map(|k| TraceRecord {
                slot: 4 * k,
                input: 0,
                output: 1,
                flow: 0,
            })
            .collect();
        write_trace(&path, TraceFormat::Csv, &meta, &recs);
        let mut stream = TraceStream::open(&path, None, 4, 1, 2.0).unwrap();
        let mut slots = Vec::new();
        for slot in 0..16u64 {
            for _ in stream.arrivals(slot) {
                slots.push(slot);
            }
        }
        assert_eq!(slots, vec![0, 2, 4, 6]);
        // … but a back-to-back burst cannot be compressed past line rate.
        let burst: Vec<TraceRecord> = (0..4)
            .map(|k| TraceRecord {
                slot: k,
                input: 0,
                output: 1,
                flow: 0,
            })
            .collect();
        write_trace(&path, TraceFormat::Csv, &meta, &burst);
        let err = TraceStream::open(&path, None, 4, 1, 2.0)
            .unwrap_err()
            .to_string();
        assert!(err.contains("two packets at input 0"), "{err}");
        assert!(err.contains("scale"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scaled_slot_is_exact_past_f64_precision() {
        // The old float path (`(slot as f64 / scale).floor() as u64`) rounds
        // the slot to 53 bits before dividing; these all came out wrong.
        let big = 1u64 << 53;
        assert_eq!(scaled_slot(big + 1, 1.0), big + 1);
        assert_eq!(scaled_slot(big + 1, 0.5), 2 * (big + 1)); // float: 2*big
        assert_eq!(scaled_slot(big + 3, 2.0), big / 2 + 1); // float: big/2 + 2
        assert_eq!(scaled_slot(u64::MAX, 2.0), u64::MAX / 2);
        assert_eq!(scaled_slot(u64::MAX - 1, 1.0), u64::MAX - 1);
        // Results past u64::MAX saturate (the old cast's behavior).
        assert_eq!(scaled_slot(u64::MAX, 0.5), u64::MAX);
        assert_eq!(scaled_slot(1 << 63, 0.25), u64::MAX);
        // A divisor larger than any representable slot floors to zero.
        assert_eq!(scaled_slot(u64::MAX, 1e300), 0);
        assert_eq!(scaled_slot(0, 0.3), 0);
    }

    #[test]
    fn scaled_slot_matches_exact_rational_division() {
        // Cross-check against an independent u128 evaluation of
        // floor(slot * 2^k / m) for non-dyadic scales (m odd, scale = m*2^-k;
        // slot << k fits u128 for these exponents).
        for scale in [0.3, 0.7, 1.5, 3.0, 0.9999999999999999, 1.0000000000000002] {
            let bits = f64::to_bits(scale);
            let mut m = (bits & ((1u64 << 52) - 1)) | (1 << 52);
            let mut e = ((bits >> 52) & 0x7ff) as i64 - 1075;
            let tz = i64::from(m.trailing_zeros());
            m >>= tz;
            e += tz;
            for slot in [0, 1, 7, (1 << 53) - 1, 1 << 53, (1 << 53) + 1, u64::MAX] {
                let expect = if e >= 0 {
                    (u128::from(slot) >> e) / u128::from(m)
                } else {
                    (u128::from(slot) << -e) / u128::from(m)
                };
                assert_eq!(
                    u128::from(scaled_slot(slot, scale)),
                    expect.min(u128::from(u64::MAX)),
                    "slot {slot} scale {scale}"
                );
            }
        }
    }

    #[test]
    fn huge_slots_survive_scaling_without_false_collisions() {
        // Two adjacent slots past 2^53 used to collapse onto the same f64,
        // so compressing *or even stretching* reported a phantom collision.
        let path = tmp("hugeslots.csv");
        let a = 1u64 << 53;
        std::fs::write(&path, format!("{a},0,1\n{},0,2\n", a + 1)).unwrap();
        let mut stream = TraceStream::open(&path, None, 4, 1, 0.5).unwrap();
        let first = stream.next_transformed().unwrap();
        let second = stream.next_transformed().unwrap();
        assert_eq!(first.slot, 2 * a);
        assert_eq!(second.slot, 2 * a + 2);
        assert!(stream.next_transformed().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_same_slot_same_input_is_a_typed_error() {
        let path = tmp("dup.csv");
        std::fs::write(&path, "1,0,1\n1,0,2\n").unwrap();
        let err = TraceStream::open(&path, None, 4, 1, 1.0)
            .unwrap_err()
            .to_string();
        assert!(err.contains("two packets at input 0"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn port_count_mismatch_is_a_typed_error() {
        let path = tmp("nmismatch.sprt");
        let meta = TraceMeta {
            n: Some(8),
            ..TraceMeta::default()
        };
        write_trace(&path, TraceFormat::Sprt, &meta, &[]);
        let err = TraceStream::open(&path, None, 16, 1, 1.0)
            .unwrap_err()
            .to_string();
        assert!(err.contains("n = 8"), "{err}");
        assert!(err.contains("n = 16"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_port_without_metadata_is_a_typed_error() {
        let path = tmp("norange.csv");
        std::fs::write(&path, "0,0,1\n1,9,0\n").unwrap();
        let err = TraceStream::open(&path, None, 4, 1, 1.0)
            .unwrap_err()
            .to_string();
        assert!(err.contains("out of range"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn declared_span_smaller_than_data_is_a_typed_error() {
        let path = tmp("span.csv");
        std::fs::write(&path, "# n = 4\n# slots = 3\n0,0,1\n9,1,0\n").unwrap();
        let err = TraceStream::open(&path, None, 4, 1, 1.0)
            .unwrap_err()
            .to_string();
        assert!(err.contains("declares 3 slots"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overflowing_span_times_repeat_is_a_typed_error() {
        let path = tmp("overflow.csv");
        std::fs::write(&path, format!("# n = 4\n# slots = {}\n0,0,1\n", u64::MAX)).unwrap();
        let err = TraceStream::open(&path, None, 4, 2, 1.0)
            .unwrap_err()
            .to_string();
        assert!(err.contains("overflows"), "{err}");
        // A single copy of the same huge declared span is representable.
        assert!(TraceStream::open(&path, None, 4, 1, 1.0).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_repeat_and_scale_are_rejected() {
        let path = tmp("knobs.csv");
        std::fs::write(&path, "0,0,1\n").unwrap();
        assert!(TraceStream::open(&path, None, 4, 0, 1.0).is_err());
        assert!(TraceStream::open(&path, None, 4, MAX_REPEAT + 1, 1.0).is_err());
        assert!(TraceStream::open(&path, None, 4, 1, 0.0).is_err());
        assert!(TraceStream::open(&path, None, 4, 1, -1.0).is_err());
        assert!(TraceStream::open(&path, None, 4, 1, f64::INFINITY).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_matrix_is_rescaled_and_empirical_matrix_is_derived() {
        // Header matrix present: replay reports it, scaled by the knob.
        let path = tmp("matrix.sprt");
        let meta = TraceMeta {
            n: Some(4),
            slots: 10,
            matrix: Some(TrafficMatrix::uniform(4, 0.8)),
            ..TraceMeta::default()
        };
        write_trace(&path, TraceFormat::Sprt, &meta, &sample());
        let stream = TraceStream::open(&path, None, 4, 1, 0.5).unwrap();
        let m = stream.rate_matrix();
        assert!((m.rate(0, 1) - 0.8 / 4.0 * 0.5).abs() < 1e-12);
        std::fs::remove_file(&path).ok();

        // No metadata at all: rates are empirical counts over the span.
        let path = tmp("empirical.csv");
        std::fs::write(&path, "0,1,2\n1,1,2\n2,1,2\n3,1,2\n").unwrap();
        let stream = TraceStream::open(&path, None, 4, 1, 1.0).unwrap();
        assert!((stream.rate_matrix().rate(1, 2) - 1.0).abs() < 1e-12);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn labels_carry_provenance_and_replay_knobs() {
        let path = tmp("label.csv");
        let meta = TraceMeta {
            n: Some(4),
            slots: 6,
            label: Some("bursty(peak=1)".into()),
            ..TraceMeta::default()
        };
        write_trace(&path, TraceFormat::Csv, &meta, &sample());
        let plain = TraceStream::open(&path, None, 4, 1, 1.0).unwrap();
        assert_eq!(plain.label(), "bursty(peak=1)");
        let knobbed = TraceStream::open(&path, None, 4, 2, 0.5).unwrap();
        assert_eq!(knobbed.label(), "bursty(peak=1)·r2·s0.5");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_is_valid_and_emits_nothing() {
        let path = tmp("empty.sprt");
        let meta = TraceMeta {
            n: Some(4),
            slots: 100,
            ..TraceMeta::default()
        };
        write_trace(&path, TraceFormat::Sprt, &meta, &[]);
        let mut stream = TraceStream::open(&path, None, 4, 2, 1.0).unwrap();
        assert_eq!(stream.entries(), 0);
        for slot in 0..10 {
            assert!(stream.arrivals(slot).is_empty());
        }
        std::fs::remove_file(&path).ok();
    }
}
