//! Bursty on/off traffic sources.
//!
//! Each input alternates between an ON state (a packet arrives every slot
//! with probability `peak`) and an OFF state (no arrivals), with geometric
//! sojourn times.  This models the burstiness the paper's intermediate-stage
//! delay analysis (§5) worries about and is used by the extended evaluation
//! to check that the delay of the ordered schemes stays bounded under bursts.

use super::{row_cdf, sample_from_cdf, TrafficGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::Packet;

/// Markov-modulated on/off traffic.
pub struct BurstyTraffic {
    n: usize,
    matrix: TrafficMatrix,
    per_input: Vec<(f64, Vec<f64>)>,
    /// Probability of leaving the OFF state each slot.
    p_on: f64,
    /// Probability of leaving the ON state each slot.
    p_off: f64,
    /// Arrival probability while ON.
    peak: f64,
    state_on: Vec<bool>,
    rng: StdRng,
}

impl BurstyTraffic {
    /// Create bursty traffic with the given long-run destination matrix and
    /// mean burst length (slots).  The long-run load of input `i` equals the
    /// matrix's row sum; the peak (in-burst) arrival probability is `peak`.
    ///
    /// # Panics
    ///
    /// Panics if any input load exceeds `peak`, which would make the long-run
    /// rate unattainable, or if parameters are out of range.
    pub fn new(matrix: TrafficMatrix, peak: f64, mean_burst: f64, seed: u64) -> Self {
        assert!(peak > 0.0 && peak <= 1.0);
        assert!(mean_burst >= 1.0);
        let n = matrix.n();
        let per_input: Vec<(f64, Vec<f64>)> = (0..n).map(|i| row_cdf(&matrix, i)).collect();
        // Duty cycle needed at each input: load / peak.  Use the largest so a
        // single on/off chain serves every input (keeps the model simple);
        // inputs with lower load thin their in-burst arrivals accordingly.
        for (load, _) in &per_input {
            assert!(
                *load <= peak + 1e-9,
                "input load {load} exceeds the peak rate {peak}"
            );
        }
        let p_off = 1.0 / mean_burst;
        BurstyTraffic {
            n,
            matrix,
            per_input,
            p_on: p_off, // symmetric by default; duty cycle handled by thinning
            p_off,
            peak,
            state_on: vec![false; n],
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform-destination bursty traffic at long-run load `rho`.
    pub fn uniform(n: usize, rho: f64, peak: f64, mean_burst: f64, seed: u64) -> Self {
        Self::new(TrafficMatrix::uniform(n, rho), peak, mean_burst, seed)
    }
}

impl TrafficGenerator for BurstyTraffic {
    fn n(&self) -> usize {
        self.n
    }

    fn arrivals_into(&mut self, slot: u64, out: &mut Vec<Packet>) {
        for input in 0..self.n {
            // Evolve the on/off chain.
            if self.state_on[input] {
                if self.rng.gen::<f64>() < self.p_off {
                    self.state_on[input] = false;
                }
            } else if self.rng.gen::<f64>() < self.p_on {
                self.state_on[input] = true;
            }
            if !self.state_on[input] {
                continue;
            }
            let (load, cdf) = &self.per_input[input];
            // With a symmetric chain the duty cycle is 1/2, so thin in-burst
            // arrivals to 2·load (capped at the peak) to hit the long-run load.
            let in_burst = (2.0 * load).min(self.peak);
            if self.rng.gen::<f64>() < in_burst {
                let u = self.rng.gen::<f64>();
                out.push(Packet::new(input, sample_from_cdf(cdf, u), 0, slot));
            }
        }
    }

    fn rate_matrix(&self) -> TrafficMatrix {
        self.matrix.clone()
    }

    fn label(&self) -> String {
        format!("bursty(peak={},burst≈{:.0})", self.peak, 1.0 / self.p_off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_run_rate_is_close_to_the_matrix_load() {
        let n = 8;
        let rho = 0.4;
        let mut gen = BurstyTraffic::uniform(n, rho, 1.0, 50.0, 7);
        let slots = 200_000u64;
        let mut count = 0u64;
        for slot in 0..slots {
            count += gen.arrivals(slot).len() as u64;
        }
        let measured = count as f64 / (slots as f64 * n as f64);
        assert!(
            (measured - rho).abs() < 0.05,
            "long-run rate {measured} should be ≈ {rho}"
        );
    }

    #[test]
    fn arrivals_are_bursty() {
        // Count slot-level arrival autocorrelation: in bursty traffic an
        // arrival is much more likely right after another arrival at the same
        // input than the unconditional rate.
        let mut gen = BurstyTraffic::uniform(4, 0.3, 1.0, 100.0, 3);
        let slots = 100_000u64;
        let mut prev = false;
        let mut after_arrival = 0u64;
        let mut after_arrival_hits = 0u64;
        let mut total = 0u64;
        let mut hits = 0u64;
        for slot in 0..slots {
            let has = gen.arrivals(slot).iter().any(|p| p.input() == 0);
            total += 1;
            if has {
                hits += 1;
            }
            if prev {
                after_arrival += 1;
                if has {
                    after_arrival_hits += 1;
                }
            }
            prev = has;
        }
        let base_rate = hits as f64 / total as f64;
        let cond_rate = after_arrival_hits as f64 / after_arrival.max(1) as f64;
        assert!(
            cond_rate > base_rate * 1.5,
            "conditional rate {cond_rate} should exceed base rate {base_rate} for bursty traffic"
        );
    }

    #[test]
    fn at_most_one_packet_per_input_per_slot() {
        let mut gen = BurstyTraffic::uniform(8, 0.5, 1.0, 20.0, 1);
        for slot in 0..1000 {
            let arrivals = gen.arrivals(slot);
            let mut seen = [false; 8];
            for p in arrivals {
                assert!(!seen[p.input()]);
                seen[p.input()] = true;
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_load_above_peak() {
        let _ = BurstyTraffic::uniform(4, 0.9, 0.5, 10.0, 0);
    }
}
