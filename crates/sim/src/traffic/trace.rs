//! Deterministic trace replay.
//!
//! A `TraceTraffic` generator replays an explicit list of `(slot, input,
//! output)` arrivals.  It is used by tests that need full control over the
//! arrival pattern (adversarial patterns, exact corner cases) and can also
//! replay externally captured traces.

use super::TrafficGenerator;
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::Packet;

/// One arrival event in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Slot at which the packet arrives.
    pub slot: u64,
    /// Input port.
    pub input: usize,
    /// Output port.
    pub output: usize,
}

/// Replays an explicit arrival trace.
pub struct TraceTraffic {
    n: usize,
    /// Entries sorted by slot; `cursor` indexes the next entry to emit.
    entries: Vec<TraceEntry>,
    cursor: usize,
    /// Total slots spanned (used to derive the empirical rate matrix).
    horizon: u64,
}

impl TraceTraffic {
    /// Build a trace generator.  Entries are sorted by slot internally.
    ///
    /// # Panics
    ///
    /// Panics if two entries put two packets on the same input in the same
    /// slot, or if a port index is out of range.
    pub fn new(n: usize, mut entries: Vec<TraceEntry>) -> Self {
        entries.sort_by_key(|e| e.slot);
        let mut last: Option<(u64, usize)> = None;
        for e in &entries {
            assert!(
                e.input < n && e.output < n,
                "port out of range in trace entry {e:?}"
            );
            if let Some((slot, input)) = last {
                assert!(
                    !(slot == e.slot && input == e.input),
                    "two packets at input {input} in slot {slot}"
                );
            }
            last = Some((e.slot, e.input));
        }
        let horizon = entries.last().map(|e| e.slot + 1).unwrap_or(1);
        TraceTraffic {
            n,
            entries,
            cursor: 0,
            horizon,
        }
    }

    /// Convenience: a trace sending `count` back-to-back packets from `input`
    /// to `output` starting at slot `start`.
    pub fn burst(n: usize, input: usize, output: usize, start: u64, count: u64) -> Self {
        let entries = (0..count)
            .map(|k| TraceEntry {
                slot: start + k,
                input,
                output,
            })
            .collect();
        Self::new(n, entries)
    }

    /// Number of entries remaining to be emitted.
    pub fn remaining(&self) -> usize {
        self.entries.len() - self.cursor
    }
}

impl TrafficGenerator for TraceTraffic {
    fn n(&self) -> usize {
        self.n
    }

    fn arrivals_into(&mut self, slot: u64, out: &mut Vec<Packet>) {
        while self.cursor < self.entries.len() && self.entries[self.cursor].slot <= slot {
            let e = self.entries[self.cursor];
            self.cursor += 1;
            if e.slot < slot {
                // The engine skipped some slots; drop stale entries rather
                // than delivering them late (keeps arrival slots truthful).
                continue;
            }
            out.push(Packet::new(e.input, e.output, 0, slot));
        }
    }

    fn rate_matrix(&self) -> TrafficMatrix {
        let mut m = TrafficMatrix::zero(self.n);
        for e in &self.entries {
            let r = m.rate(e.input, e.output) + 1.0 / self.horizon as f64;
            m.set(e.input, e.output, r);
        }
        m
    }

    fn label(&self) -> String {
        format!("trace({} packets)", self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_entries_at_their_slots() {
        let mut t = TraceTraffic::new(
            4,
            vec![
                TraceEntry {
                    slot: 5,
                    input: 1,
                    output: 2,
                },
                TraceEntry {
                    slot: 2,
                    input: 0,
                    output: 3,
                },
                TraceEntry {
                    slot: 5,
                    input: 3,
                    output: 0,
                },
            ],
        );
        assert!(t.arrivals(0).is_empty());
        assert!(t.arrivals(1).is_empty());
        let a = t.arrivals(2);
        assert_eq!(a.len(), 1);
        assert_eq!((a[0].input(), a[0].output()), (0, 3));
        assert!(t.arrivals(3).is_empty());
        assert!(t.arrivals(4).is_empty());
        let a = t.arrivals(5);
        assert_eq!(a.len(), 2);
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn burst_builder_creates_back_to_back_arrivals() {
        let mut t = TraceTraffic::burst(8, 2, 6, 10, 5);
        for slot in 10..15 {
            let a = t.arrivals(slot);
            assert_eq!(a.len(), 1);
            assert_eq!(a[0].arrival_slot, slot);
            assert_eq!((a[0].input(), a[0].output()), (2, 6));
        }
        assert!(t.arrivals(15).is_empty());
    }

    #[test]
    fn rate_matrix_reflects_the_trace() {
        let t = TraceTraffic::burst(4, 1, 2, 0, 10);
        let m = t.rate_matrix();
        assert!((m.rate(1, 2) - 1.0).abs() < 1e-9);
        assert_eq!(m.rate(0, 0), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_double_arrival_at_one_input() {
        let _ = TraceTraffic::new(
            4,
            vec![
                TraceEntry {
                    slot: 1,
                    input: 0,
                    output: 1,
                },
                TraceEntry {
                    slot: 1,
                    input: 0,
                    output: 2,
                },
            ],
        );
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_ports() {
        let _ = TraceTraffic::new(
            4,
            vec![TraceEntry {
                slot: 0,
                input: 9,
                output: 0,
            }],
        );
    }
}
