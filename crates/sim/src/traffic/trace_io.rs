//! On-disk trace formats: a human-editable CSV and a compact binary `.sprt`.
//!
//! A *trace file* is a recorded arrival stream — the `(slot, input, output,
//! flow)` tuples a traffic generator produced, in emission order — plus
//! optional provenance metadata (port count, recorded slot span, the source
//! generator's label, and its analytic rate matrix).  The metadata is what
//! makes record→replay exact: a replayed trace reports the same traffic
//! label and offers the same rate matrix for stripe sizing as the generator
//! it was captured from, so a recorded scenario reproduces its original
//! report byte for byte.
//!
//! Two formats are supported, chosen by extension or explicitly:
//!
//! * **CSV** — `slot,input,output[,flow]` data lines preceded by `# key =
//!   value` metadata comments.  Editable by hand; any line order quirks
//!   (blank lines, extra comments) are tolerated, but slots must be
//!   non-decreasing.
//! * **`.sprt` binary** — `SPRT` magic, a fixed header carrying `n`, the
//!   slot span and the record count, optional label/matrix blocks, then
//!   LEB128 varint records with delta-encoded slots.  Compact (a few bytes
//!   per packet) and self-checking: the header count catches truncation.
//!
//! Reading is **streaming**: [`TraceReader`] holds one buffered file handle
//! and a bounded line/record scratch, never the whole trace, so memory stays
//! O(1) in the trace length.  [`TraceWriter`] is the mirror image and is
//! what the `trace` CLI and [`record_spec`] use to emit traces.
//!
//! All failures — missing file, bad magic, truncated data, out-of-range
//! ports, non-monotone slots, header/record-count mismatches — surface as
//! typed [`SpecError`]s carrying the file path, never as panics.

use crate::spec::{ScenarioSpec, SpecError};
use sprinklers_core::matrix::TrafficMatrix;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every binary trace file.
pub const SPRT_MAGIC: [u8; 4] = *b"SPRT";
/// Binary format version written by this crate.
pub const SPRT_VERSION: u16 = 1;
/// Upper bound on `repeat` knobs (guards against absurd replay lengths).
pub const MAX_REPEAT: u32 = 4096;
/// Upper bound on port counts (and therefore port indices) in trace files.
/// Headers and records are untrusted input: without this cap a corrupt or
/// crafted header's `n` would size an `n × n` matrix allocation, turning a
/// malformed file into an OOM abort instead of a typed [`SpecError`].
pub const MAX_TRACE_N: usize = 4096;
/// Upper bound on the label block in a `.sprt` header (same rationale).
const MAX_LABEL_BYTES: usize = 1 << 16;

/// The two on-disk trace encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Human-editable `slot,input,output[,flow]` lines with `#` metadata.
    Csv,
    /// Compact binary: magic + header + delta-encoded varint records.
    Sprt,
}

impl TraceFormat {
    /// Choose a format from a path's extension: `.sprt` is binary,
    /// everything else is CSV.
    pub fn from_path(path: &Path) -> TraceFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some("sprt") => TraceFormat::Sprt,
            _ => TraceFormat::Csv,
        }
    }

    /// The format's canonical name (`csv` / `sprt`), as used in spec JSON
    /// and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Csv => "csv",
            TraceFormat::Sprt => "sprt",
        }
    }

    /// Parse a format name (the inverse of [`Self::name`]).
    pub fn from_name(name: &str) -> Result<TraceFormat, SpecError> {
        match name {
            "csv" => Ok(TraceFormat::Csv),
            "sprt" => Ok(TraceFormat::Sprt),
            other => Err(SpecError::new(format!(
                "unknown trace format '{other}' (known: csv, sprt)"
            ))),
        }
    }
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded arrival: the identity fields the engine needs to reinject
/// the packet exactly as the original generator offered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Slot at which the packet arrived.
    pub slot: u64,
    /// Input port (`0..n`).
    pub input: usize,
    /// Output port (`0..n`).
    pub output: usize,
    /// Application-flow identifier (0 for flowless traffic).
    pub flow: u64,
}

/// Trace provenance metadata carried in file headers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceMeta {
    /// Port count of the recorded switch.  Always present in `.sprt`;
    /// optional in hand-written CSV (the replaying scenario's `n` is used).
    pub n: Option<usize>,
    /// Recorded slot span (the recording run's arrival phase length).
    /// `0` means "derive from the data" (last slot + 1).
    pub slots: u64,
    /// Label of the generator the trace was recorded from; replayed traces
    /// report it so record→replay reproduces reports exactly.
    pub label: Option<String>,
    /// Analytic rate matrix of the recorded generator (what matrix-driven
    /// stripe sizing saw); absent for hand-written traces, in which case
    /// replay derives an empirical matrix from the data.
    pub matrix: Option<TrafficMatrix>,
}

fn path_err(path: &Path, msg: impl Into<String>) -> SpecError {
    SpecError::new(msg.into()).context(format!("trace file {}", path.display()))
}

/// Reject trace labels that would corrupt line-structured output downstream.
/// A recorded label is replayed verbatim as the report's `traffic_label`, so
/// a newline (or a stray carriage return) in it would splice extra rows into
/// every merged CSV — and break the CSV trace header's own line framing.
/// Rejecting at both write and read time turns that silent corruption into a
/// typed error, including for hand-crafted binary traces (whose label block
/// can carry arbitrary bytes).  Commas stay legal: synthetic generator
/// labels such as `bursty(peak=1,burst≈16)` already contain them, the golden
/// CSVs pin those bytes, and rows stay attributable because the merged CSV's
/// leading `case` column is comma-free (validated at suite load).
fn validate_label(path: &Path, label: &str) -> Result<(), SpecError> {
    if label.contains('\n') || label.contains('\r') {
        return Err(path_err(
            path,
            "label contains a newline, which would corrupt CSV reports built \
             from the replayed trace"
                .to_string(),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Streaming trace reader: yields [`TraceRecord`]s one at a time from a
/// buffered file handle (memory stays bounded regardless of trace length),
/// enforcing non-decreasing slots, in-range ports (when `n` is known) and —
/// for the binary format — the header's record count.
#[derive(Debug)]
pub struct TraceReader {
    path: PathBuf,
    format: TraceFormat,
    meta: TraceMeta,
    inner: ReaderImpl,
    prev_slot: Option<u64>,
    read_records: u64,
    /// Declared record count (`.sprt` header, or a CSV `# entries =` line).
    declared_entries: Option<u64>,
}

#[derive(Debug)]
enum ReaderImpl {
    Csv {
        reader: BufReader<File>,
        line: String,
        line_no: u64,
        data_start: u64,
        data_line_no: u64,
    },
    Sprt {
        reader: BufReader<File>,
        data_start: u64,
    },
}

impl TraceReader {
    /// Open a trace file and parse its metadata header.  `format == None`
    /// selects by extension ([`TraceFormat::from_path`]).
    pub fn open(path: impl AsRef<Path>, format: Option<TraceFormat>) -> Result<Self, SpecError> {
        let path = path.as_ref().to_path_buf();
        let format = format.unwrap_or_else(|| TraceFormat::from_path(&path));
        let file = File::open(&path).map_err(|e| path_err(&path, format!("cannot open: {e}")))?;
        let mut reader = BufReader::new(file);
        let mut meta = TraceMeta::default();
        let mut declared_entries = None;
        let inner = match format {
            TraceFormat::Csv => {
                let mut line = String::new();
                let mut offset = 0u64;
                let mut line_no = 0u64;
                // Metadata comments and the optional column-header line come
                // before the first data line; remember where data starts so
                // rewinds can seek straight back to it.
                loop {
                    let mark = offset;
                    let mark_line = line_no;
                    line.clear();
                    let bytes = reader
                        .read_line(&mut line)
                        .map_err(|e| path_err(&path, format!("read error: {e}")))?;
                    if bytes == 0 {
                        break; // data-free trace (metadata only, or empty file)
                    }
                    offset += bytes as u64;
                    line_no += 1;
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    if let Some(comment) = trimmed.strip_prefix('#') {
                        parse_csv_meta(&path, comment, &mut meta, &mut declared_entries)?;
                        continue;
                    }
                    if trimmed.split(',').next().map(str::trim) == Some("slot") {
                        continue; // column-header line
                    }
                    // First data line: rewind one line and stop.
                    reader
                        .seek(SeekFrom::Start(mark))
                        .map_err(|e| path_err(&path, format!("seek error: {e}")))?;
                    offset = mark;
                    line_no = mark_line;
                    break;
                }
                ReaderImpl::Csv {
                    reader,
                    line,
                    line_no,
                    data_start: offset,
                    data_line_no: line_no,
                }
            }
            TraceFormat::Sprt => {
                let (parsed_meta, entries, data_start) = read_sprt_header(&path, &mut reader)?;
                meta = parsed_meta;
                declared_entries = Some(entries);
                ReaderImpl::Sprt { reader, data_start }
            }
        };
        Ok(TraceReader {
            path,
            format,
            meta,
            inner,
            prev_slot: None,
            read_records: 0,
            declared_entries,
        })
    }

    /// The trace's metadata header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The format this reader is decoding.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// The path being read (for error context in callers).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Declared record count, when the file states one (`.sprt` always
    /// does; CSV only via an `# entries =` comment).
    pub fn declared_entries(&self) -> Option<u64> {
        self.declared_entries
    }

    /// Seek back to the first record, so the trace can be streamed again
    /// (repeat replays, or a validation pass followed by the real run).
    pub fn rewind(&mut self) -> Result<(), SpecError> {
        let (reader, start) = match &mut self.inner {
            ReaderImpl::Csv {
                reader,
                line_no,
                data_start,
                data_line_no,
                ..
            } => {
                *line_no = *data_line_no;
                (reader, *data_start)
            }
            ReaderImpl::Sprt { reader, data_start } => (reader, *data_start),
        };
        reader
            .seek(SeekFrom::Start(start))
            .map_err(|e| path_err(&self.path, format!("seek error: {e}")))?;
        self.prev_slot = None;
        self.read_records = 0;
        Ok(())
    }

    /// Read the next record, or `None` at a clean end of trace.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, SpecError> {
        let record = match &mut self.inner {
            ReaderImpl::Csv {
                reader,
                line,
                line_no,
                ..
            } => loop {
                line.clear();
                let bytes = reader
                    .read_line(line)
                    .map_err(|e| path_err(&self.path, format!("read error: {e}")))?;
                if bytes == 0 {
                    if let Some(declared) = self.declared_entries {
                        if declared != self.read_records {
                            return Err(path_err(
                                &self.path,
                                format!(
                                    "truncated trace: header declares {declared} entries \
                                     but the file contains {}",
                                    self.read_records
                                ),
                            ));
                        }
                    }
                    break None;
                }
                *line_no += 1;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                break Some(parse_csv_record(&self.path, trimmed, *line_no)?);
            },
            ReaderImpl::Sprt { reader, .. } => {
                let declared = self
                    .declared_entries
                    .expect("binary traces always declare a count");
                if self.read_records == declared {
                    // Clean end; any trailing bytes mean the header count
                    // and the data disagree.
                    let mut probe = [0u8; 1];
                    match reader.read(&mut probe) {
                        Ok(0) => None,
                        Ok(_) => {
                            return Err(path_err(
                                &self.path,
                                format!(
                                    "trailing data after the {declared} records the \
                                     header declares"
                                ),
                            ))
                        }
                        Err(e) => return Err(path_err(&self.path, format!("read error: {e}"))),
                    }
                } else {
                    let base = self.prev_slot.unwrap_or(0);
                    let truncated = |what: &str| {
                        path_err(
                            &self.path,
                            format!(
                                "truncated trace: file ended inside record {} of {declared} \
                                 (while reading {what})",
                                self.read_records + 1
                            ),
                        )
                    };
                    let delta = read_varint(reader).map_err(|_| truncated("slot delta"))?;
                    let input = read_varint(reader).map_err(|_| truncated("input"))?;
                    let output = read_varint(reader).map_err(|_| truncated("output"))?;
                    let flow = read_varint(reader).map_err(|_| truncated("flow"))?;
                    let slot = base.checked_add(delta).ok_or_else(|| {
                        path_err(&self.path, "slot delta overflows u64".to_string())
                    })?;
                    // Bound untrusted ports before the usize cast (see
                    // `parse_csv_record`); the meta.n check below tightens
                    // this to the header's n.
                    if input >= MAX_TRACE_N as u64 || output >= MAX_TRACE_N as u64 {
                        return Err(path_err(
                            &self.path,
                            format!(
                                "port out of range in record {}: input {input} output \
                                 {output} (max n is {MAX_TRACE_N})",
                                self.read_records + 1
                            ),
                        ));
                    }
                    Some(TraceRecord {
                        slot,
                        input: input as usize,
                        output: output as usize,
                        flow,
                    })
                }
            }
        };
        let Some(record) = record else {
            return Ok(None);
        };
        if let Some(prev) = self.prev_slot {
            if record.slot < prev {
                return Err(path_err(
                    &self.path,
                    format!(
                        "non-monotone slots: record {} has slot {} after slot {prev}",
                        self.read_records + 1,
                        record.slot
                    ),
                ));
            }
        }
        if let Some(n) = self.meta.n {
            if record.input >= n || record.output >= n {
                return Err(path_err(
                    &self.path,
                    format!(
                        "port out of range in record {}: input {} output {} but n = {n}",
                        self.read_records + 1,
                        record.input,
                        record.output
                    ),
                ));
            }
        }
        self.prev_slot = Some(record.slot);
        self.read_records += 1;
        Ok(Some(record))
    }
}

fn parse_csv_meta(
    path: &Path,
    comment: &str,
    meta: &mut TraceMeta,
    declared_entries: &mut Option<u64>,
) -> Result<(), SpecError> {
    let Some((key, value)) = comment.split_once('=') else {
        return Ok(()); // free-form comment (e.g. the banner line)
    };
    let (key, value) = (key.trim(), value.trim());
    match key {
        "n" => {
            let n: usize = value
                .parse()
                .map_err(|_| path_err(path, format!("bad '# n = {value}' metadata")))?;
            if !(2..=MAX_TRACE_N).contains(&n) {
                return Err(path_err(
                    path,
                    format!("n must be in 2..={MAX_TRACE_N}, got {n}"),
                ));
            }
            meta.n = Some(n);
        }
        "slots" => {
            meta.slots = value
                .parse()
                .map_err(|_| path_err(path, format!("bad '# slots = {value}' metadata")))?;
        }
        "entries" => {
            *declared_entries = Some(
                value
                    .parse()
                    .map_err(|_| path_err(path, format!("bad '# entries = {value}' metadata")))?,
            );
        }
        "label" => {
            // Lines cannot smuggle '\n', but an interior '\r' survives the
            // line framing and would resurface in CSV reports.
            validate_label(path, value)?;
            meta.label = Some(value.to_string());
        }
        "matrix" => {
            let n = meta.n.ok_or_else(|| {
                path_err(path, "'# matrix =' must come after '# n ='".to_string())
            })?;
            let rates: Result<Vec<f64>, _> = value.split_whitespace().map(str::parse).collect();
            let rates = rates.map_err(|e| path_err(path, format!("bad matrix value: {e}")))?;
            if rates.len() != n * n {
                return Err(path_err(
                    path,
                    format!(
                        "matrix has {} values, expected n*n = {}",
                        rates.len(),
                        n * n
                    ),
                ));
            }
            let matrix = TrafficMatrix::from_rates(n, rates)
                .map_err(|e| path_err(path, format!("bad matrix: {e}")))?;
            meta.matrix = Some(matrix);
        }
        _ => {} // unknown metadata keys are tolerated (hand-edited files)
    }
    Ok(())
}

fn parse_csv_record(path: &Path, line: &str, line_no: u64) -> Result<TraceRecord, SpecError> {
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.len() != 3 && fields.len() != 4 {
        return Err(path_err(
            path,
            format!(
                "line {line_no}: expected 'slot,input,output[,flow]', got {} field(s)",
                fields.len()
            ),
        ));
    }
    let field = |idx: usize, what: &str| -> Result<u64, SpecError> {
        fields[idx].parse::<u64>().map_err(|_| {
            path_err(
                path,
                format!("line {line_no}: bad {what} '{}'", fields[idx]),
            )
        })
    };
    // Ports are bounded *before* the usize cast: untrusted values must not
    // drive allocations (or wrap on 32-bit targets) downstream.
    let port = |idx: usize, what: &str| -> Result<usize, SpecError> {
        let value = field(idx, what)?;
        if value >= MAX_TRACE_N as u64 {
            return Err(path_err(
                path,
                format!("line {line_no}: {what} {value} is out of range (max n is {MAX_TRACE_N})"),
            ));
        }
        Ok(value as usize)
    };
    Ok(TraceRecord {
        slot: field(0, "slot")?,
        input: port(1, "input")?,
        output: port(2, "output")?,
        flow: if fields.len() == 4 {
            field(3, "flow")?
        } else {
            0
        },
    })
}

fn read_sprt_header(
    path: &Path,
    reader: &mut BufReader<File>,
) -> Result<(TraceMeta, u64, u64), SpecError> {
    let truncated = |what: &str| path_err(path, format!("truncated header (reading {what})"));
    let mut magic = [0u8; 4];
    reader
        .read_exact(&mut magic)
        .map_err(|_| truncated("magic"))?;
    if magic != SPRT_MAGIC {
        return Err(path_err(
            path,
            format!("bad magic {magic:?}: not a .sprt trace"),
        ));
    }
    let version = read_u16(reader).map_err(|_| truncated("version"))?;
    if version != SPRT_VERSION {
        return Err(path_err(
            path,
            format!("unsupported .sprt version {version} (this build reads {SPRT_VERSION})"),
        ));
    }
    let n = read_u32(reader).map_err(|_| truncated("n"))? as usize;
    if !(2..=MAX_TRACE_N).contains(&n) {
        // The bound doubles as allocation armor: n sizes the n*n matrix
        // block below, and headers are untrusted input.
        return Err(path_err(
            path,
            format!("n must be in 2..={MAX_TRACE_N}, got {n}"),
        ));
    }
    let slots = read_u64(reader).map_err(|_| truncated("slots"))?;
    let entries = read_u64(reader).map_err(|_| truncated("entry count"))?;
    let mut flags = [0u8; 1];
    reader
        .read_exact(&mut flags)
        .map_err(|_| truncated("flags"))?;
    let flags = flags[0];
    if flags & !0b11 != 0 {
        return Err(path_err(path, format!("unknown header flags {flags:#04x}")));
    }
    let mut header_len = 4 + 2 + 4 + 8 + 8 + 1;
    let label = if flags & 0b10 != 0 {
        let len = read_u32(reader).map_err(|_| truncated("label length"))? as usize;
        if len > MAX_LABEL_BYTES {
            return Err(path_err(
                path,
                format!("label length {len} is implausible (max {MAX_LABEL_BYTES})"),
            ));
        }
        let mut buf = vec![0u8; len];
        reader
            .read_exact(&mut buf)
            .map_err(|_| truncated("label"))?;
        header_len += 4 + len as u64;
        let label = String::from_utf8(buf)
            .map_err(|_| path_err(path, "label is not valid UTF-8".to_string()))?;
        validate_label(path, &label)?;
        Some(label)
    } else {
        None
    };
    let matrix = if flags & 0b01 != 0 {
        let mut rates = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            rates.push(f64::from_le_bytes(
                read_array::<8>(reader).map_err(|_| truncated("matrix"))?,
            ));
        }
        header_len += (n * n * 8) as u64;
        Some(
            TrafficMatrix::from_rates(n, rates)
                .map_err(|e| path_err(path, format!("bad matrix: {e}")))?,
        )
    } else {
        None
    };
    Ok((
        TraceMeta {
            n: Some(n),
            slots,
            label,
            matrix,
        },
        entries,
        header_len,
    ))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming trace writer: records go straight to a buffered file as they
/// are produced (bounded memory), and [`TraceWriter::finish`] patches the
/// binary header's record count and slot span.
#[derive(Debug)]
pub struct TraceWriter {
    path: PathBuf,
    format: TraceFormat,
    n: Option<usize>,
    declared_slots: u64,
    writer: BufWriter<File>,
    prev_slot: Option<u64>,
    written: u64,
    /// Byte offset of the CSV `# entries =` placeholder, patched by
    /// [`Self::finish`] so written CSVs are truncation-checked like `.sprt`.
    csv_entries_offset: Option<u64>,
}

/// Width of the CSV entries placeholder (patched in place, so fixed-size).
const CSV_ENTRIES_WIDTH: usize = 20;

impl TraceWriter {
    /// Create a trace file and write its metadata header.  Binary traces
    /// require `meta.n` (the header stores it); CSV traces emit whatever
    /// metadata is present.
    pub fn create(
        path: impl AsRef<Path>,
        format: TraceFormat,
        meta: &TraceMeta,
    ) -> Result<Self, SpecError> {
        let path = path.as_ref().to_path_buf();
        if let Some(n) = meta.n {
            if !(2..=MAX_TRACE_N).contains(&n) {
                return Err(path_err(
                    &path,
                    format!("trace files support n in 2..={MAX_TRACE_N}, got {n}"),
                ));
            }
        }
        if let Some(label) = &meta.label {
            // Fail fast at write time too — a file we wrote should never be
            // one our own reader rejects.
            validate_label(&path, label)?;
        }
        let file =
            File::create(&path).map_err(|e| path_err(&path, format!("cannot create: {e}")))?;
        let mut writer = BufWriter::new(file);
        let io = |e: std::io::Error| path_err(&path, format!("write error: {e}"));
        let mut csv_entries_offset = None;
        match format {
            TraceFormat::Csv => {
                writeln!(writer, "# sprinklers trace v1").map_err(io)?;
                if let Some(n) = meta.n {
                    writeln!(writer, "# n = {n}").map_err(io)?;
                }
                if meta.slots > 0 {
                    writeln!(writer, "# slots = {}", meta.slots).map_err(io)?;
                }
                if let Some(label) = &meta.label {
                    // Validated newline-free above, so the header's line
                    // framing is safe without silent rewriting.
                    writeln!(writer, "# label = {label}").map_err(io)?;
                }
                if let Some(matrix) = &meta.matrix {
                    let n = matrix.n();
                    let mut line = String::from("# matrix =");
                    for i in 0..n {
                        for j in 0..n {
                            line.push(' ');
                            line.push_str(&format!("{}", matrix.rate(i, j)));
                        }
                    }
                    writeln!(writer, "{line}").map_err(io)?;
                }
                // Fixed-width record count, patched by `finish`: a recorded
                // CSV that later loses its tail at a line boundary must
                // fail as "truncated", exactly like the binary header.
                let position = writer.stream_position().map_err(io)?;
                csv_entries_offset = Some(position + "# entries = ".len() as u64);
                writeln!(writer, "# entries = {:>CSV_ENTRIES_WIDTH$}", 0).map_err(io)?;
                writeln!(writer, "slot,input,output,flow").map_err(io)?;
            }
            TraceFormat::Sprt => {
                let n = meta.n.ok_or_else(|| {
                    path_err(
                        &path,
                        "binary traces require a port count (meta.n)".to_string(),
                    )
                })?;
                if let Some(matrix) = &meta.matrix {
                    if matrix.n() != n {
                        return Err(path_err(
                            &path,
                            format!("matrix is {}x{} but n = {n}", matrix.n(), matrix.n()),
                        ));
                    }
                }
                let mut flags = 0u8;
                if meta.matrix.is_some() {
                    flags |= 0b01;
                }
                if meta.label.is_some() {
                    flags |= 0b10;
                }
                writer.write_all(&SPRT_MAGIC).map_err(io)?;
                writer.write_all(&SPRT_VERSION.to_le_bytes()).map_err(io)?;
                writer.write_all(&(n as u32).to_le_bytes()).map_err(io)?;
                writer.write_all(&meta.slots.to_le_bytes()).map_err(io)?;
                writer.write_all(&0u64.to_le_bytes()).map_err(io)?; // count, patched
                writer.write_all(&[flags]).map_err(io)?;
                if let Some(label) = &meta.label {
                    writer
                        .write_all(&(label.len() as u32).to_le_bytes())
                        .map_err(io)?;
                    writer.write_all(label.as_bytes()).map_err(io)?;
                }
                if let Some(matrix) = &meta.matrix {
                    for i in 0..n {
                        for j in 0..n {
                            writer
                                .write_all(&matrix.rate(i, j).to_le_bytes())
                                .map_err(io)?;
                        }
                    }
                }
            }
        }
        Ok(TraceWriter {
            path,
            format,
            n: meta.n,
            declared_slots: meta.slots,
            writer,
            prev_slot: None,
            written: 0,
            csv_entries_offset,
        })
    }

    /// Append one record.  Slots must be non-decreasing and ports in range
    /// (when `n` is known) — the same invariants readers enforce.
    pub fn write(&mut self, record: &TraceRecord) -> Result<(), SpecError> {
        if let Some(prev) = self.prev_slot {
            if record.slot < prev {
                return Err(path_err(
                    &self.path,
                    format!(
                        "records must be slot-ordered: got slot {} after {prev}",
                        record.slot
                    ),
                ));
            }
        }
        let bound = self.n.unwrap_or(MAX_TRACE_N);
        if record.input >= bound || record.output >= bound {
            return Err(path_err(
                &self.path,
                format!(
                    "port out of range: input {} output {} but n = {bound}",
                    record.input, record.output
                ),
            ));
        }
        let io = |e: std::io::Error| path_err(&self.path, format!("write error: {e}"));
        match self.format {
            TraceFormat::Csv => {
                writeln!(
                    self.writer,
                    "{},{},{},{}",
                    record.slot, record.input, record.output, record.flow
                )
                .map_err(io)?;
            }
            TraceFormat::Sprt => {
                let base = self.prev_slot.unwrap_or(0);
                write_varint(&mut self.writer, record.slot - base).map_err(io)?;
                write_varint(&mut self.writer, record.input as u64).map_err(io)?;
                write_varint(&mut self.writer, record.output as u64).map_err(io)?;
                write_varint(&mut self.writer, record.flow).map_err(io)?;
            }
        }
        self.prev_slot = Some(record.slot);
        self.written += 1;
        Ok(())
    }

    /// Flush and close the file, patching the binary header's record count
    /// (and the slot span, when it was created as 0 = "derive").  Returns
    /// `(records_written, slot_span)`.
    pub fn finish(mut self) -> Result<(u64, u64), SpecError> {
        let span = if self.declared_slots > 0 {
            self.declared_slots
        } else {
            self.prev_slot.map_or(0, |s| s + 1)
        };
        let io = |e: std::io::Error| path_err(&self.path, format!("write error: {e}"));
        self.writer.flush().map_err(io)?;
        let file = self.writer.get_mut();
        match self.format {
            TraceFormat::Sprt => {
                file.seek(SeekFrom::Start(10)).map_err(io)?;
                file.write_all(&span.to_le_bytes()).map_err(io)?;
                file.write_all(&self.written.to_le_bytes()).map_err(io)?;
            }
            TraceFormat::Csv => {
                let offset = self
                    .csv_entries_offset
                    .expect("CSV writers always reserve an entries placeholder");
                file.seek(SeekFrom::Start(offset)).map_err(io)?;
                write!(file, "{:>CSV_ENTRIES_WIDTH$}", self.written).map_err(io)?;
            }
        }
        file.flush().map_err(io)?;
        Ok((self.written, span))
    }
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

/// Record the arrival stream a scenario's traffic generator produces — the
/// exact packets the engine would inject during the spec's arrival phase —
/// into a trace file, with full provenance metadata (`n`, slot span, the
/// generator's label and the spec's analytic rate matrix).
///
/// Replaying the result with `TrafficSpec::Trace` under the same scheme,
/// seed and run configuration reproduces the original report byte for byte;
/// this is what the `trace record` CLI subcommand calls.  Returns
/// `(records_written, slot_span)`.
pub fn record_spec(
    spec: &ScenarioSpec,
    out: impl AsRef<Path>,
    format: TraceFormat,
) -> Result<(u64, u64), SpecError> {
    let mut traffic = spec.build_traffic()?;
    let meta = TraceMeta {
        n: Some(spec.n),
        slots: spec.run.slots,
        label: Some(traffic.label()),
        matrix: Some(spec.traffic.try_matrix(spec.n)?),
    };
    let mut writer = TraceWriter::create(out, format, &meta)?;
    let mut buf = Vec::new();
    for slot in 0..spec.run.slots {
        buf.clear();
        traffic.arrivals_into(slot, &mut buf);
        for packet in &buf {
            writer.write(&TraceRecord {
                slot,
                input: packet.input(),
                output: packet.output(),
                flow: packet.flow,
            })?;
        }
    }
    writer.finish()
}

// ---------------------------------------------------------------------------
// Varint + fixed-width helpers
// ---------------------------------------------------------------------------

fn write_varint(w: &mut impl Write, mut v: u64) -> std::io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(r: &mut impl Read) -> std::io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let byte = byte[0];
        if shift >= 63 && byte > 1 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn read_array<const N: usize>(r: &mut impl Read) -> std::io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u16(r: &mut impl Read) -> std::io::Result<u16> {
    Ok(u16::from_le_bytes(read_array::<2>(r)?))
}

fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    Ok(u32::from_le_bytes(read_array::<4>(r)?))
}

fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    Ok(u64::from_le_bytes(read_array::<8>(r)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sprinklers-trace-io-{}-{name}", std::process::id()))
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                slot: 0,
                input: 1,
                output: 3,
                flow: 7,
            },
            TraceRecord {
                slot: 0,
                input: 2,
                output: 0,
                flow: 0,
            },
            TraceRecord {
                slot: 4,
                input: 0,
                output: 2,
                flow: 9,
            },
            TraceRecord {
                slot: 4,
                input: 1,
                output: 1,
                flow: 7,
            },
            TraceRecord {
                slot: 9,
                input: 3,
                output: 3,
                flow: 1,
            },
        ]
    }

    fn write_all(path: &Path, format: TraceFormat, meta: &TraceMeta, recs: &[TraceRecord]) {
        let mut w = TraceWriter::create(path, format, meta).unwrap();
        for r in recs {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
    }

    fn read_all(path: &Path, format: Option<TraceFormat>) -> Vec<TraceRecord> {
        let mut r = TraceReader::open(path, format).unwrap();
        let mut out = Vec::new();
        while let Some(rec) = r.next_record().unwrap() {
            out.push(rec);
        }
        out
    }

    #[test]
    fn both_formats_round_trip_records_and_metadata() {
        let meta = TraceMeta {
            n: Some(4),
            slots: 12,
            label: Some("bernoulli-uniform(rho=0.5)".into()),
            matrix: Some(TrafficMatrix::uniform(4, 0.5)),
        };
        for format in [TraceFormat::Csv, TraceFormat::Sprt] {
            let path = tmp(&format!("roundtrip.{}", format.name()));
            write_all(&path, format, &meta, &sample_records());
            let mut reader = TraceReader::open(&path, Some(format)).unwrap();
            assert_eq!(reader.meta(), &meta, "{format} metadata");
            let mut recs = Vec::new();
            while let Some(r) = reader.next_record().unwrap() {
                recs.push(r);
            }
            assert_eq!(recs, sample_records(), "{format} records");
            // Rewind streams the identical records again.
            reader.rewind().unwrap();
            let mut again = Vec::new();
            while let Some(r) = reader.next_record().unwrap() {
                again.push(r);
            }
            assert_eq!(again, recs, "{format} rewind");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn format_is_chosen_by_extension() {
        assert_eq!(
            TraceFormat::from_path(Path::new("a/b.sprt")),
            TraceFormat::Sprt
        );
        assert_eq!(
            TraceFormat::from_path(Path::new("a/b.csv")),
            TraceFormat::Csv
        );
        assert_eq!(TraceFormat::from_path(Path::new("noext")), TraceFormat::Csv);
        assert_eq!(TraceFormat::from_name("sprt").unwrap(), TraceFormat::Sprt);
        assert!(TraceFormat::from_name("pcap").is_err());
    }

    #[test]
    fn hand_written_csv_without_metadata_parses() {
        let path = tmp("hand.csv");
        std::fs::write(&path, "5,0,1\n7,1,0,42\n\n# trailing comment\n").unwrap();
        let recs = read_all(&path, None);
        assert_eq!(recs.len(), 2);
        assert_eq!(
            recs[0],
            TraceRecord {
                slot: 5,
                input: 0,
                output: 1,
                flow: 0
            }
        );
        assert_eq!(recs[1].flow, 42);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_binary_is_a_typed_error() {
        let path = tmp("trunc.sprt");
        let meta = TraceMeta {
            n: Some(4),
            ..TraceMeta::default()
        };
        write_all(&path, TraceFormat::Sprt, &meta, &sample_records());
        let full = std::fs::read(&path).unwrap();
        // Chop off the last few bytes: the reader must report truncation
        // (the header still declares 5 records), not panic or return Ok.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let mut reader = TraceReader::open(&path, None).unwrap();
        let err = loop {
            match reader.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("truncated trace read cleanly"),
                Err(e) => break e.to_string(),
            }
        };
        assert!(err.contains("truncated"), "{err}");
        assert!(err.contains("trunc.sprt"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_after_declared_count_is_rejected() {
        let path = tmp("trailing.sprt");
        let meta = TraceMeta {
            n: Some(4),
            ..TraceMeta::default()
        };
        write_all(&path, TraceFormat::Sprt, &meta, &sample_records());
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0x00);
        std::fs::write(&path, &bytes).unwrap();
        let mut reader = TraceReader::open(&path, None).unwrap();
        let err = loop {
            match reader.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("trailing garbage read cleanly"),
                Err(e) => break e.to_string(),
            }
        };
        assert!(err.contains("trailing"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recorded_csv_truncated_at_a_line_boundary_is_detected() {
        // Losing whole trailing lines leaves a syntactically valid CSV; the
        // patched `# entries =` count is what catches it.
        let path = tmp("linetrunc.csv");
        let meta = TraceMeta {
            n: Some(4),
            ..TraceMeta::default()
        };
        write_all(&path, TraceFormat::Csv, &meta, &sample_records());
        let text = std::fs::read_to_string(&path).unwrap();
        let shorter: String =
            text.lines()
                .take(text.lines().count() - 2)
                .fold(String::new(), |mut acc, line| {
                    acc.push_str(line);
                    acc.push('\n');
                    acc
                });
        std::fs::write(&path, shorter).unwrap();
        let mut reader = TraceReader::open(&path, None).unwrap();
        let err = loop {
            match reader.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("line-truncated trace read cleanly"),
                Err(e) => break e.to_string(),
            }
        };
        assert!(err.contains("truncated"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crafted_headers_cannot_drive_huge_allocations() {
        // A corrupt or hostile header must produce a typed error before any
        // header-sized allocation happens — never a capacity panic or OOM.
        let path = tmp("hostile.sprt");
        // n = u32::MAX with the matrix flag set.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SPRT_MAGIC);
        bytes.extend_from_slice(&SPRT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.push(0b01);
        std::fs::write(&path, &bytes).unwrap();
        let err = TraceReader::open(&path, None).unwrap_err().to_string();
        assert!(err.contains(&MAX_TRACE_N.to_string()), "{err}");

        // Plausible n but an absurd label length.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SPRT_MAGIC);
        bytes.extend_from_slice(&SPRT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.push(0b10);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = TraceReader::open(&path, None).unwrap_err().to_string();
        assert!(err.contains("label length"), "{err}");

        // Huge port indices in a metadata-free CSV are typed errors too
        // (they used to size per-port bookkeeping in consumers).
        let csv = tmp("hostile.csv");
        std::fs::write(&csv, "0,18446744073709551615,0\n").unwrap();
        let mut reader = TraceReader::open(&csv, None).unwrap();
        let err = reader.next_record().unwrap_err().to_string();
        assert!(err.contains("out of range"), "{err}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        let path = tmp("magic.sprt");
        std::fs::write(&path, b"NOPE-not-a-trace").unwrap();
        let err = TraceReader::open(&path, None).unwrap_err().to_string();
        assert!(err.contains("magic"), "{err}");
        assert!(err.contains("magic.sprt"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn newline_labels_are_rejected_at_write_time() {
        for format in [TraceFormat::Csv, TraceFormat::Sprt] {
            for label in ["two\nlines", "carriage\rreturn"] {
                let path = tmp(&format!("badlabel.{}", format.name()));
                let meta = TraceMeta {
                    n: Some(4),
                    label: Some(label.to_string()),
                    ..TraceMeta::default()
                };
                let err = TraceWriter::create(&path, format, &meta)
                    .err()
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| panic!("{format}: label {label:?} was accepted"));
                assert!(err.contains("newline"), "{format}: {err}");
                std::fs::remove_file(&path).ok();
            }
        }
        // Commas stay legal: scenario labels like "bursty(peak=1,burst≈16)"
        // are golden-pinned and CSV reports quote nothing.
        let path = tmp("commalabel.csv");
        let meta = TraceMeta {
            n: Some(4),
            label: Some("bursty(peak=1,burst≈16)".into()),
            ..TraceMeta::default()
        };
        write_all(&path, TraceFormat::Csv, &meta, &sample_records());
        assert_eq!(
            TraceReader::open(&path, None).unwrap().meta().label,
            meta.label
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_meta_label_with_carriage_return_is_rejected_at_open() {
        // '\n' cannot survive the line framing, but a bare '\r' can; it
        // would resurface verbatim inside CSV reports downstream.
        let path = tmp("crlabel.csv");
        std::fs::write(&path, "# label = split\rrow\n0,0,1\n").unwrap();
        let err = TraceReader::open(&path, None).unwrap_err().to_string();
        assert!(err.contains("newline"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_labels_with_newlines_are_rejected_at_open() {
        // Hand-craft a header the writer now refuses to produce: old trace
        // files (or other producers) must not smuggle one past the reader.
        let path = tmp("nllabel.sprt");
        let label = b"two\nlines";
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SPRT_MAGIC);
        bytes.extend_from_slice(&SPRT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.push(0b10);
        bytes.extend_from_slice(&(label.len() as u32).to_le_bytes());
        bytes.extend_from_slice(label);
        std::fs::write(&path, &bytes).unwrap();
        let err = TraceReader::open(&path, None).unwrap_err().to_string();
        assert!(err.contains("newline"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_ports_are_a_typed_error() {
        let path = tmp("range.csv");
        std::fs::write(&path, "# n = 4\n0,0,1\n1,9,0\n").unwrap();
        let mut reader = TraceReader::open(&path, None).unwrap();
        assert!(reader.next_record().unwrap().is_some());
        let err = reader.next_record().unwrap_err().to_string();
        assert!(err.contains("out of range"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_monotone_slots_are_a_typed_error() {
        let path = tmp("mono.csv");
        std::fs::write(&path, "4,0,1\n2,1,0\n").unwrap();
        let mut reader = TraceReader::open(&path, None).unwrap();
        assert!(reader.next_record().unwrap().is_some());
        let err = reader.next_record().unwrap_err().to_string();
        assert!(err.contains("non-monotone"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_entry_count_mismatch_is_a_typed_error() {
        let path = tmp("count.csv");
        std::fs::write(&path, "# entries = 3\n0,0,1\n1,1,0\n").unwrap();
        let mut reader = TraceReader::open(&path, None).unwrap();
        assert!(reader.next_record().unwrap().is_some());
        assert!(reader.next_record().unwrap().is_some());
        let err = reader.next_record().unwrap_err().to_string();
        assert!(err.contains("truncated"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_csv_lines_carry_line_numbers() {
        let path = tmp("badline.csv");
        std::fs::write(&path, "0,0,1\n1,zero,0\n").unwrap();
        let mut reader = TraceReader::open(&path, None).unwrap();
        assert!(reader.next_record().unwrap().is_some());
        let err = reader.next_record().unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_typed_error_with_the_path() {
        let err = TraceReader::open("/nonexistent/trace.sprt", None)
            .unwrap_err()
            .to_string();
        assert!(err.contains("/nonexistent/trace.sprt"), "{err}");
    }

    #[test]
    fn writer_rejects_unordered_and_out_of_range_records() {
        let path = tmp("wcheck.sprt");
        let meta = TraceMeta {
            n: Some(4),
            ..TraceMeta::default()
        };
        let mut w = TraceWriter::create(&path, TraceFormat::Sprt, &meta).unwrap();
        w.write(&TraceRecord {
            slot: 5,
            input: 0,
            output: 1,
            flow: 0,
        })
        .unwrap();
        assert!(w
            .write(&TraceRecord {
                slot: 4,
                input: 0,
                output: 1,
                flow: 0
            })
            .is_err());
        assert!(w
            .write(&TraceRecord {
                slot: 6,
                input: 4,
                output: 1,
                flow: 0
            })
            .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_writer_requires_a_port_count() {
        let err = TraceWriter::create(tmp("no-n.sprt"), TraceFormat::Sprt, &TraceMeta::default())
            .unwrap_err()
            .to_string();
        assert!(err.contains("port count"), "{err}");
    }

    #[test]
    fn varints_round_trip_across_the_width_spectrum() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
        // Truncated varint is an error, not a hang or a zero.
        assert!(read_varint(&mut [0x80u8].as_slice()).is_err());
    }

    #[test]
    fn record_spec_then_read_matches_the_generator() {
        use crate::spec::TrafficSpec;
        let spec = ScenarioSpec::new("oq", 4)
            .with_traffic(TrafficSpec::Uniform { load: 0.6 })
            .with_run(crate::engine::RunConfig {
                slots: 50,
                warmup_slots: 0,
                drain_slots: 0,
            })
            .with_seed(11);
        let path = tmp("record.sprt");
        let (written, span) = record_spec(&spec, &path, TraceFormat::Sprt).unwrap();
        assert_eq!(span, 50);
        let mut gen = spec.build_traffic().unwrap();
        let mut expected = Vec::new();
        for slot in 0..50u64 {
            for p in gen.arrivals(slot) {
                expected.push(TraceRecord {
                    slot,
                    input: p.input(),
                    output: p.output(),
                    flow: p.flow,
                });
            }
        }
        assert_eq!(written, expected.len() as u64);
        let reader = TraceReader::open(&path, None).unwrap();
        assert_eq!(reader.meta().n, Some(4));
        assert_eq!(reader.meta().slots, 50);
        assert!(reader.meta().label.is_some());
        assert!(reader.meta().matrix.is_some());
        assert_eq!(read_all(&path, None), expected);
        std::fs::remove_file(&path).ok();
    }
}
