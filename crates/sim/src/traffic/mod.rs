//! Traffic generators.
//!
//! A traffic generator produces at most one packet per input port per time
//! slot (the standard admissibility constraint for an input line of rate 1)
//! and exposes the long-run rate matrix it draws from, which the Sprinklers
//! switch can use for matrix-driven stripe sizing and which the analysis
//! modules use to check admissibility.
//!
//! The two generators used by the paper's evaluation (§6) are Bernoulli
//! arrivals with uniform destinations and with quasi-diagonal destinations;
//! both are provided by [`bernoulli::BernoulliTraffic`].  The other generators
//! extend the evaluation: bursty on/off sources, application-flow-structured
//! traffic (needed by the TCP-hashing baseline), deterministic in-memory
//! trace replay for tests ([`trace::TraceTraffic`]), and streaming replay of
//! recorded trace files ([`trace_stream::TraceStream`], with the on-disk
//! formats in [`trace_io`]).

pub mod bernoulli;
pub mod bursty;
pub mod flows;
pub mod trace;
pub mod trace_io;
pub mod trace_stream;

use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::Packet;

/// A source of packet arrivals for an N-port switch.
pub trait TrafficGenerator {
    /// Number of switch ports.
    fn n(&self) -> usize;

    /// Generate the arrivals of one time slot by pushing them into `out`
    /// (which the caller has cleared): at most one packet per input port.
    /// Identity fields other than `input`, `output`, `flow` and
    /// `arrival_slot` may be left at their defaults; the simulation engine
    /// assigns globally unique ids and per-VOQ sequence numbers.
    ///
    /// This is the required method so that the engine's steady-state loop can
    /// reuse one buffer across slots and stay allocation-free, matching the
    /// contract of [`sprinklers_core::switch::Switch::step`].
    fn arrivals_into(&mut self, slot: u64, out: &mut Vec<Packet>);

    /// Convenience wrapper returning the slot's arrivals in a fresh `Vec`
    /// (tests and examples; the engine uses [`Self::arrivals_into`]).
    fn arrivals(&mut self, slot: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        self.arrivals_into(slot, &mut out);
        out
    }

    /// The long-run average rate matrix this generator draws from.
    fn rate_matrix(&self) -> TrafficMatrix;

    /// Short human-readable description (used in reports).
    fn label(&self) -> String;
}

impl<T: TrafficGenerator + ?Sized> TrafficGenerator for Box<T> {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn arrivals_into(&mut self, slot: u64, out: &mut Vec<Packet>) {
        (**self).arrivals_into(slot, out)
    }
    fn rate_matrix(&self) -> TrafficMatrix {
        (**self).rate_matrix()
    }
    fn label(&self) -> String {
        (**self).label()
    }
}

/// Helper shared by generators: sample a destination from a cumulative
/// distribution over outputs.
pub(crate) fn sample_from_cdf(cdf: &[f64], u: f64) -> usize {
    match cdf.binary_search_by(|probe| probe.partial_cmp(&u).expect("CDF must not contain NaN")) {
        Ok(idx) => idx,
        Err(idx) => idx.min(cdf.len() - 1),
    }
}

/// Helper shared by generators: build the per-input destination CDF from a
/// rate matrix row (conditioned on an arrival happening at that input).
pub(crate) fn row_cdf(matrix: &TrafficMatrix, input: usize) -> (f64, Vec<f64>) {
    let n = matrix.n();
    let load = matrix.input_load(input);
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for j in 0..n {
        let p = if load > 0.0 {
            matrix.rate(input, j) / load
        } else {
            0.0
        };
        acc += p;
        cdf.push(acc);
    }
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    (load, cdf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_from_cdf_picks_correct_bucket() {
        let cdf = vec![0.25, 0.5, 0.75, 1.0];
        assert_eq!(sample_from_cdf(&cdf, 0.0), 0);
        assert_eq!(sample_from_cdf(&cdf, 0.3), 1);
        assert_eq!(sample_from_cdf(&cdf, 0.74), 2);
        assert_eq!(sample_from_cdf(&cdf, 0.99), 3);
    }

    #[test]
    fn row_cdf_normalizes_the_row() {
        let m = TrafficMatrix::diagonal(8, 0.8);
        let (load, cdf) = row_cdf(&m, 3);
        assert!((load - 0.8).abs() < 1e-12);
        assert_eq!(cdf.len(), 8);
        assert!((cdf[7] - 1.0).abs() < 1e-12);
        // The diagonal entry owns half the probability mass.
        assert!((cdf[3] - cdf[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn row_cdf_of_idle_input_is_all_zero_probability() {
        let m = TrafficMatrix::zero(4);
        let (load, cdf) = row_cdf(&m, 0);
        assert_eq!(load, 0.0);
        assert_eq!(cdf.last().copied(), Some(1.0));
    }
}
