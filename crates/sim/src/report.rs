//! Simulation reports.

use crate::metrics::delay::DelayStats;
use crate::metrics::occupancy::OccupancyStats;
use crate::metrics::reorder::ReorderStats;
use serde::{Deserialize, Serialize};

/// The result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Scheduling scheme name (from [`sprinklers_core::switch::Switch::name`]).
    pub switch_name: String,
    /// Traffic generator label.
    pub traffic_label: String,
    /// Switch size.
    pub n: usize,
    /// Number of arrival slots simulated (not counting the drain phase).
    pub slots: u64,
    /// Warm-up slots excluded from the delay statistics.
    pub warmup_slots: u64,
    /// Total packets offered to the switch.
    pub offered_packets: u64,
    /// Total data packets delivered to outputs (excludes padding).
    pub delivered_packets: u64,
    /// Padding (fake) packets delivered, for padding-based schemes.
    pub padding_packets: u64,
    /// Packets still inside the switch when the run ended.
    pub residual_packets: u64,
    /// Delay statistics over delivered packets that arrived after warm-up.
    pub delay: DelayStats,
    /// Reordering statistics over every delivered data packet.
    pub reordering: ReorderStats,
    /// Queue occupancy statistics (sampled once per frame).
    pub occupancy: OccupancyStats,
}

impl SimReport {
    /// Fraction of offered packets that were delivered by the end of the run
    /// (including the drain phase).
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered_packets == 0 {
            return 1.0;
        }
        self.delivered_packets as f64 / self.offered_packets as f64
    }

    /// Normalized throughput: delivered packets per output per slot during the
    /// arrival phase.
    pub fn throughput(&self) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        self.delivered_packets as f64 / (self.slots as f64 * self.n as f64)
    }

    /// Header row for the CSV emitted by the experiment binaries.
    pub fn csv_header() -> &'static str {
        "switch,traffic,n,slots,offered,delivered,mean_delay,p50_delay,p95_delay,p99_delay,\
         max_delay,voq_reorders,flow_reorders,mean_intermediate_occupancy"
    }

    /// One CSV row summarizing this report.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{:.3},{},{},{},{},{},{},{:.2}",
            self.switch_name,
            self.traffic_label,
            self.n,
            self.slots,
            self.offered_packets,
            self.delivered_packets,
            self.delay.mean(),
            self.delay.percentile(0.50),
            self.delay.percentile(0.95),
            self.delay.percentile(0.99),
            self.delay.max(),
            self.reordering.voq_reorder_events,
            self.reordering.flow_reorder_events,
            self.occupancy.mean_intermediate,
        )
    }
}

/// Header of a merged multi-run CSV: a leading `case` column (the suite
/// case label) followed by the standard [`SimReport::csv_header`] columns.
pub fn merged_csv_header() -> String {
    format!("case,{}", SimReport::csv_header())
}

/// Merge labeled reports into one CSV document — a single header plus one
/// row per report, in input order.  This is what the `suite` binary emits;
/// the determinism test asserts the output is byte-identical across worker
/// counts, so keep the formatting free of anything run-dependent.
pub fn merge_csv<'a>(rows: impl IntoIterator<Item = (&'a str, &'a SimReport)>) -> String {
    let mut out = merged_csv_header();
    out.push('\n');
    for (case, report) in rows {
        out.push_str(case);
        out.push(',');
        out.push_str(&report.csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> SimReport {
        let mut delay = DelayStats::new(100);
        delay.record(4);
        delay.record(6);
        SimReport {
            switch_name: "sprinklers".into(),
            traffic_label: "uniform".into(),
            n: 8,
            slots: 100,
            warmup_slots: 10,
            offered_packets: 200,
            delivered_packets: 190,
            padding_packets: 0,
            residual_packets: 10,
            delay,
            reordering: ReorderStats::default(),
            occupancy: OccupancyStats::default(),
        }
    }

    #[test]
    fn delivery_ratio_and_throughput() {
        let r = dummy();
        assert!((r.delivery_ratio() - 0.95).abs() < 1e-12);
        assert!((r.throughput() - 190.0 / 800.0).abs() < 1e-12);
    }

    #[test]
    fn csv_row_has_as_many_fields_as_the_header() {
        let r = dummy();
        let header_fields = SimReport::csv_header().split(',').count();
        let row_fields = r.csv_row().split(',').count();
        assert_eq!(header_fields, row_fields);
        assert!(r.csv_row().starts_with("sprinklers,uniform,8,"));
    }

    #[test]
    fn zero_offered_packets_is_a_full_delivery() {
        let mut r = dummy();
        r.offered_packets = 0;
        r.delivered_packets = 0;
        assert_eq!(r.delivery_ratio(), 1.0);
    }

    #[test]
    fn merged_csv_has_one_header_and_one_row_per_report() {
        let (a, b) = (dummy(), dummy());
        let csv = merge_csv([("case-a", &a), ("case-b", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], merged_csv_header());
        assert!(lines[1].starts_with("case-a,sprinklers,"));
        assert!(lines[2].starts_with("case-b,sprinklers,"));
        // Every row matches the header's column count.
        let cols = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == cols));
    }

    #[test]
    fn merging_nothing_is_just_the_header() {
        assert_eq!(merge_csv([]), format!("{}\n", merged_csv_header()));
    }
}
