//! Simulation reports.
//!
//! [`SimReport::csv_row`] is the frozen summary schema every golden fixture
//! pins byte for byte.  The extended observability surface — per-output
//! delivered counts, Jain fairness, the full delay histogram and the
//! windowed time series — ships as an *additive sidecar*
//! ([`SimReport::metrics_json`] / [`metrics_sidecar_json`]) so richer
//! metrics never move a byte of the CSV.

use crate::metrics::delay::DelayStats;
use crate::metrics::fairness::jain_index;
use crate::metrics::occupancy::OccupancyStats;
use crate::metrics::reorder::ReorderStats;
use crate::metrics::window::WindowSeries;
use crate::spec::{escape_json_string, FaultKind};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Per-kind breakdown of fault-injected packet losses plus the per-event
/// reconvergence record.  Produced by faulted fabric runs only; `None` on
/// the report means the run was failure-free (and therefore zero-drop).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Packets flushed off a link (ingress + wire) when it went down.
    pub dropped_link_failure: u64,
    /// Packets flushed out of a switch node when it went down.
    pub dropped_node_failure: u64,
    /// Packets that arrived at a link whose state was already down.
    pub dropped_dead_link: u64,
    /// Packets that arrived at (or were injected at) a node whose state was
    /// already down.
    pub dropped_dead_node: u64,
    /// Every applied fault event, in application order.
    pub events: Vec<FaultEventReport>,
}

impl FaultSummary {
    /// Total packets lost to fault injection, across every cause.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_link_failure
            + self.dropped_node_failure
            + self.dropped_dead_link
            + self.dropped_dead_node
    }
}

/// One applied fault event and how the fabric reconverged after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEventReport {
    /// Slot the event was applied at.
    pub slot: u64,
    /// What happened.
    pub kind: FaultKind,
    /// Link or node index (per the kind's entity class).
    pub index: usize,
    /// Packets dropped at the moment the event applied (in-flight losses).
    pub dropped: u64,
    /// Distinct host pairs that lost at least one packet to this event.
    pub affected_pairs: usize,
    /// Slot at which the last affected pair resumed delivery — the
    /// reconvergence metric is `reconverged_slot - slot`.  `None` while any
    /// affected pair has not delivered again (including "never", when the
    /// run ends first).  Up events and events that drop nothing reconverge
    /// immediately (`reconverged_slot == slot`).
    pub reconverged_slot: Option<u64>,
}

/// The result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Scheduling scheme name (from [`sprinklers_core::switch::Switch::name`]).
    pub switch_name: String,
    /// Traffic generator label.
    pub traffic_label: String,
    /// Switch size.
    pub n: usize,
    /// Number of arrival slots simulated (not counting the drain phase).
    pub slots: u64,
    /// Warm-up slots excluded from the delay statistics.
    pub warmup_slots: u64,
    /// Total packets offered to the switch.
    pub offered_packets: u64,
    /// Total data packets delivered to outputs (excludes padding).
    pub delivered_packets: u64,
    /// Padding (fake) packets delivered, for padding-based schemes.
    pub padding_packets: u64,
    /// Packets still inside the switch when the run ended (offered minus
    /// delivered minus dropped).
    pub residual_packets: u64,
    /// Packets lost to fault injection (always zero without a fault spec).
    pub dropped_packets: u64,
    /// Delay statistics over delivered packets that arrived after warm-up.
    pub delay: DelayStats,
    /// Reordering statistics over every delivered data packet.
    pub reordering: ReorderStats,
    /// Queue occupancy statistics (sampled once per frame).
    pub occupancy: OccupancyStats,
    /// Data packets delivered per output port (index = output).
    pub per_output_delivered: Vec<u64>,
    /// Windowed activity series, sampled at the occupancy boundaries.
    pub windows: WindowSeries,
    /// Fault-injection summary (loss breakdown and per-event reconvergence);
    /// `None` for failure-free runs.
    pub faults: Option<FaultSummary>,
}

impl SimReport {
    /// Fraction of offered packets that were delivered by the end of the run
    /// (including the drain phase).
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered_packets == 0 {
            return 1.0;
        }
        self.delivered_packets as f64 / self.offered_packets as f64
    }

    /// Normalized throughput: delivered packets per output per slot during the
    /// arrival phase.
    pub fn throughput(&self) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        self.delivered_packets as f64 / (self.slots as f64 * self.n as f64)
    }

    /// Header row for the CSV emitted by the experiment binaries.
    pub fn csv_header() -> &'static str {
        "switch,traffic,n,slots,offered,delivered,mean_delay,p50_delay,p95_delay,p99_delay,\
         max_delay,voq_reorders,flow_reorders,mean_intermediate_occupancy"
    }

    /// One CSV row summarizing this report.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{:.3},{},{},{},{},{},{},{:.2}",
            self.switch_name,
            self.traffic_label,
            self.n,
            self.slots,
            self.offered_packets,
            self.delivered_packets,
            self.delay.mean(),
            self.delay.percentile(0.50),
            self.delay.percentile(0.95),
            self.delay.percentile(0.99),
            self.delay.max(),
            self.reordering.voq_reorder_events,
            self.reordering.flow_reorder_events,
            self.occupancy.mean_intermediate,
        )
    }

    /// Jain's fairness index over the per-output delivered-packet counts:
    /// 1.0 when every output received an equal share, `1/n` in the limit of
    /// a single hot output.
    pub fn jain_fairness(&self) -> f64 {
        jain_index(&self.per_output_delivered)
    }

    /// Per-output utilization: each output's delivered data packets per
    /// arrival-phase slot (an output can forward at most one packet per
    /// slot, so values lie in `[0, 1]` up to drain-phase spillover).
    pub fn per_output_utilization(&self) -> Vec<f64> {
        let slots = self.slots;
        self.per_output_delivered
            .iter()
            .map(|&d| {
                if slots == 0 {
                    0.0
                } else {
                    d as f64 / slots as f64
                }
            })
            .collect()
    }

    /// The full extended-metrics sidecar for this run as one line of JSON:
    /// identity and conservation counters, exact delay distribution
    /// (non-empty histogram buckets), reordering, occupancy, per-output
    /// delivered/utilization, Jain fairness and the windowed series.
    ///
    /// Deliberately *additive*: nothing here feeds [`Self::csv_row`], so the
    /// sidecar can grow without touching any golden CSV.  The output is
    /// deterministic (same report, same bytes) because every value derives
    /// from the report alone.
    pub fn metrics_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":\"sprinklers-metrics/1\"");
        let _ = write!(
            out,
            ",\"switch\":\"{}\",\"traffic\":\"{}\",\"n\":{},\"slots\":{},\"warmup_slots\":{}",
            escape_json_string(&self.switch_name),
            escape_json_string(&self.traffic_label),
            self.n,
            self.slots,
            self.warmup_slots,
        );
        let _ = write!(
            out,
            ",\"offered\":{},\"delivered\":{},\"padding\":{},\"residual\":{},\"dropped\":{}",
            self.offered_packets,
            self.delivered_packets,
            self.padding_packets,
            self.residual_packets,
            self.dropped_packets,
        );
        let _ = write!(
            out,
            ",\"throughput\":{},\"delivery_ratio\":{}",
            json_num(self.throughput()),
            json_num(self.delivery_ratio()),
        );
        let _ = write!(
            out,
            ",\"delay\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\
             \"histogram\":[",
            self.delay.count(),
            json_num(self.delay.mean()),
            self.delay.percentile(0.50),
            self.delay.percentile(0.95),
            self.delay.percentile(0.99),
            self.delay.max(),
        );
        for (i, (delay, count)) in self.delay.nonzero_buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{delay},{count}]");
        }
        let _ = write!(
            out,
            "]}},\"reordering\":{{\"voq_reorder_events\":{},\"flow_reorder_events\":{},\
             \"max_voq_displacement\":{},\"reordered_voqs\":{}}}",
            self.reordering.voq_reorder_events,
            self.reordering.flow_reorder_events,
            self.reordering.max_voq_displacement,
            self.reordering.reordered_voqs,
        );
        let _ = write!(
            out,
            ",\"occupancy\":{{\"samples\":{},\"mean_input\":{},\"mean_intermediate\":{},\
             \"mean_output\":{},\"peak_input\":{},\"peak_intermediate\":{},\"peak_output\":{}}}",
            self.occupancy.samples,
            json_num(self.occupancy.mean_input),
            json_num(self.occupancy.mean_intermediate),
            json_num(self.occupancy.mean_output),
            self.occupancy.peak_input,
            self.occupancy.peak_intermediate,
            self.occupancy.peak_output,
        );
        out.push_str(",\"per_output_delivered\":[");
        for (i, d) in self.per_output_delivered.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{d}");
        }
        out.push_str("],\"per_output_utilization\":[");
        for (i, u) in self.per_output_utilization().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_num(*u));
        }
        let _ = write!(
            out,
            "],\"jain_fairness\":{}",
            json_num(self.jain_fairness())
        );
        let _ = write!(
            out,
            ",\"windows\":{{\"stride_slots\":{},\"columns\":[\"end_slot\",\"offered\",\
             \"delivered\",\"padding\",\"dropped\",\"queued_at_inputs\",\
             \"queued_at_intermediates\",\"queued_at_outputs\"],\"samples\":[",
            self.windows.stride(),
        );
        for (i, s) in self.windows.samples().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "[{},{},{},{},{},{},{},{}]",
                s.end_slot,
                s.offered,
                s.delivered,
                s.padding,
                s.dropped,
                s.queued_at_inputs,
                s.queued_at_intermediates,
                s.queued_at_outputs,
            );
        }
        out.push_str("]}");
        if let Some(faults) = &self.faults {
            let _ = write!(
                out,
                ",\"faults\":{{\"dropped_by_cause\":{{\"link_failure\":{},\
                 \"node_failure\":{},\"dead_link\":{},\"dead_node\":{}}},\"events\":[",
                faults.dropped_link_failure,
                faults.dropped_node_failure,
                faults.dropped_dead_link,
                faults.dropped_dead_node,
            );
            for (i, e) in faults.events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let reconvergence = match e.reconverged_slot {
                    Some(s) => (s - e.slot).to_string(),
                    None => "null".to_string(),
                };
                let _ = write!(
                    out,
                    "{{\"slot\":{},\"kind\":\"{}\",\"index\":{},\"dropped\":{},\
                     \"affected_pairs\":{},\"reconvergence_slots\":{}}}",
                    e.slot,
                    e.kind.name(),
                    e.index,
                    e.dropped,
                    e.affected_pairs,
                    reconvergence,
                );
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

/// Render an `f64` as a JSON value: shortest round-trip decimal for finite
/// values, `null` for NaN/infinity (which raw `Display` would emit as the
/// invalid bare tokens `NaN`/`inf`).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Header of a merged multi-run CSV: a leading `case` column (the suite
/// case label) followed by the standard [`SimReport::csv_header`] columns.
pub fn merged_csv_header() -> String {
    format!("case,{}", SimReport::csv_header())
}

/// Merge labeled reports into one CSV document — a single header plus one
/// row per report, in input order.  This is what the `suite` binary emits;
/// the determinism test asserts the output is byte-identical across worker
/// counts, so keep the formatting free of anything run-dependent.
pub fn merge_csv<'a>(rows: impl IntoIterator<Item = (&'a str, &'a SimReport)>) -> String {
    merge_csv_rows(
        rows.into_iter()
            .map(|(case, report)| (case, report.csv_row())),
    )
}

/// [`merge_csv`] over already-rendered CSV rows.  This is the layer the
/// experiment cache reuses: a cached case contributes its stored
/// [`SimReport::csv_row`] string and a recomputed case a fresh one, through
/// the same formatting path — which is what makes cached and recomputed
/// suite output byte-identical.
pub fn merge_csv_rows<'a>(rows: impl IntoIterator<Item = (&'a str, String)>) -> String {
    let mut out = merged_csv_header();
    out.push('\n');
    for (case, row) in rows {
        debug_assert!(
            !case.contains(',') && !case.contains('\n') && !case.contains('\r'),
            "case names are validated at load time (SuiteSpec::load_cases)"
        );
        out.push_str(case);
        out.push(',');
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Compose the suite-level `--metrics full` sidecar: one JSON document
/// listing each case's [`SimReport::metrics_json`] line, in merge order.
pub fn metrics_sidecar_json<'a>(cases: impl IntoIterator<Item = (&'a str, &'a str)>) -> String {
    let mut out = String::from("{\"schema\":\"sprinklers-suite-metrics/1\",\"cases\":[");
    for (i, (case, metrics)) in cases.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"case\":\"");
        out.push_str(&escape_json_string(case));
        out.push_str("\",\"metrics\":");
        out.push_str(metrics);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> SimReport {
        let mut delay = DelayStats::new(100);
        delay.record(4);
        delay.record(6);
        SimReport {
            switch_name: "sprinklers".into(),
            traffic_label: "uniform".into(),
            n: 8,
            slots: 100,
            warmup_slots: 10,
            offered_packets: 200,
            delivered_packets: 190,
            padding_packets: 0,
            residual_packets: 10,
            dropped_packets: 0,
            delay,
            reordering: ReorderStats::default(),
            occupancy: OccupancyStats::default(),
            per_output_delivered: vec![24, 24, 24, 24, 24, 24, 23, 23],
            windows: WindowSeries::default(),
            faults: None,
        }
    }

    #[test]
    fn delivery_ratio_and_throughput() {
        let r = dummy();
        assert!((r.delivery_ratio() - 0.95).abs() < 1e-12);
        assert!((r.throughput() - 190.0 / 800.0).abs() < 1e-12);
    }

    #[test]
    fn csv_row_has_as_many_fields_as_the_header() {
        let r = dummy();
        let header_fields = SimReport::csv_header().split(',').count();
        let row_fields = r.csv_row().split(',').count();
        assert_eq!(header_fields, row_fields);
        assert!(r.csv_row().starts_with("sprinklers,uniform,8,"));
    }

    #[test]
    fn zero_offered_packets_is_a_full_delivery() {
        let mut r = dummy();
        r.offered_packets = 0;
        r.delivered_packets = 0;
        assert_eq!(r.delivery_ratio(), 1.0);
    }

    #[test]
    fn merged_csv_has_one_header_and_one_row_per_report() {
        let (a, b) = (dummy(), dummy());
        let csv = merge_csv([("case-a", &a), ("case-b", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], merged_csv_header());
        assert!(lines[1].starts_with("case-a,sprinklers,"));
        assert!(lines[2].starts_with("case-b,sprinklers,"));
        // Every row matches the header's column count.
        let cols = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == cols));
    }

    #[test]
    fn merging_nothing_is_just_the_header() {
        assert_eq!(merge_csv([]), format!("{}\n", merged_csv_header()));
    }

    #[test]
    fn merge_csv_rows_reproduces_merge_csv_byte_for_byte() {
        let (a, b) = (dummy(), dummy());
        let direct = merge_csv([("case-a", &a), ("case-b", &b)]);
        let via_rows = merge_csv_rows([("case-a", a.csv_row()), ("case-b", b.csv_row())]);
        assert_eq!(direct, via_rows);
    }

    #[test]
    fn jain_and_utilization_are_derived_from_per_output_counts() {
        let mut r = dummy();
        let j = r.jain_fairness();
        assert!(j > 0.999 && j <= 1.0, "near-uniform counts: {j}");
        r.per_output_delivered = vec![190, 0, 0, 0, 0, 0, 0, 0];
        assert!((r.jain_fairness() - 1.0 / 8.0).abs() < 1e-12);
        let util = r.per_output_utilization();
        assert_eq!(util.len(), 8);
        assert!((util[0] - 1.9).abs() < 1e-12, "190 packets / 100 slots");
        assert_eq!(util[1], 0.0);
        r.slots = 0;
        assert!(r.per_output_utilization().iter().all(|&u| u == 0.0));
    }

    #[test]
    fn metrics_json_is_additive_and_carries_the_extended_surface() {
        let r = dummy();
        let json = r.metrics_json();
        assert!(!json.contains('\n'), "sidecar lines must stay single-line");
        for key in [
            "\"schema\":\"sprinklers-metrics/1\"",
            "\"histogram\":[[4,1],[6,1]]",
            "\"per_output_delivered\":[24,24,24,24,24,24,23,23]",
            "\"jain_fairness\":",
            "\"windows\":{\"stride_slots\":",
            "\"per_output_utilization\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced delimiters: a cheap structural check that the hand-rolled
        // writer did not drop a bracket (no strings in the dummy contain
        // braces, so raw counting is sound here).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // And it never leaks into the frozen CSV surface.
        assert_eq!(SimReport::csv_header().split(',').count(), 14);
    }

    #[test]
    fn fault_free_reports_omit_the_faults_block() {
        let json = dummy().metrics_json();
        assert!(json.contains("\"dropped\":0"), "{json}");
        assert!(!json.contains("\"faults\""), "{json}");
    }

    #[test]
    fn faulted_reports_carry_the_loss_breakdown_and_reconvergence() {
        let mut r = dummy();
        r.dropped_packets = 7;
        r.faults = Some(FaultSummary {
            dropped_link_failure: 4,
            dropped_node_failure: 2,
            dropped_dead_link: 1,
            dropped_dead_node: 0,
            events: vec![
                FaultEventReport {
                    slot: 40,
                    kind: FaultKind::LinkDown,
                    index: 3,
                    dropped: 4,
                    affected_pairs: 2,
                    reconverged_slot: Some(55),
                },
                FaultEventReport {
                    slot: 80,
                    kind: FaultKind::NodeDown,
                    index: 1,
                    dropped: 3,
                    affected_pairs: 1,
                    reconverged_slot: None,
                },
            ],
        });
        assert_eq!(r.faults.as_ref().unwrap().total_dropped(), 7);
        let json = r.metrics_json();
        for key in [
            "\"dropped\":7",
            "\"faults\":{\"dropped_by_cause\":{\"link_failure\":4,\"node_failure\":2,\
             \"dead_link\":1,\"dead_node\":0}",
            "{\"slot\":40,\"kind\":\"link-down\",\"index\":3,\"dropped\":4,\
             \"affected_pairs\":2,\"reconvergence_slots\":15}",
            "\"reconvergence_slots\":null",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains('\n'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The frozen CSV surface is untouched by fault data.
        assert_eq!(SimReport::csv_header().split(',').count(), 14);
        assert_eq!(r.csv_row().split(',').count(), 14);
    }

    #[test]
    fn metrics_json_escapes_hostile_labels_and_handles_nonfinite() {
        let mut r = dummy();
        r.traffic_label = "evil\"label\\with\nnewline".into();
        let json = r.metrics_json();
        assert!(json.contains(r#"evil\"label\\with\nnewline"#));
        assert!(!json.contains('\n'));
        // Non-finite derived values render as null, not invalid tokens.
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(0.25), "0.25");
    }

    #[test]
    fn sidecar_document_lists_cases_in_order() {
        let r = dummy();
        let m = r.metrics_json();
        let doc = metrics_sidecar_json([("first", m.as_str()), ("second", m.as_str())]);
        assert!(doc.starts_with("{\"schema\":\"sprinklers-suite-metrics/1\""));
        let first = doc.find("\"case\":\"first\"").unwrap();
        let second = doc.find("\"case\":\"second\"").unwrap();
        assert!(first < second);
        assert_eq!(doc.matches("\"case\":").count(), 2);
        assert!(doc.ends_with("]}\n"));
    }
}
