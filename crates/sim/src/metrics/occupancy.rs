//! Queue occupancy sampling.
//!
//! The simulator samples the switch's [`sprinklers_core::switch::SwitchStats`]
//! once per frame (N slots) and aggregates mean and peak occupancy per stage.
//! The intermediate-stage mean is what §5's Markov model predicts, so the
//! integration tests compare the two.

use serde::{Deserialize, Serialize};
use sprinklers_core::switch::SwitchStats;

/// Aggregated occupancy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OccupancyStats {
    /// Number of samples taken.
    pub samples: u64,
    /// Mean packets buffered at input ports.
    pub mean_input: f64,
    /// Mean packets buffered at intermediate ports.
    pub mean_intermediate: f64,
    /// Mean packets buffered at output resequencers.
    pub mean_output: f64,
    /// Peak packets buffered at input ports.
    pub peak_input: usize,
    /// Peak packets buffered at intermediate ports.
    pub peak_intermediate: usize,
    /// Peak packets buffered at output resequencers.
    pub peak_output: usize,
}

/// Streaming occupancy aggregator.
#[derive(Debug, Clone, Default)]
pub struct OccupancySampler {
    samples: u64,
    sum_input: u128,
    sum_intermediate: u128,
    sum_output: u128,
    peak_input: usize,
    peak_intermediate: usize,
    peak_output: usize,
}

impl OccupancySampler {
    /// Create an empty sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one snapshot of the switch's queue occupancy.
    pub fn sample(&mut self, stats: &SwitchStats) {
        self.samples += 1;
        self.sum_input += stats.queued_at_inputs as u128;
        self.sum_intermediate += stats.queued_at_intermediates as u128;
        self.sum_output += stats.queued_at_outputs as u128;
        self.peak_input = self.peak_input.max(stats.queued_at_inputs);
        self.peak_intermediate = self.peak_intermediate.max(stats.queued_at_intermediates);
        self.peak_output = self.peak_output.max(stats.queued_at_outputs);
    }

    /// Finalize into aggregate statistics.
    pub fn stats(&self) -> OccupancyStats {
        let denom = self.samples.max(1) as f64;
        OccupancyStats {
            samples: self.samples,
            mean_input: self.sum_input as f64 / denom,
            mean_intermediate: self.sum_intermediate as f64 / denom,
            mean_output: self.sum_output as f64 / denom,
            peak_input: self.peak_input,
            peak_intermediate: self.peak_intermediate,
            peak_output: self.peak_output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(inp: usize, mid: usize, out: usize) -> SwitchStats {
        SwitchStats {
            queued_at_inputs: inp,
            queued_at_intermediates: mid,
            queued_at_outputs: out,
            total_arrivals: 0,
            total_departures: 0,
            total_dropped: 0,
        }
    }

    #[test]
    fn empty_sampler_reports_zeroes() {
        let s = OccupancySampler::new().stats();
        assert_eq!(s.samples, 0);
        assert_eq!(s.mean_input, 0.0);
        assert_eq!(s.peak_intermediate, 0);
    }

    #[test]
    fn means_and_peaks_are_correct() {
        let mut s = OccupancySampler::new();
        s.sample(&snap(2, 10, 0));
        s.sample(&snap(4, 20, 6));
        let stats = s.stats();
        assert_eq!(stats.samples, 2);
        assert!((stats.mean_input - 3.0).abs() < 1e-12);
        assert!((stats.mean_intermediate - 15.0).abs() < 1e-12);
        assert!((stats.mean_output - 3.0).abs() < 1e-12);
        assert_eq!(stats.peak_input, 4);
        assert_eq!(stats.peak_intermediate, 20);
        assert_eq!(stats.peak_output, 6);
    }
}
