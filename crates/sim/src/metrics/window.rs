//! Windowed time series of per-frame simulation activity.
//!
//! Whole-run means hide transients: a burst that floods the intermediate
//! stage for a thousand slots and drains for ten thousand looks identical to
//! a steady trickle.  `WindowSeries` records, at every occupancy sampling
//! boundary the engine already honors (once per frame of N slots), how many
//! packets were offered, delivered and dropped *in that window* and the
//! queue occupancy at its end — so phase changes, bursts, drain behavior and
//! fault-induced delivery dips are visible in the `--metrics full` sidecar
//! without touching the CSV schema.
//!
//! Samples are taken at the same slots in slot-at-a-time and batched
//! stepping, so the series — like every other report field — is
//! byte-identical at any `batch`, `threads` or worker count.

use serde::{Deserialize, Serialize};
use sprinklers_core::switch::SwitchStats;

/// One window's activity: deltas since the previous sample plus the queue
/// occupancy snapshot at the window's end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSample {
    /// Exclusive end slot: the window covers `[previous end, end_slot)`.
    pub end_slot: u64,
    /// Packets offered to the switch during the window.
    pub offered: u64,
    /// Data packets delivered during the window.
    pub delivered: u64,
    /// Padding packets delivered during the window.
    pub padding: u64,
    /// Packets dropped by fault injection during the window (always zero
    /// for single switches and healthy fabrics).
    pub dropped: u64,
    /// Packets buffered at input ports at the window's end.
    pub queued_at_inputs: usize,
    /// Packets buffered at intermediate ports at the window's end.
    pub queued_at_intermediates: usize,
    /// Packets buffered at output resequencers at the window's end.
    pub queued_at_outputs: usize,
}

/// A run's windowed activity series.  Window sums are conserved: the deltas
/// across all samples add up exactly to the run totals (the differential
/// test in `tests/` pins this for every registry scheme).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSeries {
    /// Nominal window length in slots (the sampling period, N); the final
    /// tail window may be shorter.
    stride: u64,
    samples: Vec<WindowSample>,
    last_end_slot: u64,
    last_offered: u64,
    last_delivered: u64,
    last_padding: u64,
    last_dropped: u64,
}

impl WindowSeries {
    /// Create an empty series with the given sampling stride (slots per
    /// window; the engine uses the switch size N).
    pub fn new(stride: u64) -> Self {
        WindowSeries {
            stride: stride.max(1),
            ..WindowSeries::default()
        }
    }

    /// Nominal slots per window.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The recorded samples, in time order.
    pub fn samples(&self) -> &[WindowSample] {
        &self.samples
    }

    /// Record the window ending at `end_slot` (exclusive) from *cumulative*
    /// run counters; the series keeps the deltas.  The drop counter rides in
    /// on `stats.total_dropped`, which is already cumulative.
    pub fn record(
        &mut self,
        end_slot: u64,
        offered_total: u64,
        delivered_total: u64,
        padding_total: u64,
        stats: &SwitchStats,
    ) {
        self.samples.push(WindowSample {
            end_slot,
            offered: offered_total - self.last_offered,
            delivered: delivered_total - self.last_delivered,
            padding: padding_total - self.last_padding,
            dropped: stats.total_dropped - self.last_dropped,
            queued_at_inputs: stats.queued_at_inputs,
            queued_at_intermediates: stats.queued_at_intermediates,
            queued_at_outputs: stats.queued_at_outputs,
        });
        self.last_end_slot = end_slot;
        self.last_offered = offered_total;
        self.last_delivered = delivered_total;
        self.last_padding = padding_total;
        self.last_dropped = stats.total_dropped;
    }

    /// Record the partial tail window at the end of a run, if it holds any
    /// activity: a run whose total slot count is not a multiple of the
    /// stride ends between sampling boundaries, and the conservation
    /// property (window sums == run totals) requires that remainder to be
    /// captured.  A quiet tail (no counter moved) is skipped so the series
    /// stays free of empty trailing entries.
    pub fn finish(
        &mut self,
        end_slot: u64,
        offered_total: u64,
        delivered_total: u64,
        padding_total: u64,
        stats: &SwitchStats,
    ) {
        let moved = offered_total != self.last_offered
            || delivered_total != self.last_delivered
            || padding_total != self.last_padding
            || stats.total_dropped != self.last_dropped;
        if end_slot > self.last_end_slot && moved {
            self.record(
                end_slot,
                offered_total,
                delivered_total,
                padding_total,
                stats,
            );
        }
    }

    /// Sum of per-window offered counts (equals the run total by
    /// construction once [`Self::finish`] has run).
    pub fn total_offered(&self) -> u64 {
        self.samples.iter().map(|s| s.offered).sum()
    }

    /// Sum of per-window delivered counts.
    pub fn total_delivered(&self) -> u64 {
        self.samples.iter().map(|s| s.delivered).sum()
    }

    /// Sum of per-window padding counts.
    pub fn total_padding(&self) -> u64 {
        self.samples.iter().map(|s| s.padding).sum()
    }

    /// Sum of per-window dropped counts.
    pub fn total_dropped(&self) -> u64 {
        self.samples.iter().map(|s| s.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(inp: usize, mid: usize, out: usize) -> SwitchStats {
        SwitchStats {
            queued_at_inputs: inp,
            queued_at_intermediates: mid,
            queued_at_outputs: out,
            total_arrivals: 0,
            total_departures: 0,
            total_dropped: 0,
        }
    }

    #[test]
    fn deltas_are_taken_between_consecutive_samples() {
        let mut w = WindowSeries::new(8);
        w.record(8, 10, 4, 0, &stats(3, 2, 1));
        w.record(16, 25, 20, 2, &stats(0, 0, 0));
        assert_eq!(w.samples().len(), 2);
        assert_eq!(w.samples()[0].offered, 10);
        assert_eq!(w.samples()[1].offered, 15);
        assert_eq!(w.samples()[1].delivered, 16);
        assert_eq!(w.samples()[1].padding, 2);
        assert_eq!(w.total_offered(), 25);
        assert_eq!(w.total_delivered(), 20);
    }

    #[test]
    fn dropped_deltas_follow_the_cumulative_counter() {
        let mut w = WindowSeries::new(8);
        let mut s = stats(0, 0, 0);
        s.total_dropped = 3;
        w.record(8, 10, 5, 0, &s);
        s.total_dropped = 7;
        w.record(16, 20, 10, 0, &s);
        assert_eq!(w.samples()[0].dropped, 3);
        assert_eq!(w.samples()[1].dropped, 4);
        assert_eq!(w.total_dropped(), 7);
        // A tail where only drops moved is still captured.
        s.total_dropped = 9;
        w.finish(19, 20, 10, 0, &s);
        assert_eq!(w.samples().len(), 3);
        assert_eq!(w.samples()[2].dropped, 2);
    }

    #[test]
    fn finish_captures_a_partial_tail_only_when_it_moved() {
        let mut w = WindowSeries::new(8);
        w.record(8, 10, 10, 0, &stats(0, 0, 0));
        // Quiet tail: nothing moved, nothing recorded.
        w.finish(11, 10, 10, 0, &stats(0, 0, 0));
        assert_eq!(w.samples().len(), 1);
        // Active tail: the remainder window is captured.
        let mut w = WindowSeries::new(8);
        w.record(8, 10, 6, 0, &stats(4, 0, 0));
        w.finish(11, 10, 10, 0, &stats(0, 0, 0));
        assert_eq!(w.samples().len(), 2);
        assert_eq!(w.samples()[1].end_slot, 11);
        assert_eq!(w.samples()[1].delivered, 4);
        assert_eq!(w.total_delivered(), 10);
    }

    #[test]
    fn finish_never_duplicates_a_boundary_sample() {
        let mut w = WindowSeries::new(4);
        w.record(4, 5, 5, 0, &stats(0, 0, 0));
        w.finish(4, 5, 5, 0, &stats(0, 0, 0));
        assert_eq!(w.samples().len(), 1);
    }

    #[test]
    fn stride_is_at_least_one() {
        assert_eq!(WindowSeries::new(0).stride(), 1);
        assert_eq!(WindowSeries::new(16).stride(), 16);
    }
}
