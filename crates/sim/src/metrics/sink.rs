//! The metrics pipeline as a [`DeliverySink`].
//!
//! `MetricsSink` is how the engine consumes deliveries: instead of collecting
//! packets into a `Vec` and iterating afterwards, the switch pushes each
//! delivered packet straight into the delay histogram and the reordering
//! detector.  After warm-up the `deliver` path touches only preallocated
//! state, so a steady-state simulation slot performs no heap allocation
//! end to end.

use crate::metrics::delay::DelayStats;
use crate::metrics::reorder::{ReorderDetector, ReorderStats};
use sprinklers_core::packet::DeliveredPacket;
use sprinklers_core::switch::DeliverySink;

/// A delivery sink that feeds the delay and reordering metrics in place.
#[derive(Debug, Clone)]
pub struct MetricsSink {
    delay: DelayStats,
    reorder: ReorderDetector,
    delivered: u64,
    padding: u64,
    warmup_slots: u64,
    /// Data packets delivered per output port (index = output).  Sized once
    /// at construction, so the deliver path stays allocation-free.
    per_output: Vec<u64>,
}

impl MetricsSink {
    /// Create a sink for a switch with `n` output ports; packets that
    /// *arrived* before `warmup_slots` are excluded from the delay
    /// statistics (they still count for reordering and conservation).
    pub fn new(warmup_slots: u64, n: usize) -> Self {
        MetricsSink {
            delay: DelayStats::default(),
            reorder: ReorderDetector::new(),
            delivered: 0,
            padding: 0,
            warmup_slots,
            per_output: vec![0; n],
        }
    }

    /// Data packets delivered so far.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered
    }

    /// Padding packets delivered so far.
    pub fn padding_packets(&self) -> u64 {
        self.padding
    }

    /// Data packets delivered so far per output port.
    pub fn per_output_delivered(&self) -> &[u64] {
        &self.per_output
    }

    /// Reordering statistics accumulated so far.
    pub fn reordering(&self) -> ReorderStats {
        self.reorder.stats()
    }

    /// Borrow the delay statistics.
    pub fn delay(&self) -> &DelayStats {
        &self.delay
    }

    /// Consume the sink, returning its accumulated pieces.
    pub fn into_parts(self) -> SinkTotals {
        let reordering = self.reorder.stats();
        SinkTotals {
            delay: self.delay,
            reordering,
            delivered: self.delivered,
            padding: self.padding,
            per_output_delivered: self.per_output,
        }
    }
}

/// Everything a finished [`MetricsSink`] accumulated, by value.
#[derive(Debug, Clone)]
pub struct SinkTotals {
    /// Delay statistics over post-warm-up deliveries.
    pub delay: DelayStats,
    /// Reordering statistics over every data delivery.
    pub reordering: ReorderStats,
    /// Total data packets delivered.
    pub delivered: u64,
    /// Total padding packets delivered.
    pub padding: u64,
    /// Data packets delivered per output port.
    pub per_output_delivered: Vec<u64>,
}

impl DeliverySink for MetricsSink {
    fn deliver(&mut self, delivered: DeliveredPacket) {
        if delivered.packet.is_padding() {
            self.padding += 1;
            return;
        }
        self.delivered += 1;
        self.per_output[delivered.packet.output()] += 1;
        self.reorder.observe(&delivered.packet);
        if delivered.packet.arrival_slot >= self.warmup_slots {
            self.delay.record(delivered.delay());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprinklers_core::packet::Packet;

    fn delivery(seq: u64, arrival: u64, departure: u64) -> DeliveredPacket {
        DeliveredPacket::new(Packet::new(0, 1, seq, arrival).with_voq_seq(seq), departure)
    }

    #[test]
    fn counts_and_measures_post_warmup_packets() {
        let mut sink = MetricsSink::new(10, 4);
        sink.deliver(delivery(0, 5, 8)); // pre-warm-up arrival: counted, not measured
        sink.deliver(delivery(1, 12, 20)); // measured, delay 8
        assert_eq!(sink.delivered_packets(), 2);
        assert_eq!(sink.delay().count(), 1);
        assert_eq!(sink.delay().max(), 8);
        assert!(sink.reordering().is_ordered());
    }

    #[test]
    fn padding_is_counted_separately_and_ignored_by_metrics() {
        let mut sink = MetricsSink::new(0, 4);
        sink.deliver(DeliveredPacket::new(Packet::padding(0, 1, 0), 4));
        assert_eq!(sink.delivered_packets(), 0);
        assert_eq!(sink.padding_packets(), 1);
        assert_eq!(sink.delay().count(), 0);
        assert_eq!(sink.per_output_delivered(), &[0, 0, 0, 0]);
    }

    #[test]
    fn reordering_is_observed_through_the_sink() {
        let mut sink = MetricsSink::new(0, 4);
        sink.deliver(delivery(3, 0, 1));
        sink.deliver(delivery(1, 0, 2));
        assert!(!sink.reordering().is_ordered());
        assert_eq!(sink.reordering().voq_reorder_events, 1);
    }

    #[test]
    fn per_output_counts_follow_each_packet_destination() {
        let mut sink = MetricsSink::new(0, 4);
        let to = |output: usize, seq: u64| {
            DeliveredPacket::new(Packet::new(0, output, seq, 0).with_voq_seq(seq), 1)
        };
        sink.deliver(to(1, 0));
        sink.deliver(to(1, 1));
        sink.deliver(to(3, 0));
        // Padding never counts toward an output's delivered share.
        sink.deliver(DeliveredPacket::new(Packet::padding(0, 1, 0), 1));
        assert_eq!(sink.per_output_delivered(), &[0, 2, 0, 1]);
        let totals = sink.into_parts();
        assert_eq!(totals.per_output_delivered, vec![0, 2, 0, 1]);
        assert_eq!(
            totals.per_output_delivered.iter().sum::<u64>(),
            totals.delivered
        );
    }
}
