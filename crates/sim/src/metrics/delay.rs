//! Packet delay statistics.
//!
//! Delays are accumulated in an exact histogram (one bucket per slot of delay
//! up to a configurable cap, plus an overflow bucket tracked by exact values),
//! so means are exact and percentiles are exact up to the cap.

use serde::{Deserialize, Serialize};

/// Histogram-based delay statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DelayStats {
    /// `histogram[d]` counts packets with delay exactly `d` slots, `d < cap`.
    histogram: Vec<u64>,
    /// Delays `≥ cap`, as sorted `(delay, count)` pairs.  Exact like the
    /// histogram, but sized by *distinct* overflow values, so recording or
    /// merging a million copies of one pathological delay costs one entry —
    /// not a million — and percentile walks need no sort.
    overflow: Vec<(u64, u64)>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for DelayStats {
    fn default() -> Self {
        Self::new(1 << 16)
    }
}

impl DelayStats {
    /// Create delay statistics with the given histogram cap (delays above the
    /// cap are still counted exactly, just stored individually).
    pub fn new(cap: usize) -> Self {
        DelayStats {
            histogram: vec![0; cap.max(1)],
            overflow: Vec::new(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one packet delay (in slots).
    pub fn record(&mut self, delay: u64) {
        self.count += 1;
        self.sum += u128::from(delay);
        self.max = self.max.max(delay);
        if (delay as usize) < self.histogram.len() {
            self.histogram[delay as usize] += 1;
        } else {
            self.add_overflow(delay, 1);
        }
    }

    /// Count `count` packets of an above-cap `delay`, keeping `overflow`
    /// sorted and deduplicated.
    fn add_overflow(&mut self, delay: u64, count: u64) {
        match self.overflow.binary_search_by_key(&delay, |&(d, _)| d) {
            Ok(i) => self.overflow[i].1 += count,
            Err(i) => self.overflow.insert(i, (delay, count)),
        }
    }

    /// Number of recorded packets.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean delay in slots (0 if nothing was recorded).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum recorded delay.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact delay percentile (e.g. `0.5` for the median, `0.99` for p99).
    ///
    /// The rank is `ceil(count · p)` computed in integer arithmetic against
    /// the exact rational value the `f64` encodes.  The obvious
    /// `(p * count as f64).ceil()` is wrong near integer boundaries: the f64
    /// product rounds to nearest, so e.g. `0.1 × 10` rounds *down* to exactly
    /// `1.0` even though the rational product `10 · 0.1f64` is strictly above
    /// 1, silently shifting the reported rank by one.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p));
        if self.count == 0 {
            return 0;
        }
        let target = ceil_rank(self.count, p).clamp(1, self.count);
        let mut acc = 0u64;
        for (d, &c) in self.histogram.iter().enumerate() {
            acc += c;
            if acc >= target {
                return d as u64;
            }
        }
        // `overflow` is already sorted, so the cumulative walk simply
        // continues past the histogram — no clone, no sort.
        for &(d, c) in &self.overflow {
            acc += c;
            if acc >= target {
                return d;
            }
        }
        self.max
    }

    /// Iterate over the non-empty histogram buckets as `(delay, count)`
    /// pairs in ascending delay order, histogram and overflow alike — the
    /// full exact distribution, for sidecar export.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.histogram
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(d, &c)| (d as u64, c))
            .chain(self.overflow.iter().copied())
    }

    /// Merge another set of statistics into this one.  Caps may differ:
    /// `other`'s delays are re-bucketed against *this* histogram's cap, so
    /// above-cap mass stays `(delay, count)`-compressed (never expanded one
    /// entry per packet) and below-cap mass lands in the histogram where the
    /// percentile walk expects it.
    pub fn merge(&mut self, other: &DelayStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (d, &c) in other.histogram.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if d < self.histogram.len() {
                self.histogram[d] += c;
            } else {
                self.add_overflow(d as u64, c);
            }
        }
        for &(d, c) in &other.overflow {
            if (d as usize) < self.histogram.len() {
                self.histogram[d as usize] += c;
            } else {
                self.add_overflow(d, c);
            }
        }
    }
}

/// Exact `ceil(count · p)` where `p` is the rational value its `f64`
/// encoding denotes: `mant · 2^exp` with `mant < 2^53`.  `count · mant`
/// fits u128 (`< 2^64 · 2^53 = 2^117`), and for `p ≤ 1` the exponent is
/// always negative (at most `-52`, reached by `p = 1.0`), so the product
/// only ever shifts right.
fn ceil_rank(count: u64, p: f64) -> u64 {
    let bits = p.to_bits();
    let exp_field = (bits >> 52) & 0x7ff;
    let frac = bits & ((1u64 << 52) - 1);
    // Subnormals (exp_field == 0) have no implicit leading bit and a fixed
    // exponent of -1074; normals get the implicit bit and a biased exponent.
    let (mant, exp) = if exp_field == 0 {
        (frac, -1074i64)
    } else {
        (frac | (1 << 52), exp_field as i64 - 1075)
    };
    if mant == 0 {
        return 0; // p == +0.0
    }
    debug_assert!(exp < 0, "p in [0, 1] always has a negative exponent");
    let prod = u128::from(count) * u128::from(mant);
    let shift = -exp as u32;
    if shift >= 128 {
        // prod < 2^117 and the scale is ≤ 2^-128: the value is a positive
        // number below 1, whose ceiling is 1.
        return 1;
    }
    let floor = (prod >> shift) as u64; // ≤ count because p ≤ 1
    let rounds_up = prod & ((1u128 << shift) - 1) != 0;
    floor + u64::from(rounds_up)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = DelayStats::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.percentile(0.99), 0);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut s = DelayStats::new(100);
        for d in [1u64, 2, 3, 4, 10] {
            s.record(d);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert_eq!(s.max(), 10);
    }

    #[test]
    fn percentiles_are_exact_within_the_cap() {
        let mut s = DelayStats::new(1000);
        for d in 1..=100u64 {
            s.record(d);
        }
        assert_eq!(s.percentile(0.5), 50);
        assert_eq!(s.percentile(0.99), 99);
        assert_eq!(s.percentile(1.0), 100);
        // 0.01f64 is strictly above 1/100, so the exact rank of p1 over 100
        // records is ceil(100 · 0.0100000000000000002…) = 2.
        assert_eq!(s.percentile(0.01), 2);
    }

    #[test]
    fn percentile_rank_is_exact_at_integer_boundaries() {
        // Regression: the rank used to be (p * count as f64).ceil().  For
        // p = 0.1 and count = 10 the f64 product rounds down to exactly 1.0
        // (rank 1), but 10 · 0.1f64 = 1.0000000000000000555… whose true
        // ceiling is 2 — the old code reported the wrong bucket.
        let mut s = DelayStats::new(100);
        for d in 1..=10u64 {
            s.record(d);
        }
        assert_eq!(s.percentile(0.1), 2);
        // Exact dyadic p values sit exactly on boundaries and must not move.
        assert_eq!(s.percentile(0.5), 5);
        assert_eq!(s.percentile(0.25), 3);
        assert_eq!(s.percentile(1.0), 10);
        assert_eq!(s.percentile(0.0), 1);
    }

    #[test]
    fn ceil_rank_matches_a_brute_force_search() {
        // Independent model: the smallest r ≥ 1 with r · 2^shift ≥ count · mant,
        // phrased as an inequality instead of a shift-and-round division.
        fn model(count: u64, p: f64) -> u64 {
            if p == 0.0 {
                return 0;
            }
            (1..=count)
                .find(|&r| exact_ge(r, count, p))
                .unwrap_or(count)
        }
        fn exact_ge(r: u64, count: u64, p: f64) -> bool {
            // r ≥ count · mant · 2^exp  ⇔  r · 2^-exp ≥ count · mant
            let bits = p.to_bits();
            let exp_field = (bits >> 52) & 0x7ff;
            let frac = bits & ((1u64 << 52) - 1);
            let (mant, exp) = if exp_field == 0 {
                (frac, -1074i64)
            } else {
                (frac | (1 << 52), exp_field as i64 - 1075)
            };
            let shift = (-exp) as u32;
            let prod = u128::from(count) * u128::from(mant);
            match u128::from(r).checked_shl(shift) {
                Some(scaled) => scaled >= prod,
                None => true, // r · 2^shift ≥ 2^128 > prod
            }
        }
        for count in [1u64, 2, 3, 7, 10, 100, 999, 12345] {
            for p in [0.0, 0.01, 0.1, 0.25, 1.0 / 3.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
                assert_eq!(ceil_rank(count, p), model(count, p), "count={count} p={p}");
            }
        }
    }

    #[test]
    fn nonzero_buckets_walk_histogram_then_overflow_in_order() {
        let mut s = DelayStats::new(4);
        s.record(1);
        s.record(1);
        s.record(3);
        s.record(100);
        s.record(7);
        let buckets: Vec<(u64, u64)> = s.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(1, 2), (3, 1), (7, 1), (100, 1)]);
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), s.count());
    }

    #[test]
    fn overflow_delays_are_still_exact() {
        let mut s = DelayStats::new(10);
        s.record(5);
        s.record(500);
        s.record(1000);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - (5.0 + 500.0 + 1000.0) / 3.0).abs() < 1e-9);
        assert_eq!(s.max(), 1000);
        assert_eq!(s.percentile(1.0), 1000);
    }

    #[test]
    fn repeated_overflow_values_collapse_to_one_pair() {
        let mut s = DelayStats::new(2);
        for _ in 0..1000 {
            s.record(7);
        }
        for _ in 0..10 {
            s.record(5);
        }
        assert_eq!(s.overflow.len(), 2, "one pair per distinct delay");
        assert_eq!(s.percentile(0.001), 5);
        assert_eq!(s.percentile(0.5), 7);
        assert_eq!(s.percentile(1.0), 7);
        assert_eq!(s.max(), 7);
    }

    #[test]
    fn merge_with_mismatched_caps_stays_compact_and_exact() {
        // A million copies of one above-cap delay used to expand into a
        // million overflow entries on merge; they must collapse into one
        // (delay, count) pair, and percentiles must match stats recorded
        // directly at the small cap.
        let big_delay = 100_000u64;
        let mut wide = DelayStats::new(1 << 20); // big_delay is in-histogram
        for _ in 0..1_000_000 {
            wide.record(big_delay);
        }
        wide.record(2);
        let mut narrow = DelayStats::new(4);
        narrow.record(1);
        narrow.merge(&wide);
        assert_eq!(narrow.count(), 1_000_002);
        assert_eq!(narrow.overflow.len(), 1, "bounded by distinct values");

        let mut direct = DelayStats::new(4);
        direct.record(1);
        for _ in 0..1_000_000 {
            direct.record(big_delay);
        }
        direct.record(2);
        for p in [0.0, 0.000001, 0.25, 0.5, 0.9, 0.999999, 1.0] {
            assert_eq!(narrow.percentile(p), direct.percentile(p), "p = {p}");
        }
        assert_eq!(narrow.max(), direct.max());
        assert!((narrow.mean() - direct.mean()).abs() < 1e-9);
    }

    #[test]
    fn merge_rebuckets_overflow_that_fits_the_larger_cap() {
        // Merging small-cap stats into large-cap stats must move the small
        // side's overflow into the histogram, or the percentile walk would
        // visit it out of order.
        let mut narrow = DelayStats::new(4);
        narrow.record(10);
        narrow.record(10);
        let mut wide = DelayStats::new(1000);
        wide.record(20);
        wide.merge(&narrow);
        assert!(wide.overflow.is_empty());
        assert_eq!(wide.count(), 3);
        assert_eq!(wide.percentile(0.5), 10);
        assert_eq!(wide.percentile(1.0), 20);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = DelayStats::new(100);
        a.record(1);
        a.record(2);
        let mut b = DelayStats::new(100);
        b.record(10);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 10);
        assert!((a.mean() - 13.0 / 3.0).abs() < 1e-12);
    }
}
