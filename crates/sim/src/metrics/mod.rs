//! Measurement of delay, reordering, throughput and occupancy.
//!
//! The [`sink::MetricsSink`] ties these together: it implements
//! [`sprinklers_core::switch::DeliverySink`] so the engine can feed every
//! delivered packet straight into the statistics without any intermediate
//! collection.

pub mod delay;
pub mod fairness;
pub mod occupancy;
pub mod reorder;
pub mod sink;
pub mod window;

pub use delay::DelayStats;
pub use fairness::jain_index;
pub use occupancy::OccupancyStats;
pub use reorder::{ReorderDetector, ReorderStats};
pub use sink::{MetricsSink, SinkTotals};
pub use window::{WindowSample, WindowSeries};
