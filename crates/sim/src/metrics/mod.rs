//! Measurement of delay, reordering, throughput and occupancy.
//!
//! The [`sink::MetricsSink`] ties these together: it implements
//! [`sprinklers_core::switch::DeliverySink`] so the engine can feed every
//! delivered packet straight into the statistics without any intermediate
//! collection.

pub mod delay;
pub mod occupancy;
pub mod reorder;
pub mod sink;

pub use delay::DelayStats;
pub use occupancy::OccupancyStats;
pub use reorder::{ReorderDetector, ReorderStats};
pub use sink::MetricsSink;
