//! Measurement of delay, reordering, throughput and occupancy.

pub mod delay;
pub mod occupancy;
pub mod reorder;

pub use delay::DelayStats;
pub use occupancy::OccupancyStats;
pub use reorder::{ReorderDetector, ReorderStats};
