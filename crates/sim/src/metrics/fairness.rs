//! Jain's fairness index.
//!
//! `J(x) = (Σx)² / (n · Σx²)` over per-output delivered-packet counts:
//! 1.0 when every output received the same share, approaching `1/n` as the
//! traffic concentrates on a single output.  This is the standard fairness
//! measure load-balancer evaluations report alongside throughput.

/// Jain's fairness index over a set of non-negative values.
///
/// Returns 1.0 for an empty or all-zero set: with nothing delivered there is
/// no allocation to be unfair about, and 1.0 keeps the index continuous with
/// the uniform case instead of manufacturing a 0/0.
pub fn jain_index(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for &v in values {
        let v = v as f64;
        sum += v;
        sum_sq += v * v;
    }
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_allocations_are_perfectly_fair() {
        assert_eq!(jain_index(&[7, 7, 7, 7]), 1.0);
        assert_eq!(jain_index(&[1]), 1.0);
    }

    #[test]
    fn empty_and_all_zero_sets_are_fair_by_convention() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0, 0, 0]), 1.0);
    }

    #[test]
    fn a_single_hot_output_scores_one_over_n() {
        let j = jain_index(&[100, 0, 0, 0]);
        assert!((j - 0.25).abs() < 1e-12, "got {j}");
    }

    #[test]
    fn skew_lowers_the_index_monotonically() {
        let even = jain_index(&[50, 50]);
        let mild = jain_index(&[60, 40]);
        let harsh = jain_index(&[90, 10]);
        assert!(even > mild && mild > harsh, "{even} {mild} {harsh}");
        assert!(harsh > 0.5, "bounded below by 1/n");
    }
}
