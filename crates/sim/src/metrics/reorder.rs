//! Packet reordering detection.
//!
//! The paper's central claim is that a Sprinklers switch never reorders
//! packets within a VOQ (and therefore never within an application flow).
//! This module checks both properties on the delivered packet stream:
//!
//! * **VOQ order** — for each `(input, output)` pair, the `voq_seq` numbers of
//!   delivered data packets must be strictly increasing.
//! * **Flow order** — for each `(input, output, flow)` triple, the `voq_seq`
//!   numbers must also be increasing (a flow is a subsequence of one VOQ, so
//!   VOQ order implies flow order, but schemes such as TCP hashing preserve
//!   only flow order; measuring both separates the two guarantees).
//!
//! Every violation is counted, and the maximum observed displacement (how far
//! behind the newest already-delivered sequence number a late packet was) is
//! tracked, which corresponds to the size of the resequencing buffer an
//! output would need to repair the ordering (the quantity FOFF bounds by
//! O(N²)).

use serde::{Deserialize, Serialize};
use sprinklers_core::packet::Packet;
use std::collections::{BTreeMap, BTreeSet};

/// Aggregate reordering statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReorderStats {
    /// Packets delivered with a `voq_seq` lower than one already delivered
    /// for the same VOQ.
    pub voq_reorder_events: u64,
    /// Packets delivered with a `voq_seq` lower than one already delivered
    /// for the same `(input, output, flow)` triple.
    pub flow_reorder_events: u64,
    /// Largest sequence-number displacement observed within a VOQ.
    pub max_voq_displacement: u64,
    /// Number of distinct VOQs that experienced at least one reordering.
    pub reordered_voqs: u64,
}

impl ReorderStats {
    /// True if no reordering of any kind was observed.
    pub fn is_ordered(&self) -> bool {
        self.voq_reorder_events == 0 && self.flow_reorder_events == 0
    }
}

/// Streaming reordering detector.
///
/// The per-key high-water maps are `BTreeMap`s rather than hash maps: the
/// detector sits inside the deterministic simulation core, where every
/// container must iterate in a platform- and seed-independent order so that
/// reports stay byte-identical across runs (the repo-wide rule
/// `sprinklers-lint` enforces).
#[derive(Debug, Default, Clone)]
pub struct ReorderDetector {
    /// Highest `voq_seq` delivered so far per VOQ.
    voq_high: BTreeMap<(usize, usize), u64>,
    /// Highest `voq_seq` delivered so far per (input, output, flow).
    flow_high: BTreeMap<(usize, usize, u64), u64>,
    /// VOQs with at least one violation.
    dirty_voqs: BTreeSet<(usize, usize)>,
    stats: ReorderStats,
}

impl ReorderDetector {
    /// Create an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe a delivered packet.  Padding packets are ignored.
    pub fn observe(&mut self, packet: &Packet) {
        if packet.is_padding() {
            return;
        }
        let voq = packet.voq();
        match self.voq_high.get_mut(&voq) {
            None => {
                self.voq_high.insert(voq, packet.voq_seq);
            }
            Some(high) => {
                if packet.voq_seq < *high {
                    self.stats.voq_reorder_events += 1;
                    let displacement = *high - packet.voq_seq;
                    self.stats.max_voq_displacement =
                        self.stats.max_voq_displacement.max(displacement);
                    if self.dirty_voqs.insert(voq) {
                        self.stats.reordered_voqs += 1;
                    }
                } else {
                    *high = packet.voq_seq;
                }
            }
        }
        let flow_key = (packet.input(), packet.output(), packet.flow);
        match self.flow_high.get_mut(&flow_key) {
            None => {
                self.flow_high.insert(flow_key, packet.voq_seq);
            }
            Some(high) => {
                if packet.voq_seq < *high {
                    self.stats.flow_reorder_events += 1;
                } else {
                    *high = packet.voq_seq;
                }
            }
        }
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> ReorderStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(input: usize, output: usize, flow: u64, seq: u64) -> Packet {
        Packet::new(input, output, seq, 0)
            .with_flow(flow)
            .with_voq_seq(seq)
    }

    #[test]
    fn in_order_delivery_is_clean() {
        let mut d = ReorderDetector::new();
        for seq in 0..100 {
            d.observe(&pkt(0, 1, 7, seq));
        }
        assert!(d.stats().is_ordered());
        assert_eq!(d.stats().reordered_voqs, 0);
    }

    #[test]
    fn a_single_swap_is_detected() {
        let mut d = ReorderDetector::new();
        d.observe(&pkt(0, 1, 7, 0));
        d.observe(&pkt(0, 1, 7, 2));
        d.observe(&pkt(0, 1, 7, 1));
        let s = d.stats();
        assert_eq!(s.voq_reorder_events, 1);
        assert_eq!(s.flow_reorder_events, 1);
        assert_eq!(s.max_voq_displacement, 1);
        assert_eq!(s.reordered_voqs, 1);
        assert!(!s.is_ordered());
    }

    #[test]
    fn voq_reordering_across_different_flows_is_not_flow_reordering() {
        let mut d = ReorderDetector::new();
        // Two flows interleaved within the same VOQ: the VOQ sees 0, 2, 1, 3
        // (reordered) but each flow individually is in order.
        d.observe(&pkt(0, 1, 100, 0));
        d.observe(&pkt(0, 1, 200, 2));
        d.observe(&pkt(0, 1, 100, 1));
        d.observe(&pkt(0, 1, 200, 3));
        let s = d.stats();
        assert_eq!(s.voq_reorder_events, 1);
        assert_eq!(s.flow_reorder_events, 0);
    }

    #[test]
    fn different_voqs_do_not_interfere() {
        let mut d = ReorderDetector::new();
        d.observe(&pkt(0, 1, 1, 5));
        d.observe(&pkt(1, 1, 2, 0));
        d.observe(&pkt(0, 2, 3, 0));
        assert!(d.stats().is_ordered());
    }

    #[test]
    fn displacement_tracks_the_worst_case() {
        let mut d = ReorderDetector::new();
        d.observe(&pkt(0, 1, 7, 10));
        d.observe(&pkt(0, 1, 7, 3));
        d.observe(&pkt(0, 1, 7, 9));
        let s = d.stats();
        assert_eq!(s.voq_reorder_events, 2);
        assert_eq!(s.max_voq_displacement, 7);
        assert_eq!(s.reordered_voqs, 1);
    }

    #[test]
    fn padding_packets_are_ignored() {
        let mut d = ReorderDetector::new();
        d.observe(&pkt(0, 1, 7, 5));
        d.observe(&Packet::padding(0, 1, 0));
        assert!(d.stats().is_ordered());
    }
}
