//! The scheme registry: build any switch in the workspace by name.
//!
//! Every scheme — Sprinklers with its scheduling/sizing variants and all six
//! baselines — registers here under a stable string key, so sweeps, bench
//! binaries, examples and tests construct switches the same way: from a
//! [`ScenarioSpec`] (or a name plus a traffic matrix) to a `Box<dyn Switch>`,
//! which the blanket `impl Switch for Box<T>` lets the engine drive through
//! the sink-based `step` path with no special cases.

use crate::spec::{ScenarioSpec, SizingSpec, SpecError};
use sprinklers_baselines::{
    BaselineLbSwitch, FoffSwitch, OutputQueuedSwitch, PaddedFramesSwitch, TcpHashSwitch, UfsSwitch,
};
use sprinklers_core::config::{AlignmentMode, InputDiscipline, SizingMode, SprinklersConfig};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::MAX_PORTS;
use sprinklers_core::sprinklers::SprinklersSwitch;
use sprinklers_core::switch::Switch;

/// Every scheme the registry can build: Sprinklers (plus its three
/// scheduling/sizing ablation variants) and the six baselines.
pub const SCHEMES: [&str; 10] = [
    "sprinklers",
    "sprinklers-adaptive",
    "sprinklers-rowscan",
    "sprinklers-aligned",
    "oq",
    "baseline-lb",
    "ufs",
    "foff",
    "padded-frames",
    "tcp-hash",
];

/// The registered scheme names.
pub fn schemes() -> &'static [&'static str] {
    &SCHEMES
}

/// The schemes that guarantee per-VOQ in-order delivery.
///
/// The `sprinklers-rowscan` and `sprinklers-aligned` ablation variants are
/// deliberately absent: this reproduction found that the simplified row-scan
/// discipline of §3.4.2 and naive frame-aligned staging both can reorder
/// under concurrent traffic (see the `ablation_alignment` experiment), which
/// is exactly why they are ablations and not the default.
pub const ORDERED_SCHEMES: [&str; 6] = [
    "sprinklers",
    "sprinklers-adaptive",
    "oq",
    "ufs",
    "foff",
    "padded-frames",
];

/// True if `scheme` promises per-VOQ in-order delivery.
pub fn is_reordering_free(scheme: &str) -> bool {
    ORDERED_SCHEMES.contains(&scheme)
}

/// Build the switch described by a [`ScenarioSpec`].
///
/// The sizing spec applies to the Sprinklers variants; `Matrix` sizing uses
/// the rate matrix of the scenario's traffic pattern, exactly as the paper's
/// evaluation assumes the matrix is known a priori.
pub fn build(spec: &ScenarioSpec) -> Result<Box<dyn Switch>, SpecError> {
    let matrix = spec.traffic.try_matrix(spec.n)?;
    build_named(&spec.scheme, spec.n, &spec.sizing, &matrix, spec.seed)
}

/// Build a switch by name with an explicit traffic matrix (for callers that
/// already have one, e.g. trace-driven tests).
pub fn build_named(
    scheme: &str,
    n: usize,
    sizing: &SizingSpec,
    matrix: &TrafficMatrix,
    seed: u64,
) -> Result<Box<dyn Switch>, SpecError> {
    if n < 2 {
        return Err(SpecError::new(format!(
            "port count n must be at least 2 (got {n})"
        )));
    }
    // Oversized switches would trip `assert_ports_fit` inside the
    // constructors (a panic); reject them here as a typed spec error.
    if n > MAX_PORTS {
        return Err(SpecError::new(format!(
            "port count n must be at most {MAX_PORTS} (got {n})"
        )));
    }
    let sprinklers_sizing = || -> SizingMode {
        match *sizing {
            SizingSpec::Matrix => SizingMode::FromMatrix(matrix.clone()),
            SizingSpec::Adaptive => SprinklersConfig::new(n).sizing,
            SizingSpec::Fixed(size) => SizingMode::FixedSize(size),
        }
    };
    // Sprinklers constructors validate the config (power-of-two port count,
    // sane stripe bounds); surface that as a spec error, not a panic.
    let sprinklers = |config: SprinklersConfig| -> Result<Box<dyn Switch>, SpecError> {
        SprinklersSwitch::try_new(config, seed)
            .map(|s| Box::new(s) as Box<dyn Switch>)
            .map_err(|e| SpecError::new(format!("invalid '{scheme}' configuration: {e}")))
    };
    let switch: Box<dyn Switch> = match scheme {
        "sprinklers" => sprinklers(SprinklersConfig::new(n).with_sizing(sprinklers_sizing()))?,
        "sprinklers-adaptive" => sprinklers(SprinklersConfig::new(n))?,
        "sprinklers-rowscan" => sprinklers(
            SprinklersConfig::new(n)
                .with_sizing(sprinklers_sizing())
                .with_input_discipline(InputDiscipline::RowScan),
        )?,
        "sprinklers-aligned" => sprinklers(
            SprinklersConfig::new(n)
                .with_sizing(sprinklers_sizing())
                .with_alignment(AlignmentMode::StripeComplete),
        )?,
        "oq" => Box::new(OutputQueuedSwitch::new(n)),
        "baseline-lb" => Box::new(BaselineLbSwitch::new(n)),
        "ufs" => Box::new(UfsSwitch::new(n)),
        "foff" => Box::new(FoffSwitch::new(n)),
        "padded-frames" => Box::new(PaddedFramesSwitch::new(
            n,
            PaddedFramesSwitch::default_threshold(n),
        )),
        "tcp-hash" => Box::new(TcpHashSwitch::new(n, seed)),
        other => {
            return Err(SpecError::new(format!(
                "unknown scheme '{other}' (known: {})",
                SCHEMES.join(", ")
            )))
        }
    };
    Ok(switch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_sprinklers_and_six_baselines() {
        assert!(schemes().len() >= 7);
        assert!(schemes().contains(&"sprinklers"));
        for baseline in [
            "oq",
            "baseline-lb",
            "ufs",
            "foff",
            "padded-frames",
            "tcp-hash",
        ] {
            assert!(schemes().contains(&baseline), "missing baseline {baseline}");
        }
    }

    #[test]
    fn every_registered_scheme_builds() {
        let matrix = TrafficMatrix::uniform(8, 0.5);
        for scheme in schemes() {
            let sw = build_named(scheme, 8, &SizingSpec::Matrix, &matrix, 3).unwrap();
            assert_eq!(sw.n(), 8, "scheme {scheme}");
            assert!(!sw.name().is_empty());
        }
    }

    #[test]
    fn build_resolves_a_spec() {
        let spec = ScenarioSpec::new("padded-frames", 16);
        let sw = build(&spec).unwrap();
        assert_eq!(sw.name(), "padded-frames");
        assert_eq!(sw.n(), 16);
    }

    #[test]
    fn degenerate_and_oversized_port_counts_are_typed_errors() {
        let matrix = TrafficMatrix::uniform(2, 0.5);
        for n in [0, 1, MAX_PORTS + 1] {
            for scheme in schemes() {
                let result = build_named(scheme, n, &SizingSpec::Matrix, &matrix, 1);
                assert!(result.is_err(), "scheme {scheme} accepted n={n}");
            }
        }
    }

    #[test]
    fn unknown_scheme_is_a_spec_error() {
        let spec = ScenarioSpec::new("does-not-exist", 8);
        let err = build(&spec).err().expect("unknown scheme must not build");
        assert!(err.to_string().contains("does-not-exist"));
        assert!(err.to_string().contains("sprinklers"));
    }

    #[test]
    fn sizing_spec_reaches_the_sprinklers_config() {
        let matrix = TrafficMatrix::uniform(8, 0.5);
        let sw = build_named("sprinklers", 8, &SizingSpec::Fixed(4), &matrix, 1).unwrap();
        assert_eq!(sw.name(), "sprinklers");
        // Boxed switches still expose stats through the blanket impl.
        assert_eq!(sw.stats().total_arrivals, 0);
    }

    #[test]
    fn ordered_schemes_is_a_subset_of_schemes() {
        for s in ORDERED_SCHEMES {
            assert!(SCHEMES.contains(&s));
        }
        assert!(is_reordering_free("sprinklers"));
        assert!(!is_reordering_free("baseline-lb"));
        assert!(!is_reordering_free("tcp-hash"));
    }
}
