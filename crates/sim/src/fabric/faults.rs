//! Deterministic expansion of a [`FaultSpec`] into a slot-ordered event
//! schedule.
//!
//! Explicit timed events are taken verbatim; the optional random generator
//! adds alternating up/down phases for every link that has *no* explicit
//! events, each link from its own seed-derived RNG.  The result is a pure
//! function of the spec — no wall clock, no global RNG — so the schedule,
//! and therefore the whole faulted run, is byte-identical across `batch`,
//! `threads` and worker counts.

use crate::engine::RunConfig;
use crate::spec::{FaultKind, FaultSpec, RandomFaultSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::SEED_MIX;

/// One concrete scheduled event (spec events and generated events look the
/// same once expanded).
#[derive(Debug, Clone, Copy)]
pub(super) struct FaultEvent {
    pub slot: u64,
    pub kind: FaultKind,
    pub index: usize,
}

/// The full, sorted fault timeline of one run, consumed front to back.
#[derive(Debug, Default)]
pub(super) struct FaultSchedule {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultSchedule {
    /// Expand a validated spec against a fabric with `link_count` links.
    ///
    /// Random failures only ever target links (nodes must be scripted
    /// explicitly) and skip links that already have explicit events, so the
    /// two sources can never produce conflicting timelines.  Random
    /// down-phases may begin any time before `run.slots` (never during the
    /// drain, which exists to let traffic settle) and their recovery is
    /// dropped when it would land past the run end.
    pub(super) fn expand(spec: &FaultSpec, link_count: usize, run: &RunConfig) -> FaultSchedule {
        let total_slots = run.slots.saturating_add(run.drain_slots);
        let mut events: Vec<FaultEvent> = spec
            .events
            .iter()
            .map(|e| FaultEvent {
                slot: e.slot,
                kind: e.kind,
                index: e.index,
            })
            .collect();
        if let Some(random) = &spec.random {
            let mut scripted = vec![false; link_count];
            for e in &spec.events {
                if e.kind.is_link() {
                    scripted[e.index] = true;
                }
            }
            for (link, scripted) in scripted.iter().enumerate() {
                if !scripted {
                    generate_link_phases(random, link, run.slots, total_slots, &mut events);
                }
            }
        }
        // Deterministic application order within a slot: links before
        // nodes, then ascending index, then downs before ups.  Validation
        // forbids same-entity duplicates at one slot, so this total order
        // is unambiguous.
        events.sort_unstable_by_key(|e| (e.slot, !e.kind.is_link(), e.index, e.kind.is_up()));
        FaultSchedule { events, cursor: 0 }
    }

    /// True when the timeline holds no events at all.
    #[cfg(test)]
    pub(super) fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events due at or before `slot`, advancing past them.  Slots must
    /// be visited in nondecreasing order (the fabric steps slot by slot).
    pub(super) fn due(&mut self, slot: u64) -> &[FaultEvent] {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].slot <= slot {
            self.cursor += 1;
        }
        &self.events[start..self.cursor]
    }
}

/// Alternating up/down phases for one link.  Phase lengths are drawn
/// uniformly from `1..=2·mean − 1` slots (integer-uniform with the spec's
/// mean); the RNG is derived from the fault seed and the link index with
/// the same golden-ratio mix the fabric uses for node seeds, so every link
/// fails on its own independent, reproducible schedule.
fn generate_link_phases(
    random: &RandomFaultSpec,
    link: usize,
    run_slots: u64,
    total_slots: u64,
    events: &mut Vec<FaultEvent>,
) {
    let mut rng = StdRng::seed_from_u64(
        random
            .seed
            .wrapping_add(SEED_MIX.wrapping_mul(link as u64 + 1)),
    );
    let phase = |rng: &mut StdRng, mean: u64| {
        let hi = mean.saturating_mul(2).saturating_sub(1).max(1);
        rng.gen_range(1..=hi)
    };
    let mut slot = 0u64;
    loop {
        slot = slot.saturating_add(phase(&mut rng, random.mtbf));
        if slot >= run_slots {
            return; // next failure would start during (or past) the drain
        }
        events.push(FaultEvent {
            slot,
            kind: FaultKind::LinkDown,
            index: link,
        });
        slot = slot.saturating_add(phase(&mut rng, random.mttr));
        if slot >= total_slots {
            return; // the link stays down through the end of the run
        }
        events.push(FaultEvent {
            slot,
            kind: FaultKind::LinkUp,
            index: link,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FaultEventSpec;

    fn run(slots: u64, drain: u64) -> RunConfig {
        RunConfig {
            slots,
            warmup_slots: 0,
            drain_slots: drain,
        }
    }

    fn random(mtbf: u64, mttr: u64, seed: u64) -> FaultSpec {
        FaultSpec {
            events: vec![],
            random: Some(RandomFaultSpec { mtbf, mttr, seed }),
        }
    }

    #[test]
    fn explicit_events_come_out_in_deterministic_order() {
        let spec = FaultSpec {
            events: vec![
                FaultEventSpec {
                    slot: 20,
                    kind: FaultKind::NodeDown,
                    index: 0,
                },
                FaultEventSpec {
                    slot: 10,
                    kind: FaultKind::LinkDown,
                    index: 3,
                },
                FaultEventSpec {
                    slot: 10,
                    kind: FaultKind::LinkDown,
                    index: 1,
                },
            ],
            random: None,
        };
        let mut sched = FaultSchedule::expand(&spec, 8, &run(100, 100));
        assert!(sched.due(9).is_empty());
        let due = sched.due(10);
        assert_eq!(due.len(), 2);
        assert_eq!((due[0].index, due[1].index), (1, 3), "ascending index");
        assert_eq!(sched.due(50).len(), 1);
        assert!(sched.due(1_000).is_empty(), "cursor never rewinds");
    }

    #[test]
    fn random_schedules_are_reproducible_and_seed_sensitive() {
        let collect = |seed: u64| {
            let mut sched = FaultSchedule::expand(&random(40, 10, seed), 4, &run(400, 100));
            sched
                .due(u64::MAX)
                .iter()
                .map(|e| (e.slot, e.index, e.kind.is_up()))
                .collect::<Vec<_>>()
        };
        let a = collect(7);
        assert_eq!(a, collect(7), "same seed, same schedule");
        assert_ne!(a, collect(8), "different seed moves the schedule");
        assert!(!a.is_empty(), "mtbf 40 over 400 slots must fire");
    }

    #[test]
    fn random_failures_alternate_and_respect_the_run_bounds() {
        let mut sched = FaultSchedule::expand(&random(30, 8, 3), 6, &run(500, 200));
        let mut state = [true; 6]; // all links start up
        for e in sched.due(u64::MAX) {
            assert!(e.kind.is_link(), "random faults only target links");
            assert_eq!(
                state[e.index],
                !e.kind.is_up(),
                "phases must alternate per link"
            );
            state[e.index] = e.kind.is_up();
            if !e.kind.is_up() {
                assert!(e.slot < 500, "failures never start in the drain");
            } else {
                assert!(e.slot < 700, "recovery inside the run");
            }
        }
    }

    #[test]
    fn random_generator_skips_explicitly_scripted_links() {
        let mut spec = random(20, 5, 1);
        spec.events.push(FaultEventSpec {
            slot: 50,
            kind: FaultKind::LinkDown,
            index: 2,
        });
        let mut sched = FaultSchedule::expand(&spec, 4, &run(300, 100));
        let on_link2: Vec<_> = sched
            .due(u64::MAX)
            .iter()
            .filter(|e| e.index == 2)
            .collect();
        assert_eq!(on_link2.len(), 1, "only the scripted event on link 2");
        assert_eq!(on_link2[0].slot, 50);
    }

    #[test]
    fn an_empty_spec_expands_to_an_empty_schedule() {
        let mut sched = FaultSchedule::expand(&FaultSpec::default(), 8, &run(100, 10));
        assert!(sched.is_empty());
        assert!(sched.due(u64::MAX).is_empty());
    }
}
