//! Per-hop path selection at the fabric's edge.
//!
//! The [`Router`] owns all path-choice state for one fabric: it maps each
//! freshly injected remote packet to one of the topology's
//! [`path_choices`](super::topology::Wiring::path_choices) according to the
//! scenario's [`RoutingSpec`]:
//!
//! * **ECMP hash** — a deterministic FNV-1a hash of the `(src, dst)` host
//!   pair (salted with the fabric seed) pins every host pair to one path.
//! * **Random per packet** — an independent uniform draw per packet.
//! * **Sprinklers striping** — the paper's randomized variable-size stripes
//!   lifted to the fabric: each `(src, dst)` pair sends a run ("stripe") of
//!   packets down one random path, then re-randomizes the path *and* the
//!   power-of-two run length — but only at a moment when the pair has no
//!   packets in flight, so two consecutive stripes can never race each
//!   other on different paths.  With order-preserving node schemes this
//!   makes the whole fabric inversion-free (see the fabric fuzz tests).

use crate::spec::RoutingSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Striping state for one `(src, dst)` host pair.
#[derive(Debug, Clone, Copy, Default)]
struct StripeState {
    /// Path the current stripe uses.
    choice: usize,
    /// Packets remaining in the current stripe.
    budget: u64,
}

/// Path chooser for one fabric.
#[derive(Debug)]
pub struct Router {
    kind: RoutingSpec,
    rng: StdRng,
    /// Hash salt so different seeds shuffle the ECMP pinning.
    salt: u64,
    /// Number of selectable paths.
    choices: usize,
    /// Host count (stride of the per-pair stripe table).
    hosts: usize,
    /// Per `(src, dst)` stripe state, indexed `src * hosts + dst`.
    stripe: Vec<StripeState>,
}

/// FNV-1a over a few words — stable, dependency-free pair hashing.
fn fnv1a64(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in words {
        for byte in w.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl Router {
    /// Maximum stripe length the striping strategy draws (a power of two
    /// in `1..=16`, mirroring the single-switch stripe-size bounds).
    const MAX_STRIPE_LOG2: u32 = 5;

    /// Create the router for a fabric with `hosts` hosts and `choices`
    /// selectable paths.
    pub fn new(kind: RoutingSpec, hosts: usize, choices: usize, seed: u64) -> Router {
        debug_assert!(choices >= 1);
        Router {
            kind,
            rng: StdRng::seed_from_u64(seed),
            salt: seed,
            choices,
            hosts,
            stripe: match kind {
                RoutingSpec::Stripe => vec![StripeState::default(); hosts * hosts],
                _ => Vec::new(),
            },
        }
    }

    /// Pick the path for a packet from host `src` to remote host `dst`.
    ///
    /// `in_flight` is the number of this pair's packets currently inside
    /// the fabric; the striping strategy only re-randomizes its path when
    /// both the stripe budget and `in_flight` are zero, which is what makes
    /// striping inversion-free end to end.
    ///
    /// `live` is the failure mask over path choices (`None` on healthy
    /// fabrics — the legacy draw sequence, byte-for-byte).  With a mask,
    /// every strategy selects among live paths only: ECMP hashes onto the
    /// live subset, random draws from it, and a stripe additionally
    /// re-randomizes — still only with nothing in flight — when its current
    /// path has died, so reconvergence cannot invert surviving traffic.
    /// When *no* path is live the mask is ignored (the packet must go
    /// somewhere; it becomes a typed loss at the dead hop).
    pub fn choose(
        &mut self,
        src: usize,
        dst: usize,
        in_flight: u64,
        live: Option<&[bool]>,
    ) -> usize {
        let live = live.filter(|mask| {
            debug_assert_eq!(mask.len(), self.choices);
            mask.iter().any(|&up| up)
        });
        let live_count = live.map_or(self.choices, |mask| mask.iter().filter(|&&up| up).count());
        // The k-th live choice (identity when no mask applies).
        let nth_live = |k: usize| match live {
            None => k,
            Some(mask) => mask
                .iter()
                .enumerate()
                .filter(|(_, &up)| up)
                .nth(k)
                .map(|(i, _)| i)
                .expect("k < live_count"),
        };
        match self.kind {
            RoutingSpec::EcmpHash => nth_live(
                (fnv1a64(&[src as u64, dst as u64, self.salt]) % live_count as u64) as usize,
            ),
            RoutingSpec::RandomPacket => nth_live(self.rng.gen_range(0..live_count)),
            RoutingSpec::Stripe => {
                let state = &mut self.stripe[src * self.hosts + dst];
                let choice_dead = live.is_some_and(|mask| !mask[state.choice]);
                if in_flight == 0 && (state.budget == 0 || choice_dead) {
                    state.choice = nth_live(self.rng.gen_range(0..live_count));
                    state.budget = 1u64 << self.rng.gen_range(0..Self::MAX_STRIPE_LOG2);
                }
                if state.budget > 0 {
                    state.budget -= 1;
                }
                state.choice
            }
        }
    }

    /// The striping strategy's current path for a pair (what the next
    /// packet would ride if the stripe holds).  `None` for non-stripe
    /// routers.  Used by the fabric's failure handling to decide whether a
    /// pair's traffic must be parked until its path drains or recovers.
    pub fn current_choice(&self, src: usize, dst: usize) -> Option<usize> {
        match self.kind {
            RoutingSpec::Stripe => Some(self.stripe[src * self.hosts + dst].choice),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecmp_is_deterministic_per_pair_and_salt() {
        let mut a = Router::new(RoutingSpec::EcmpHash, 8, 4, 7);
        let mut b = Router::new(RoutingSpec::EcmpHash, 8, 4, 7);
        for (src, dst) in [(0, 5), (3, 1), (7, 2)] {
            let first = a.choose(src, dst, 0, None);
            assert!(first < 4);
            for _ in 0..3 {
                assert_eq!(
                    a.choose(src, dst, 9, None),
                    first,
                    "pinned regardless of flight"
                );
            }
            assert_eq!(
                b.choose(src, dst, 0, None),
                first,
                "same seed, same pinning"
            );
        }
        // A different salt moves at least one of a handful of pairs.
        let mut c = Router::new(RoutingSpec::EcmpHash, 8, 4, 8);
        let moved = (0..8)
            .flat_map(|s| (0..8).map(move |d| (s, d)))
            .any(|(s, d)| c.choose(s, d, 0, None) != b.choose(s, d, 0, None));
        assert!(moved, "salt should reshuffle some pair");
    }

    #[test]
    fn random_routing_eventually_uses_every_path() {
        let mut r = Router::new(RoutingSpec::RandomPacket, 4, 4, 1);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[r.choose(0, 1, 0, None)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn stripe_holds_its_path_until_budget_and_flight_drain() {
        let mut r = Router::new(RoutingSpec::Stripe, 4, 16, 3);
        // First call opens a stripe: some path, some power-of-two budget.
        let first = r.choose(0, 1, 0, None);
        // Keep the pair busy: as long as packets are in flight the path can
        // never change, even after the budget runs out.
        for k in 1..200u64 {
            assert_eq!(r.choose(0, 1, k, None), first, "path changed mid-flight");
        }
        // Budget exhausted and nothing in flight: the stripe re-randomizes
        // (possibly onto the same path) with a fresh power-of-two budget.
        let mut changed = false;
        for _ in 0..64 {
            for _ in 0..40 {
                r.choose(0, 1, 1, None); // drain any current budget while busy
            }
            if r.choose(0, 1, 0, None) != first {
                changed = true;
                break;
            }
        }
        assert!(changed, "16 paths: a re-randomized stripe should move");
    }

    #[test]
    fn masked_strategies_only_pick_live_paths() {
        // Only path 2 is alive: every strategy must land on it.
        let mask = [false, false, true, false];
        let mut ecmp = Router::new(RoutingSpec::EcmpHash, 4, 4, 7);
        assert_eq!(ecmp.choose(0, 1, 0, Some(&mask)), 2);
        let mut random = Router::new(RoutingSpec::RandomPacket, 4, 4, 1);
        for _ in 0..32 {
            assert_eq!(random.choose(0, 1, 0, Some(&mask)), 2);
        }
        let mut stripe = Router::new(RoutingSpec::Stripe, 4, 4, 3);
        assert_eq!(stripe.choose(0, 1, 0, Some(&mask)), 2);

        // With two live paths, random routing eventually uses both and
        // never a dead one.
        let mask = [true, false, true, false];
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[random.choose(0, 1, 0, Some(&mask))] = true;
        }
        assert_eq!(seen, [true, false, true, false]);
    }

    #[test]
    fn stripe_rerandomizes_off_a_dead_path_only_when_drained() {
        let mut r = Router::new(RoutingSpec::Stripe, 4, 4, 3);
        let first = r.choose(0, 1, 0, None);
        let mut mask = [true; 4];
        mask[first] = false;
        // Packets still in flight: the pair must hold its (dead) path —
        // moving now could overtake them on the new path.
        assert_eq!(r.choose(0, 1, 5, Some(&mask)), first, "moved mid-flight");
        assert_eq!(r.current_choice(0, 1), Some(first));
        // Drained: the stripe abandons the dead path mid-budget.
        let moved = r.choose(0, 1, 0, Some(&mask));
        assert_ne!(moved, first, "dead path kept after drain");
        assert!(mask[moved], "re-randomized onto a dead path");
    }

    #[test]
    fn an_all_dead_mask_falls_back_to_the_full_path_set() {
        // Total blackout: the router still returns a valid index (the
        // packet becomes a typed loss at the dead hop, not a panic here).
        let mask = [false; 4];
        let mut r = Router::new(RoutingSpec::EcmpHash, 4, 4, 7);
        assert!(r.choose(0, 1, 0, Some(&mask)) < 4);
        let mut r = Router::new(RoutingSpec::Stripe, 4, 4, 3);
        assert!(r.choose(0, 1, 0, Some(&mask)) < 4);
    }

    #[test]
    fn stripe_pairs_are_independent() {
        let mut r = Router::new(RoutingSpec::Stripe, 4, 1024, 5);
        let a = r.choose(0, 1, 0, None);
        let _ = r.choose(2, 3, 0, None); // different pair draws its own stripe
        assert_eq!(r.choose(0, 1, 1, None), a, "pair (0,1) keeps its own path");
    }
}
