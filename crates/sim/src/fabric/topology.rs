//! Node/port wiring of the fabric topologies.
//!
//! A [`Wiring`] turns a validated [`TopologySpec`] into the concrete shape
//! the fabric world executes: one [`NodeDesc`] per switch (its port count
//! and what each port connects to), the directed inter-switch link list in
//! a fixed deterministic order, and the host attachment table.  It also
//! answers the two routing questions every hop needs: which local output
//! port a source-node packet takes for a given path choice, and which local
//! output port a transiting packet takes toward its destination host.
//!
//! Port conventions (a port is both an input and an output of its N×N
//! node):
//!
//! * **Fat-tree (2-level)** — edge switch `e` has ports `0..H` facing its
//!   hosts (`host = e·H + p`) and ports `H..H+C` facing the cores; core
//!   switch `c` has one port per edge (`port e ↔ edge e`).
//! * **Flattened butterfly** — switch `s` has ports `0..H` facing its hosts
//!   and ports `H..H+S-1` meshed to every other switch in ascending switch
//!   order (switch `w` sits at port `H + w` for `w < s`, `H + w - 1`
//!   otherwise).

use crate::spec::TopologySpec;

/// Where one of a node's ports leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortTarget {
    /// The port faces this global host: packets delivered here leave the
    /// fabric.
    Host(usize),
    /// The port feeds the ingress of this directed inter-switch link.
    Link(usize),
}

/// One directed inter-switch wire: which node (and which of its local
/// ports) the far end attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDesc {
    /// Destination node index.
    pub to_node: usize,
    /// Local port at the destination node the wire feeds.
    pub to_port: usize,
}

/// One switch node: its port map (length = the node's port count).
#[derive(Debug, Clone)]
pub struct NodeDesc {
    /// What each local port connects to.
    pub ports: Vec<PortTarget>,
}

#[derive(Debug, Clone, Copy)]
enum Shape {
    FatTree2 {
        edges: usize,
        cores: usize,
        hosts_per_edge: usize,
    },
    Butterfly {
        switches: usize,
        hosts_per_switch: usize,
    },
}

/// The wired-up shape of a fabric.
#[derive(Debug)]
pub struct Wiring {
    /// Per-node port maps, node index order.
    pub nodes: Vec<NodeDesc>,
    /// Directed links in creation order (ascending source node, then
    /// ascending source port) — the order every per-slot link phase walks.
    pub links: Vec<LinkDesc>,
    /// Per host: the `(node, local port)` it attaches to.
    pub hosts: Vec<(usize, usize)>,
    shape: Shape,
}

impl Wiring {
    /// Wire up a topology.  The spec must already be validated
    /// ([`TopologySpec::validate`]).
    pub fn build(spec: &TopologySpec) -> Wiring {
        match *spec {
            TopologySpec::FatTree2 {
                edges,
                cores,
                hosts_per_edge,
                ..
            } => Self::fat_tree2(edges, cores, hosts_per_edge),
            TopologySpec::Butterfly {
                switches,
                hosts_per_switch,
                ..
            } => Self::butterfly(switches, hosts_per_switch),
        }
    }

    fn fat_tree2(edges: usize, cores: usize, hosts_per_edge: usize) -> Wiring {
        let mut nodes = Vec::with_capacity(edges + cores);
        let mut links = Vec::with_capacity(2 * edges * cores);
        let mut hosts = Vec::with_capacity(edges * hosts_per_edge);
        // Edge switches first (node indices 0..edges).
        for e in 0..edges {
            let mut ports = Vec::with_capacity(hosts_per_edge + cores);
            for p in 0..hosts_per_edge {
                let host = e * hosts_per_edge + p;
                ports.push(PortTarget::Host(host));
                hosts.push((e, p));
            }
            for c in 0..cores {
                // Uplink to core c; the core's port for edge e is e.
                ports.push(PortTarget::Link(links.len()));
                links.push(LinkDesc {
                    to_node: edges + c,
                    to_port: e,
                });
            }
            nodes.push(NodeDesc { ports });
        }
        // Core switches (node indices edges..edges+cores).
        for c in 0..cores {
            let mut ports = Vec::with_capacity(edges);
            for e in 0..edges {
                // Downlink to edge e; the edge's port for core c is H + c.
                ports.push(PortTarget::Link(links.len()));
                links.push(LinkDesc {
                    to_node: e,
                    to_port: hosts_per_edge + c,
                });
            }
            nodes.push(NodeDesc { ports });
        }
        Wiring {
            nodes,
            links,
            hosts,
            shape: Shape::FatTree2 {
                edges,
                cores,
                hosts_per_edge,
            },
        }
    }

    /// Local port at butterfly switch `s` that faces switch `w` (`w != s`).
    fn peer_port(hosts_per_switch: usize, s: usize, w: usize) -> usize {
        debug_assert_ne!(s, w);
        hosts_per_switch + if w < s { w } else { w - 1 }
    }

    fn butterfly(switches: usize, hosts_per_switch: usize) -> Wiring {
        let mut nodes = Vec::with_capacity(switches);
        let mut links = Vec::with_capacity(switches * (switches - 1));
        let mut hosts = Vec::with_capacity(switches * hosts_per_switch);
        for s in 0..switches {
            let mut ports = Vec::with_capacity(hosts_per_switch + switches - 1);
            for p in 0..hosts_per_switch {
                let host = s * hosts_per_switch + p;
                ports.push(PortTarget::Host(host));
                hosts.push((s, p));
            }
            for w in (0..switches).filter(|&w| w != s) {
                ports.push(PortTarget::Link(links.len()));
                links.push(LinkDesc {
                    to_node: w,
                    to_port: Self::peer_port(hosts_per_switch, w, s),
                });
            }
            nodes.push(NodeDesc { ports });
        }
        Wiring {
            nodes,
            links,
            hosts,
            shape: Shape::Butterfly {
                switches,
                hosts_per_switch,
            },
        }
    }

    /// Node a host attaches to.
    pub fn host_node(&self, host: usize) -> usize {
        self.hosts[host].0
    }

    /// Number of path choices the routing strategy picks from: cores for
    /// the fat-tree, intermediate switches for the butterfly.
    pub fn path_choices(&self) -> usize {
        match self.shape {
            Shape::FatTree2 { cores, .. } => cores,
            Shape::Butterfly { switches, .. } => switches,
        }
    }

    /// First-hop local output port at `src`'s node for a packet to a
    /// *remote* `dst`, given the routing strategy's path `choice`.
    ///
    /// For the fat-tree the choice is the core switch.  For the butterfly
    /// the choice is the intermediate switch; choosing the source or
    /// destination switch itself means the direct one-hop path.
    pub fn first_hop_port(&self, src: usize, dst: usize, choice: usize) -> usize {
        match self.shape {
            Shape::FatTree2 { hosts_per_edge, .. } => {
                debug_assert_ne!(src / hosts_per_edge, dst / hosts_per_edge);
                hosts_per_edge + choice
            }
            Shape::Butterfly {
                hosts_per_switch, ..
            } => {
                let s = src / hosts_per_switch;
                let d = dst / hosts_per_switch;
                debug_assert_ne!(s, d);
                let via = if choice == s || choice == d {
                    d
                } else {
                    choice
                };
                Self::peer_port(hosts_per_switch, s, via)
            }
        }
    }

    /// Directed link index from switch `from` to switch `to`, where the two
    /// are directly wired (`None` otherwise).  Link indices follow creation
    /// order: fat-tree uplink `(e, c)` is `e·C + c`, downlink `(c, e)` is
    /// `E·C + c·E + e`; butterfly `s → w` is `s·(S−1) + (w < s ? w : w−1)`.
    pub fn link_between(&self, from: usize, to: usize) -> Option<usize> {
        match self.shape {
            Shape::FatTree2 { edges, cores, .. } => {
                if from < edges && to >= edges && to < edges + cores {
                    Some(from * cores + (to - edges))
                } else if from >= edges && from < edges + cores && to < edges {
                    Some(edges * cores + (from - edges) * edges + to)
                } else {
                    None
                }
            }
            Shape::Butterfly { switches, .. } => {
                if from < switches && to < switches && from != to {
                    Some(from * (switches - 1) + if to < from { to } else { to - 1 })
                } else {
                    None
                }
            }
        }
    }

    /// Whether the remote path `choice` from `src` to `dst` is fully alive
    /// *beyond the source node*: every link and every intermediate/egress
    /// node the packet would traverse is up.  The source node itself is the
    /// injection point and is checked separately by the caller.
    pub fn path_is_live(
        &self,
        src: usize,
        dst: usize,
        choice: usize,
        link_up: &[bool],
        node_up: &[bool],
    ) -> bool {
        match self.shape {
            Shape::FatTree2 {
                edges,
                cores,
                hosts_per_edge,
            } => {
                let src_edge = src / hosts_per_edge;
                let dst_edge = dst / hosts_per_edge;
                debug_assert_ne!(src_edge, dst_edge);
                debug_assert!(choice < cores);
                let core = edges + choice;
                link_up[src_edge * cores + choice]
                    && node_up[core]
                    && link_up[edges * cores + choice * edges + dst_edge]
                    && node_up[dst_edge]
            }
            Shape::Butterfly {
                switches,
                hosts_per_switch,
            } => {
                let s = src / hosts_per_switch;
                let d = dst / hosts_per_switch;
                debug_assert_ne!(s, d);
                let hop = |from: usize, to: usize| {
                    link_up[from * (switches - 1) + if to < from { to } else { to - 1 }]
                };
                let via = if choice == s || choice == d {
                    d
                } else {
                    choice
                };
                if via == d {
                    hop(s, d) && node_up[d]
                } else {
                    hop(s, via) && node_up[via] && hop(via, d) && node_up[d]
                }
            }
        }
    }

    /// Local output port at `node` for a packet destined to host `dst`:
    /// the host port when `dst` attaches here, else the (deterministic)
    /// next hop toward `dst`'s node.
    pub fn transit_port(&self, node: usize, dst: usize) -> usize {
        match self.shape {
            Shape::FatTree2 {
                edges,
                hosts_per_edge,
                ..
            } => {
                let dst_edge = dst / hosts_per_edge;
                if node < edges {
                    debug_assert_eq!(node, dst_edge, "edge transit must be at dst's edge");
                    dst % hosts_per_edge
                } else {
                    // Core switch: one port per edge, indexed by edge.
                    dst_edge
                }
            }
            Shape::Butterfly {
                hosts_per_switch, ..
            } => {
                let dst_switch = dst / hosts_per_switch;
                if node == dst_switch {
                    dst % hosts_per_switch
                } else {
                    Self::peer_port(hosts_per_switch, node, dst_switch)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LinkSpec, RoutingSpec};

    fn ft(edges: usize, cores: usize, hosts_per_edge: usize) -> Wiring {
        Wiring::build(&TopologySpec::FatTree2 {
            edges,
            cores,
            hosts_per_edge,
            routing: RoutingSpec::EcmpHash,
            link: LinkSpec::default(),
        })
    }

    fn bf(switches: usize, hosts_per_switch: usize) -> Wiring {
        Wiring::build(&TopologySpec::Butterfly {
            switches,
            hosts_per_switch,
            routing: RoutingSpec::EcmpHash,
            link: LinkSpec::default(),
        })
    }

    /// Every link's far end must point back at a port whose target is a
    /// link returning to the source side — i.e. the wiring is a consistent
    /// bidirectional pairing of Link ports.
    fn check_link_consistency(w: &Wiring) {
        for (li, link) in w.links.iter().enumerate() {
            let far = &w.nodes[link.to_node];
            assert!(link.to_port < far.ports.len(), "link {li} overruns node");
            assert!(
                matches!(far.ports[link.to_port], PortTarget::Link(_)),
                "link {li} lands on a non-link port"
            );
        }
        // Every Link port target indexes a real link.
        for (ni, node) in w.nodes.iter().enumerate() {
            for (p, target) in node.ports.iter().enumerate() {
                if let PortTarget::Link(li) = target {
                    assert!(*li < w.links.len(), "node {ni} port {p} dangles");
                }
            }
        }
    }

    #[test]
    fn fat_tree_shape_and_port_maps() {
        let w = ft(2, 4, 8);
        assert_eq!(w.nodes.len(), 6, "2 edges + 4 cores");
        assert_eq!(w.hosts.len(), 16);
        assert_eq!(w.links.len(), 2 * 2 * 4, "one up + one down per (e, c)");
        assert_eq!(w.nodes[0].ports.len(), 12, "edge: 8 hosts + 4 cores");
        assert_eq!(w.nodes[2].ports.len(), 2, "core: one port per edge");
        assert_eq!(w.nodes[0].ports[3], PortTarget::Host(3));
        assert_eq!(w.nodes[1].ports[3], PortTarget::Host(11));
        assert_eq!(w.host_node(11), 1);
        assert_eq!(w.path_choices(), 4);
        check_link_consistency(&w);
    }

    #[test]
    fn fat_tree_routing_ports() {
        let w = ft(2, 4, 8);
        // Remote: host 1 (edge 0) -> host 9 (edge 1) via core 2.
        assert_eq!(w.first_hop_port(1, 9, 2), 8 + 2);
        // At core 2 (node 4), transit toward edge 1.
        assert_eq!(w.transit_port(4, 9), 1);
        // At edge 1, transit to the local host port.
        assert_eq!(w.transit_port(1, 9), 1);
    }

    #[test]
    fn butterfly_shape_and_routing_ports() {
        let w = bf(4, 2);
        assert_eq!(w.nodes.len(), 4);
        assert_eq!(w.hosts.len(), 8);
        assert_eq!(w.links.len(), 4 * 3);
        assert_eq!(w.nodes[0].ports.len(), 2 + 3);
        assert_eq!(w.path_choices(), 4);
        check_link_consistency(&w);

        // Host 0 (switch 0) -> host 7 (switch 3).
        // Intermediate 2: first hop goes to switch 2 (port H + 1 at s=0).
        assert_eq!(w.first_hop_port(0, 7, 2), 2 + 1);
        // Intermediate equal to src or dst switch: direct to switch 3.
        assert_eq!(w.first_hop_port(0, 7, 0), 2 + 2);
        assert_eq!(w.first_hop_port(0, 7, 3), 2 + 2);
        // At switch 2, transit toward switch 3 (port H + 2 since 3 > 2).
        assert_eq!(w.transit_port(2, 7), 2 + 2);
        // At switch 3, deliver to the local host port.
        assert_eq!(w.transit_port(3, 7), 1);
    }

    #[test]
    fn link_between_matches_the_wired_port_targets() {
        for w in [ft(2, 4, 8), bf(4, 2)] {
            // Every Link port's index must agree with the closed-form
            // `link_between` of its (source node, destination node) pair,
            // and every link must be reachable that way.
            let mut seen = vec![false; w.links.len()];
            for (ni, node) in w.nodes.iter().enumerate() {
                for target in &node.ports {
                    if let PortTarget::Link(li) = target {
                        assert_eq!(w.link_between(ni, w.links[*li].to_node), Some(*li));
                        seen[*li] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "every link reachable");
        }
        // Unwired pairs have no link.
        let w = ft(2, 4, 8);
        assert_eq!(w.link_between(0, 1), None, "edge-edge is not wired");
        assert_eq!(w.link_between(2, 3), None, "core-core is not wired");
    }

    #[test]
    fn path_is_live_tracks_each_hop() {
        let w = ft(2, 4, 8);
        let mut link_up = vec![true; w.links.len()];
        let mut node_up = vec![true; w.nodes.len()];
        // Host 1 (edge 0) -> host 9 (edge 1) via core 2 (node 4).
        assert!(w.path_is_live(1, 9, 2, &link_up, &node_up));
        let uplink = w.link_between(0, 4).unwrap();
        link_up[uplink] = false;
        assert!(!w.path_is_live(1, 9, 2, &link_up, &node_up));
        assert!(w.path_is_live(1, 9, 3, &link_up, &node_up), "other core ok");
        link_up[uplink] = true;
        node_up[4] = false;
        assert!(!w.path_is_live(1, 9, 2, &link_up, &node_up));
        node_up[4] = true;
        link_up[w.link_between(4, 1).unwrap()] = false;
        assert!(!w.path_is_live(1, 9, 2, &link_up, &node_up));

        let w = bf(4, 2);
        let link_up = vec![true; w.links.len()];
        let mut node_up = vec![true; w.nodes.len()];
        // Host 0 (switch 0) -> host 7 (switch 3) via switch 2: two hops.
        assert!(w.path_is_live(0, 7, 2, &link_up, &node_up));
        node_up[2] = false;
        assert!(!w.path_is_live(0, 7, 2, &link_up, &node_up));
        // Choices equal to src or dst collapse to the direct one-hop path,
        // which does not cross switch 2.
        assert!(w.path_is_live(0, 7, 0, &link_up, &node_up));
        assert!(w.path_is_live(0, 7, 3, &link_up, &node_up));
    }

    #[test]
    fn butterfly_peer_ports_pair_up() {
        // peer_port(s, w) and peer_port(w, s) must address each other's
        // wire: follow every link and check it lands on the reciprocal
        // port.
        let w = bf(5, 1);
        for node in 0..5 {
            for other in (0..5).filter(|&o| o != node) {
                let port = Wiring::peer_port(1, node, other);
                let PortTarget::Link(li) = w.nodes[node].ports[port] else {
                    panic!("peer port is not a link");
                };
                assert_eq!(w.links[li].to_node, other);
                assert_eq!(w.links[li].to_port, Wiring::peer_port(1, other, node));
            }
        }
    }
}
