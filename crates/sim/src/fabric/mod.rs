//! Multi-switch fabrics: several switch nodes wired by latency/capacity
//! links, driven as one [`Steppable`] world.
//!
//! A [`FabricWorld`] instantiates one registry scheme per switch node of a
//! [`TopologySpec`] (every node is an independent N×N switch with its own
//! derived seed), wires the nodes with the directed links the
//! [`topology::Wiring`] describes, and routes packets host-to-host: the
//! engine injects packets addressed by *global* host pair, the fabric
//! rewrites them to node-local `(input, output)` ports at every hop, and
//! restores the global identity — ports, VOQ sequence number and original
//! arrival slot — the moment a packet reaches its destination host.  The
//! existing [`MetricsSink`](crate::metrics::sink::MetricsSink) therefore
//! measures true end-to-end delay and end-to-end reordering without knowing
//! fabrics exist.
//!
//! # Determinism
//!
//! The fabric advances strictly slot by slot in a fixed phase order — fault
//! events and parked-traffic release (faulted runs only), then link
//! arrivals (ascending link index), node steps (ascending node index),
//! link admissions (ascending link index) — and draws randomness from a
//! single seed-derived RNG in the router plus one derived seed per node.
//! [`Steppable::advance`] ignores batching internally, so batch size,
//! per-node thread counts and suite worker counts are pure performance
//! knobs: the delivered packet stream is byte-identical at any setting.
//!
//! # Fault injection
//!
//! A [`FaultSpec`] (installed with [`FabricWorld::with_faults`]) expands to
//! a deterministic event timeline applied at the *start* of each event's
//! slot — after that slot's injections (the engine injects slot-`s` packets
//! before the advance covering slot `s`), before the wire-arrival phase.
//! Losses are typed, never silent: packets flushed off a failing link or
//! node, packets arriving at an already-dead link or node, and injections
//! at a dead source node all decrement the pair's in-flight count and tick
//! a per-cause drop counter.  A down node's switch is rebuilt fresh from
//! its derived seed (a rebooted switch keeps no state).  Striped traffic
//! whose current path dies is *parked* at the source host until the pair's
//! in-flight packets drain (or the path recovers), so the re-randomized
//! path can never overtake surviving packets — reconvergence preserves the
//! fabric's reorder-freedom guarantee.

mod faults;
pub mod routing;
pub mod topology;

use std::collections::VecDeque;
use std::mem;

use crate::engine::RunConfig;
use crate::registry;
use crate::report::{FaultEventReport, FaultSummary};
use crate::spec::{FaultKind, FaultSpec, SizingSpec, SpecError, TopologySpec};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::{DeliveredPacket, Packet};
use sprinklers_core::switch::{DeliverySink, Steppable, Switch, SwitchStats};

use faults::{FaultEvent, FaultSchedule};
use routing::Router;
use topology::{PortTarget, Wiring};

/// Multiplier for deriving per-node seeds (the 64-bit golden ratio, the
/// same mixing constant `SplitMix64` uses).
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// The engine-visible identity a packet carried when it was injected,
/// parked here while the packet's header fields are node-local.
#[derive(Debug, Clone, Copy, Default)]
struct GlobalIdentity {
    src: usize,
    dst: usize,
    voq_seq: u64,
    arrival_slot: u64,
}

/// One switch node: the scheme instance plus its node-local VOQ sequence
/// counters (each hop re-sequences packets in its own arrival order).
struct Node {
    switch: Box<dyn Switch>,
    n: usize,
    /// `voq_seq[in_port * n + out_port]`: next node-local sequence number.
    voq_seq: Vec<u64>,
}

/// One directed inter-switch link: an ingress queue feeding a fixed-latency
/// wire that admits at most one packet per `gap` slots.
struct Link {
    to_node: usize,
    to_port: usize,
    latency: u64,
    gap: u64,
    /// Packets waiting to be admitted onto the wire.
    ingress: VecDeque<Packet>,
    /// In-flight packets with their arrival slots (non-decreasing order).
    wire: VecDeque<(u64, Packet)>,
    /// First slot at which the wire accepts the next packet.
    next_free: u64,
}

/// The reconvergence record of one applied fault event: which pairs lost
/// packets when it hit, and when the last of them delivered again.
struct EventTracker {
    slot: u64,
    kind: FaultKind,
    index: usize,
    dropped: u64,
    /// Affected pairs still awaiting their first post-event delivery
    /// (sorted; drained by [`FaultState::note_delivery`]).
    waiting: Vec<usize>,
    affected_pairs: usize,
    reconverged_slot: Option<u64>,
}

/// All fault machinery of one faulted run.  Absent (`None`) on healthy
/// fabrics, which therefore pay nothing and keep their exact legacy RNG
/// draw sequence.
struct FaultState {
    schedule: FaultSchedule,
    /// Current state per directed link / per node.
    link_up: Vec<bool>,
    node_up: Vec<bool>,
    /// Per node: data packets currently buffered inside it, per `(src,
    /// dst)` host pair — the node-down loss accounting
    /// (`node_pair_count[node][src * hosts + dst]`).
    node_pair_count: Vec<Vec<u64>>,
    /// Typed loss counters (see [`FaultSummary`]).
    dropped_link_failure: u64,
    dropped_node_failure: u64,
    dropped_dead_link: u64,
    dropped_dead_node: u64,
    /// Striped traffic parked at the source host per pair: filled while the
    /// pair's current path is dead with packets still in flight, drained —
    /// FIFO, ascending pair order — once the pair drains or the path
    /// recovers.
    parked: Vec<VecDeque<Packet>>,
    /// Pairs with a non-empty parked queue, kept sorted.
    parked_pairs: Vec<usize>,
    parked_count: u64,
    /// Reusable scratch: live-path mask, due events, affected pairs.
    live: Vec<bool>,
    due: Vec<FaultEvent>,
    affected: Vec<usize>,
    /// One tracker per applied event, in application order.
    trackers: Vec<EventTracker>,
}

impl FaultState {
    fn total_dropped(&self) -> u64 {
        self.dropped_link_failure
            + self.dropped_node_failure
            + self.dropped_dead_link
            + self.dropped_dead_node
    }

    /// A pair delivered a packet at `slot`: strike it from every event
    /// still waiting on it; an event whose last waiting pair resumes marks
    /// its reconvergence slot.
    fn note_delivery(&mut self, pair: usize, slot: u64) {
        for tracker in &mut self.trackers {
            if tracker.reconverged_slot.is_none() {
                if let Ok(pos) = tracker.waiting.binary_search(&pair) {
                    tracker.waiting.remove(pos);
                    if tracker.waiting.is_empty() {
                        tracker.reconverged_slot = Some(slot);
                    }
                }
            }
        }
    }
}

/// A multi-switch fabric the engine drives through [`Steppable`].
pub struct FabricWorld {
    wiring: Wiring,
    nodes: Vec<Node>,
    links: Vec<Link>,
    router: Router,
    label: String,
    hosts: usize,
    /// Global identity of every in-fabric packet, indexed by packet id
    /// (engine ids are dense, so this is a flat table).
    meta: Vec<GlobalIdentity>,
    /// Packets currently inside the fabric per `(src, dst)` host pair
    /// (`src * hosts + dst`) — the striping router's path-change guard.
    in_flight: Vec<u64>,
    injected: u64,
    delivered: u64,
    /// Reusable per-node delivery buffer (no steady-state allocation).
    scratch: Vec<DeliveredPacket>,
    /// Node-rebuild parameters, kept so a `node-up` after a `node-down`
    /// can reconstruct the switch exactly as [`FabricWorld::build`] did.
    scheme: String,
    sizing: SizingSpec,
    node_load: f64,
    seed: u64,
    threads: usize,
    /// Fault machinery; `None` for failure-free runs (the legacy path).
    faults: Option<FaultState>,
}

impl FabricWorld {
    /// Build the fabric a validated topology describes, with one `scheme`
    /// switch per node.
    ///
    /// Every node gets a seed derived from the scenario `seed` and its node
    /// index, and — for matrix-sized Sprinklers variants — a uniform rate
    /// matrix at the scenario's offered `load`, since each hop of a
    /// load-balanced fabric sees an approximately uniform mix of the host
    /// traffic.
    pub fn build(
        topo: &TopologySpec,
        scheme: &str,
        sizing: &SizingSpec,
        seed: u64,
        load: f64,
    ) -> Result<FabricWorld, SpecError> {
        let wiring = Wiring::build(topo);
        let hosts = wiring.hosts.len();
        let link_spec = topo.link();
        let node_load = if load.is_finite() {
            load.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mut nodes = Vec::with_capacity(wiring.nodes.len());
        for (idx, desc) in wiring.nodes.iter().enumerate() {
            let n = desc.ports.len();
            let node_seed = seed.wrapping_add(SEED_MIX.wrapping_mul(idx as u64 + 1));
            let matrix = TrafficMatrix::uniform(n, node_load);
            let switch = registry::build_named(scheme, n, sizing, &matrix, node_seed)
                .map_err(|e| e.context(format!("fabric node {idx} ({n} ports)")))?;
            nodes.push(Node {
                switch,
                n,
                voq_seq: vec![0; n * n],
            });
        }
        let links = wiring
            .links
            .iter()
            .map(|desc| Link {
                to_node: desc.to_node,
                to_port: desc.to_port,
                latency: link_spec.latency,
                gap: link_spec.gap,
                ingress: VecDeque::new(),
                wire: VecDeque::new(),
                next_free: 0,
            })
            .collect();
        let router = Router::new(
            topo.routing(),
            hosts,
            wiring.path_choices(),
            seed.wrapping_mul(SEED_MIX).wrapping_add(0xABCD),
        );
        let label = format!(
            "fabric:{}[{}/{}]",
            topo.kind_name(),
            scheme,
            topo.routing().name()
        );
        Ok(FabricWorld {
            wiring,
            nodes,
            links,
            router,
            label,
            hosts,
            meta: Vec::new(),
            in_flight: vec![0; hosts * hosts],
            injected: 0,
            delivered: 0,
            scratch: Vec::new(),
            scheme: scheme.to_string(),
            sizing: *sizing,
            node_load,
            seed,
            threads: 1,
            faults: None,
        })
    }

    /// Install a fault schedule (validated against this fabric's topology
    /// via [`FaultSpec::validate`]).  The schedule expands here — explicit
    /// events plus the seeded random generator — so the whole faulted run
    /// is a pure function of the spec.
    pub fn with_faults(mut self, faults: &FaultSpec, run: &RunConfig) -> Self {
        let pairs = self.hosts * self.hosts;
        self.faults = Some(FaultState {
            schedule: FaultSchedule::expand(faults, self.links.len(), run),
            link_up: vec![true; self.links.len()],
            node_up: vec![true; self.nodes.len()],
            node_pair_count: self.nodes.iter().map(|_| vec![0; pairs]).collect(),
            dropped_link_failure: 0,
            dropped_node_failure: 0,
            dropped_dead_link: 0,
            dropped_dead_node: 0,
            parked: (0..pairs).map(|_| VecDeque::new()).collect(),
            parked_pairs: Vec::new(),
            parked_count: 0,
            live: Vec::new(),
            due: Vec::new(),
            affected: Vec::new(),
            trackers: Vec::new(),
        });
        self
    }

    /// The fault-injection summary of this run (`None` when the world was
    /// built without faults).
    pub fn fault_summary(&self) -> Option<FaultSummary> {
        self.faults.as_ref().map(|f| FaultSummary {
            dropped_link_failure: f.dropped_link_failure,
            dropped_node_failure: f.dropped_node_failure,
            dropped_dead_link: f.dropped_dead_link,
            dropped_dead_node: f.dropped_dead_node,
            events: f
                .trackers
                .iter()
                .map(|t| FaultEventReport {
                    slot: t.slot,
                    kind: t.kind,
                    index: t.index,
                    dropped: t.dropped,
                    affected_pairs: t.affected_pairs,
                    reconverged_slot: t.reconverged_slot,
                })
                .collect(),
        })
    }

    /// Fill the fault scratch mask with, per path choice, whether the whole
    /// path from `src` to `dst` is alive beyond the source node.
    fn fill_live_mask(&mut self, src: usize, dst: usize) {
        let choices = self.wiring.path_choices();
        let f = self.faults.as_mut().expect("fault path");
        let FaultState {
            live,
            link_up,
            node_up,
            ..
        } = f;
        live.clear();
        for choice in 0..choices {
            live.push(self.wiring.path_is_live(src, dst, choice, link_up, node_up));
        }
    }

    /// Rewrite `packet` to node-local identity and hand it to `node`'s
    /// switch: local ports, a fresh node-local VOQ sequence number, and
    /// cleared single-switch routing fields (each hop stripes afresh).
    /// The caller has already set `arrival_slot` to the hop-entry slot.
    fn enqueue_at(&mut self, node_idx: usize, in_port: usize, out_port: usize, mut packet: Packet) {
        if let Some(f) = &mut self.faults {
            let m = &self.meta[packet.id as usize];
            f.node_pair_count[node_idx][m.src * self.hosts + m.dst] += 1;
        }
        let node = &mut self.nodes[node_idx];
        packet.set_ports(in_port, out_port);
        packet.set_intermediate(0);
        packet.set_stripe_size(0);
        packet.set_stripe_index(0);
        let seq = &mut node.voq_seq[in_port * node.n + out_port];
        packet.voq_seq = *seq;
        *seq += 1;
        node.switch.arrive(packet);
    }

    /// Route one delivery off a node: out to a host (restoring the global
    /// identity) or onto the ingress of the next link.
    fn dispatch(
        &mut self,
        node_idx: usize,
        delivered: DeliveredPacket,
        sink: &mut dyn DeliverySink,
    ) {
        let out_port = delivered.packet.output();
        if !delivered.packet.is_padding() {
            if let Some(f) = &mut self.faults {
                let m = &self.meta[delivered.packet.id as usize];
                f.node_pair_count[node_idx][m.src * self.hosts + m.dst] -= 1;
            }
        }
        match self.wiring.nodes[node_idx].ports[out_port] {
            PortTarget::Host(host) => {
                if delivered.packet.is_padding() {
                    // Padding is a node-local artifact (frame fill); the
                    // metrics sink counts it without touching identity.
                    sink.deliver(delivered);
                    return;
                }
                let mut packet = delivered.packet;
                let meta = self.meta[packet.id as usize];
                debug_assert_eq!(host, meta.dst, "packet surfaced at the wrong host");
                packet.set_ports(meta.src, meta.dst);
                packet.voq_seq = meta.voq_seq;
                packet.arrival_slot = meta.arrival_slot;
                let pair = meta.src * self.hosts + meta.dst;
                self.in_flight[pair] -= 1;
                self.delivered += 1;
                if let Some(f) = &mut self.faults {
                    f.note_delivery(pair, delivered.departure_slot);
                }
                sink.deliver(DeliveredPacket::new(packet, delivered.departure_slot));
            }
            PortTarget::Link(link_idx) => {
                // Padding never crosses links: it has no destination.
                if delivered.packet.is_padding() {
                    return;
                }
                if self.faults.as_ref().is_some_and(|f| !f.link_up[link_idx]) {
                    // The node committed this packet to a link that is down:
                    // a typed loss, not a silent drop.
                    let m = self.meta[delivered.packet.id as usize];
                    self.in_flight[m.src * self.hosts + m.dst] -= 1;
                    self.faults.as_mut().expect("fault path").dropped_dead_link += 1;
                    return;
                }
                self.links[link_idx].ingress.push_back(delivered.packet);
            }
        }
    }

    /// One slot of fabric time, in the fixed deterministic phase order:
    /// fault events and parked release (faulted runs only), then wire
    /// arrivals, node steps, wire admissions.
    fn step_slot(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
        // Phase 0 (faulted runs only): apply due fault events, then try to
        // release parked pairs whose path drained or recovered.
        if self.faults.is_some() {
            self.apply_due_faults(slot);
            self.release_parked();
        }
        // Phase 1: packets whose wire latency elapsed enter the far node.
        for link_idx in 0..self.links.len() {
            while let Some(&(due, _)) = self.links[link_idx].wire.front() {
                if due > slot {
                    break;
                }
                let (_, mut packet) = self.links[link_idx].wire.pop_front().unwrap();
                packet.arrival_slot = slot;
                let (to_node, to_port) = {
                    let link = &self.links[link_idx];
                    (link.to_node, link.to_port)
                };
                if self.faults.as_ref().is_some_and(|f| !f.node_up[to_node]) {
                    // The wire delivered into a dead node: typed loss.
                    let m = self.meta[packet.id as usize];
                    self.in_flight[m.src * self.hosts + m.dst] -= 1;
                    self.faults.as_mut().expect("fault path").dropped_dead_node += 1;
                    continue;
                }
                let dst = self.meta[packet.id as usize].dst;
                let out = self.wiring.transit_port(to_node, dst);
                self.enqueue_at(to_node, to_port, out, packet);
            }
        }
        // Phase 2: every node switches one slot; classify its deliveries.
        // Down nodes are skipped entirely: every scheme derives its phase
        // from the slot value itself (not from a step count), so a rebuilt
        // switch resumes correctly from any slot after `node-up`.
        let mut scratch = mem::take(&mut self.scratch);
        for node_idx in 0..self.nodes.len() {
            if self.faults.as_ref().is_some_and(|f| !f.node_up[node_idx]) {
                continue;
            }
            debug_assert!(scratch.is_empty());
            self.nodes[node_idx].switch.step(slot, &mut scratch);
            for delivered in scratch.drain(..) {
                self.dispatch(node_idx, delivered, sink);
            }
        }
        self.scratch = scratch;
        // Phase 3: links admit at most one queued packet per `gap` slots.
        // Down links admit nothing (their queues were flushed at the event;
        // dispatch keeps them empty while down).
        let link_up = self.faults.as_ref().map(|f| f.link_up.as_slice());
        for (link_idx, link) in self.links.iter_mut().enumerate() {
            if link_up.is_some_and(|up| !up[link_idx]) {
                continue;
            }
            if slot >= link.next_free {
                if let Some(packet) = link.ingress.pop_front() {
                    link.wire.push_back((slot + link.latency, packet));
                    link.next_free = slot + link.gap;
                }
            }
        }
    }

    /// Apply every fault event due at `slot` (phase 0a).
    fn apply_due_faults(&mut self, slot: u64) {
        {
            let f = self.faults.as_mut().expect("fault path");
            let FaultState { schedule, due, .. } = f;
            due.clear();
            due.extend_from_slice(schedule.due(slot));
            if due.is_empty() {
                return;
            }
        }
        // Steal the buffer so the events can borrow `self` mutably.
        let events = mem::take(&mut self.faults.as_mut().expect("fault path").due);
        for event in &events {
            self.apply_fault_event(*event);
        }
        self.faults.as_mut().expect("fault path").due = events;
    }

    /// Apply one fault event: flip the link/node state, flush in-flight
    /// packets off the failing element as typed losses, and open a
    /// reconvergence tracker over the pairs that lost packets.
    fn apply_fault_event(&mut self, event: FaultEvent) {
        let hosts = self.hosts;
        {
            let f = self.faults.as_mut().expect("fault path");
            f.affected.clear();
        }
        let mut dropped = 0u64;
        match event.kind {
            FaultKind::LinkDown => {
                let f = self.faults.as_mut().expect("fault path");
                f.link_up[event.index] = false;
                let link = &mut self.links[event.index];
                for packet in link
                    .ingress
                    .drain(..)
                    .chain(link.wire.drain(..).map(|(_, p)| p))
                {
                    let m = self.meta[packet.id as usize];
                    let pair = m.src * hosts + m.dst;
                    self.in_flight[pair] -= 1;
                    f.affected.push(pair);
                    dropped += 1;
                }
                f.dropped_link_failure += dropped;
            }
            FaultKind::LinkUp => {
                let f = self.faults.as_mut().expect("fault path");
                f.link_up[event.index] = true;
            }
            FaultKind::NodeDown => {
                {
                    let f = self.faults.as_mut().expect("fault path");
                    f.node_up[event.index] = false;
                    // Everything buffered inside the node is lost; the
                    // per-node pair counts say exactly what that was.
                    for (pair, count) in f.node_pair_count[event.index].iter_mut().enumerate() {
                        if *count > 0 {
                            self.in_flight[pair] -= *count;
                            dropped += *count;
                            f.affected.push(pair);
                            *count = 0;
                        }
                    }
                    f.dropped_node_failure += dropped;
                }
                // Rebuild the switch fresh from its derived seed: a
                // rebooted switch keeps no state.  `node-up` just flips the
                // flag back; the rebuilt switch has been idle since.
                let idx = event.index;
                let n = self.nodes[idx].n;
                let node_seed = self
                    .seed
                    .wrapping_add(SEED_MIX.wrapping_mul(idx as u64 + 1));
                let matrix = TrafficMatrix::uniform(n, self.node_load);
                let mut switch =
                    registry::build_named(&self.scheme, n, &self.sizing, &matrix, node_seed)
                        .expect("node scheme built once at construction");
                switch.set_threads(self.threads);
                self.nodes[idx].switch = switch;
                self.nodes[idx].voq_seq.fill(0);
            }
            FaultKind::NodeUp => {
                let f = self.faults.as_mut().expect("fault path");
                f.node_up[event.index] = true;
            }
        }
        let f = self.faults.as_mut().expect("fault path");
        f.affected.sort_unstable();
        f.affected.dedup();
        // Events that cost nothing reconverge trivially at their own slot.
        let reconverged = if f.affected.is_empty() {
            Some(event.slot)
        } else {
            None
        };
        f.trackers.push(EventTracker {
            slot: event.slot,
            kind: event.kind,
            index: event.index,
            dropped,
            waiting: f.affected.clone(),
            affected_pairs: f.affected.len(),
            reconverged_slot: reconverged,
        });
    }

    /// Phase 0b: re-inject parked packets for every pair whose stripe can
    /// now move (nothing in flight, or the old path recovered), in
    /// ascending pair order.
    fn release_parked(&mut self) {
        if self
            .faults
            .as_ref()
            .expect("fault path")
            .parked_pairs
            .is_empty()
        {
            return;
        }
        let mut pairs = mem::take(&mut self.faults.as_mut().expect("fault path").parked_pairs);
        pairs.retain(|&pair| !self.try_release_pair(pair));
        self.faults.as_mut().expect("fault path").parked_pairs = pairs;
    }

    /// Try to drain one pair's parked queue.  Returns `true` when the queue
    /// emptied (the pair leaves the parked set).
    fn try_release_pair(&mut self, pair: usize) -> bool {
        let (src, dst) = (pair / self.hosts, pair % self.hosts);
        let current = self
            .router
            .current_choice(src, dst)
            .expect("parking is stripe-only");
        {
            let f = self.faults.as_ref().expect("fault path");
            let live_now = self
                .wiring
                .path_is_live(src, dst, current, &f.link_up, &f.node_up);
            if self.in_flight[pair] > 0 && !live_now {
                return false; // still draining onto a dead path
            }
        }
        loop {
            let f = self.faults.as_mut().expect("fault path");
            let Some(packet) = f.parked[pair].pop_front() else {
                break;
            };
            f.parked_count -= 1;
            let (src_node, in_port) = self.wiring.hosts[src];
            if !f.node_up[src_node] {
                // The source node died while the packet was parked.
                f.dropped_dead_node += 1;
                continue;
            }
            self.fill_live_mask(src, dst);
            let mask = mem::take(&mut self.faults.as_mut().expect("fault path").live);
            let choice = self
                .router
                .choose(src, dst, self.in_flight[pair], Some(&mask));
            self.faults.as_mut().expect("fault path").live = mask;
            let out = self.wiring.first_hop_port(src, dst, choice);
            self.in_flight[pair] += 1;
            self.enqueue_at(src_node, in_port, out, packet);
        }
        true
    }
}

impl Steppable for FabricWorld {
    fn ports(&self) -> usize {
        self.hosts
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn inject(&mut self, packet: Packet) {
        let src = packet.input();
        let dst = packet.output();
        // Park the engine-visible identity; header fields go node-local
        // until the packet surfaces at its destination host.
        let id = packet.id as usize;
        if id >= self.meta.len() {
            self.meta.resize(id + 1, GlobalIdentity::default());
        }
        self.meta[id] = GlobalIdentity {
            src,
            dst,
            voq_seq: packet.voq_seq,
            arrival_slot: packet.arrival_slot,
        };
        self.injected += 1;
        let (src_node, in_port) = self.wiring.hosts[src];
        if let Some(f) = &mut self.faults {
            if !f.node_up[src_node] {
                // Injection at a dead source node: the host's NIC has
                // nowhere to hand the packet.  Typed loss, never in flight.
                f.dropped_dead_node += 1;
                return;
            }
        }
        let dst_node = self.wiring.host_node(dst);
        let pair = src * self.hosts + dst;
        let out = if src_node == dst_node {
            // Same-node traffic never leaves the switch: no path choice.
            self.wiring.transit_port(src_node, dst)
        } else if self.faults.is_some() {
            // Striped pairs whose current path died must not re-randomize
            // while packets are in flight: park the packet at the source
            // host until the pair drains or the path recovers.  A non-empty
            // parked queue parks unconditionally (FIFO order).
            if let Some(current) = self.router.current_choice(src, dst) {
                let in_flight = self.in_flight[pair];
                let f = self.faults.as_ref().expect("fault path");
                let must_park = !f.parked[pair].is_empty()
                    || (in_flight > 0
                        && !self
                            .wiring
                            .path_is_live(src, dst, current, &f.link_up, &f.node_up));
                if must_park {
                    let f = self.faults.as_mut().expect("fault path");
                    if f.parked[pair].is_empty() {
                        let pos = f.parked_pairs.binary_search(&pair).unwrap_err();
                        f.parked_pairs.insert(pos, pair);
                    }
                    f.parked[pair].push_back(packet);
                    f.parked_count += 1;
                    return;
                }
            }
            self.fill_live_mask(src, dst);
            let mask = mem::take(&mut self.faults.as_mut().expect("fault path").live);
            let choice = self
                .router
                .choose(src, dst, self.in_flight[pair], Some(&mask));
            self.faults.as_mut().expect("fault path").live = mask;
            self.wiring.first_hop_port(src, dst, choice)
        } else {
            let choice = self.router.choose(src, dst, self.in_flight[pair], None);
            self.wiring.first_hop_port(src, dst, choice)
        };
        self.in_flight[pair] += 1;
        self.enqueue_at(src_node, in_port, out, packet);
    }

    fn advance(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink) {
        // Strictly slot at a time: fabric determinism does not depend on
        // how the engine batches (each node's own empty-slot path is cheap).
        for k in 0..u64::from(count) {
            self.step_slot(first_slot + k, sink);
        }
    }

    fn set_parallelism(&mut self, threads: usize) {
        self.threads = threads;
        for node in &mut self.nodes {
            node.switch.set_threads(threads);
        }
    }

    fn counters(&self) -> SwitchStats {
        let mut stats = SwitchStats {
            total_arrivals: self.injected,
            total_departures: self.delivered,
            ..SwitchStats::default()
        };
        for node in &self.nodes {
            let s = node.switch.stats();
            stats.queued_at_inputs += s.queued_at_inputs;
            stats.queued_at_intermediates += s.queued_at_intermediates;
            stats.queued_at_outputs += s.queued_at_outputs;
        }
        for link in &self.links {
            stats.queued_at_intermediates += link.ingress.len() + link.wire.len();
        }
        if let Some(f) = &self.faults {
            stats.total_dropped = f.total_dropped();
            // Parked packets wait at the source host, i.e. at the fabric's
            // input edge.
            stats.queued_at_inputs += f.parked_count as usize;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LinkSpec, RoutingSpec};

    fn fat_tree(routing: RoutingSpec, latency: u64) -> TopologySpec {
        TopologySpec::FatTree2 {
            edges: 2,
            cores: 2,
            hosts_per_edge: 4,
            routing,
            link: LinkSpec { latency, gap: 1 },
        }
    }

    fn drive(world: &mut FabricWorld, slots: std::ops::Range<u64>) -> Vec<DeliveredPacket> {
        let mut out = Vec::new();
        for slot in slots {
            world.step_slot(slot, &mut out);
        }
        out
    }

    #[test]
    fn local_packet_crosses_one_switch() {
        let topo = fat_tree(RoutingSpec::EcmpHash, 1);
        let mut world = FabricWorld::build(&topo, "oq", &SizingSpec::Matrix, 7, 0.5).unwrap();
        assert_eq!(world.ports(), 8);
        // Host 1 -> host 2: same edge switch, one hop.
        let mut p = Packet::new(1, 2, 0, 0).with_flow(42);
        p.voq_seq = 9;
        world.inject(p);
        let out = drive(&mut world, 1..6);
        assert_eq!(out.len(), 1);
        let d = &out[0];
        assert_eq!((d.packet.input(), d.packet.output()), (1, 2));
        assert_eq!(d.packet.voq_seq, 9, "global voq_seq restored");
        assert_eq!(d.packet.flow, 42);
        assert_eq!(d.packet.arrival_slot, 0, "global arrival slot restored");
        assert_eq!(d.departure_slot, 1, "OQ forwards in the next slot");
    }

    #[test]
    fn remote_packet_delay_is_three_hops_plus_two_wires() {
        // src edge (1 slot) + wire (latency) + core (1) + wire (latency) +
        // dst edge (1): with OQ nodes and an empty fabric the end-to-end
        // delay is exactly 3 + 2·latency.
        for latency in [1u64, 3] {
            let topo = fat_tree(RoutingSpec::EcmpHash, latency);
            let mut world = FabricWorld::build(&topo, "oq", &SizingSpec::Matrix, 7, 0.5).unwrap();
            // Host 0 -> host 6 (edge 0 -> edge 1).
            world.inject(Packet::new(0, 6, 0, 0));
            let out = drive(&mut world, 1..64);
            assert_eq!(out.len(), 1, "latency {latency}");
            assert_eq!(out[0].delay(), 3 + 2 * latency, "latency {latency}");
        }
    }

    #[test]
    fn counters_balance_after_a_drain() {
        let topo = fat_tree(RoutingSpec::RandomPacket, 2);
        let mut world = FabricWorld::build(&topo, "oq", &SizingSpec::Matrix, 3, 0.5).unwrap();
        let mut id = 0;
        for slot in 0..32u64 {
            for src in 0..8usize {
                let dst = (src + 3) % 8;
                let mut p = Packet::new(src, dst, id, slot);
                p.voq_seq = slot;
                world.inject(p);
                id += 1;
            }
            let mut out = Vec::new();
            world.step_slot(slot, &mut out);
        }
        // Drain well past the last injection; every packet must surface.
        drive(&mut world, 32..2_000);
        let stats = world.counters();
        assert_eq!(stats.total_arrivals, 8 * 32);
        assert_eq!(stats.total_departures, stats.total_arrivals);
        assert_eq!(stats.total_queued(), 0, "fully drained");
        assert!(world.in_flight.iter().all(|&f| f == 0));
    }

    use crate::spec::{FaultEventSpec, FaultSpec};

    fn faulted_world(topo: &TopologySpec, events: Vec<FaultEventSpec>, seed: u64) -> FabricWorld {
        let spec = FaultSpec {
            events,
            random: None,
        };
        let run = RunConfig {
            slots: 4_000,
            warmup_slots: 0,
            drain_slots: 4_000,
        };
        FabricWorld::build(topo, "oq", &SizingSpec::Matrix, seed, 0.5)
            .unwrap()
            .with_faults(&spec, &run)
    }

    fn event(slot: u64, kind: FaultKind, index: usize) -> FaultEventSpec {
        FaultEventSpec { slot, kind, index }
    }

    /// Per-slot conservation canary: every injected packet is delivered,
    /// dropped (typed), in flight, or parked — at every single slot.
    fn assert_conserved(world: &FabricWorld) {
        let f = world.faults.as_ref().expect("faulted world");
        let in_flight: u64 = world.in_flight.iter().sum();
        assert_eq!(
            world.injected,
            world.delivered + f.total_dropped() + in_flight + f.parked_count,
            "conservation violated: injected {} delivered {} dropped {} in_flight {} parked {}",
            world.injected,
            world.delivered,
            f.total_dropped(),
            in_flight,
            f.parked_count
        );
    }

    #[test]
    fn a_link_down_flushes_in_flight_packets_as_typed_losses() {
        let topo = fat_tree(RoutingSpec::EcmpHash, 4);
        // ECMP pins pair (0, 6) to one core; find its uplink and cut it
        // right after injection, while the packet rides the wire.
        let mut world = faulted_world(&topo, vec![], 7);
        world.inject(Packet::new(0, 6, 0, 0));
        drive(&mut world, 0..3); // through the edge switch, onto the wire
        let live_links: Vec<usize> = (0..world.links.len())
            .filter(|&l| world.links[l].ingress.len() + world.links[l].wire.len() > 0)
            .collect();
        assert_eq!(live_links.len(), 1, "one packet on one uplink");
        let cut = live_links[0];

        let mut world = faulted_world(&topo, vec![event(3, FaultKind::LinkDown, cut)], 7);
        world.inject(Packet::new(0, 6, 0, 0));
        let out = drive(&mut world, 0..64);
        assert!(out.is_empty(), "the only packet died on the cut link");
        let f = world.faults.as_ref().unwrap();
        assert_eq!(f.dropped_link_failure, 1);
        assert_eq!(world.counters().total_dropped, 1);
        assert_conserved(&world);
        let summary = world.fault_summary().unwrap();
        assert_eq!(summary.events.len(), 1);
        assert_eq!(summary.events[0].dropped, 1);
        assert_eq!(summary.events[0].affected_pairs, 1);
        assert_eq!(
            summary.events[0].reconverged_slot, None,
            "no later delivery for the pair: never reconverged"
        );
    }

    #[test]
    fn a_node_down_drops_buffered_packets_and_blocks_injection() {
        let topo = fat_tree(RoutingSpec::EcmpHash, 2);
        // Node 0 is the edge switch of hosts 0..4.  Kill it with a packet
        // buffered inside, then inject at a dead host.
        let mut world = faulted_world(&topo, vec![event(1, FaultKind::NodeDown, 0)], 7);
        world.inject(Packet::new(0, 2, 0, 0)); // local pair, buffered in node 0
        world.step_slot(0, &mut Vec::new());
        let out = drive(&mut world, 1..8);
        assert!(out.is_empty());
        let f = world.faults.as_ref().unwrap();
        assert_eq!(
            f.dropped_node_failure, 1,
            "buffered packet lost at node-down"
        );
        // An injection at a host of the dead node is a typed dead-node loss.
        world.inject(Packet::new(1, 2, 1, 8));
        let f = world.faults.as_ref().unwrap();
        assert_eq!(f.dropped_dead_node, 1);
        assert_conserved(&world);
    }

    #[test]
    fn a_recovered_node_carries_traffic_again() {
        let topo = fat_tree(RoutingSpec::EcmpHash, 1);
        let mut world = faulted_world(
            &topo,
            vec![
                event(1, FaultKind::NodeDown, 0),
                event(10, FaultKind::NodeUp, 0),
            ],
            7,
        );
        drive(&mut world, 0..12); // apply down + up with nothing in flight
        world.inject(Packet::new(1, 2, 0, 12));
        let out = drive(&mut world, 12..20);
        assert_eq!(out.len(), 1, "rebuilt switch forwards again");
        assert_eq!(out[0].packet.output(), 2);
        assert_conserved(&world);
        let summary = world.fault_summary().unwrap();
        assert_eq!(summary.events.len(), 2);
        assert_eq!(
            summary.events[0].reconverged_slot,
            Some(1),
            "nothing was in flight: the down event reconverges trivially"
        );
    }

    #[test]
    fn a_flushed_link_drains_the_pair_immediately() {
        let topo = fat_tree(RoutingSpec::Stripe, 6);
        let mut world = faulted_world(&topo, vec![], 3);
        // Open the stripe for pair (0, 6) and put the packet on its uplink
        // wire, then cut that uplink: the packet is flushed as a typed
        // loss and the pair is fully drained again.
        world.inject(Packet::new(0, 6, 0, 0));
        let current = world.router.current_choice(0, 6).unwrap();
        drive(&mut world, 0..2); // edge forwards at slot 1, wire admits
        let uplink = world.wiring.link_between(0, 2 + current).unwrap();
        world.apply_fault_event(FaultEvent {
            slot: 2,
            kind: FaultKind::LinkDown,
            index: uplink,
        });
        assert_eq!(world.in_flight[6], 0, "flushed off the cut wire");
        assert_eq!(world.faults.as_ref().unwrap().dropped_link_failure, 1);
        assert_conserved(&world);
    }

    #[test]
    fn striped_pairs_park_on_a_dead_path_and_release_after_drain() {
        let topo = fat_tree(RoutingSpec::Stripe, 6);
        let mut world = faulted_world(&topo, vec![], 3);
        // Put pair (0, 6)'s first packet on its uplink wire, then cut the
        // *downlink* of the same path: the packet survives (it has not
        // reached the downlink yet) but the path is now dead.
        world.inject(Packet::new(0, 6, 0, 0));
        let current = world.router.current_choice(0, 6).unwrap();
        drive(&mut world, 0..3); // on the uplink wire, due at slot 7
        let downlink = world.wiring.link_between(2 + current, 1).unwrap();
        world.apply_fault_event(FaultEvent {
            slot: 3,
            kind: FaultKind::LinkDown,
            index: downlink,
        });
        assert_eq!(world.in_flight[6], 1, "the survivor is still in flight");
        // A new injection for the pair must park: re-randomizing now could
        // overtake the survivor.
        world.inject(Packet::new(0, 6, 1, 3));
        let f = world.faults.as_ref().unwrap();
        assert_eq!(f.parked_count, 1, "injection parked behind the survivor");
        assert_eq!(f.parked_pairs, vec![6]);
        assert_conserved(&world);
        // The survivor eventually hits the dead downlink and becomes a
        // typed loss; the pair drains, the parked packet releases onto the
        // other (live) core and delivers.
        let out = drive(&mut world, 3..128);
        assert_eq!(out.len(), 1, "only the released packet lands");
        assert_eq!(out[0].packet.output(), 6);
        let f = world.faults.as_ref().unwrap();
        assert_eq!(f.dropped_dead_link, 1, "survivor died at the dead hop");
        assert_eq!(f.parked_count, 0);
        assert!(f.parked_pairs.is_empty());
        assert_eq!(
            world.router.current_choice(0, 6),
            Some(1 - current),
            "the released stripe re-randomized onto the surviving core"
        );
        assert_conserved(&world);
    }

    #[test]
    fn faulted_counters_include_drops_and_parked_traffic() {
        let topo = fat_tree(RoutingSpec::Stripe, 2);
        let mut world = faulted_world(&topo, vec![event(2, FaultKind::NodeDown, 2)], 9);
        let mut id = 0;
        for slot in 0..64u64 {
            for src in 0..8usize {
                let dst = (src + 4) % 8; // all remote: every pair crosses a core
                let mut p = Packet::new(src, dst, id, slot);
                p.voq_seq = slot;
                world.inject(p);
                id += 1;
            }
            world.step_slot(slot, &mut Vec::new());
            assert_conserved(&world);
        }
        drive(&mut world, 64..4_000);
        assert_conserved(&world);
        let stats = world.counters();
        let f = world.faults.as_ref().unwrap();
        assert_eq!(stats.total_dropped, f.total_dropped());
        assert!(stats.total_dropped > 0, "a dead core must cost packets");
        assert_eq!(
            stats.total_arrivals,
            stats.total_departures + stats.total_dropped,
            "after a full drain: delivered + dropped == injected"
        );
    }
}
