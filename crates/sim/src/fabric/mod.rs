//! Multi-switch fabrics: several switch nodes wired by latency/capacity
//! links, driven as one [`Steppable`] world.
//!
//! A [`FabricWorld`] instantiates one registry scheme per switch node of a
//! [`TopologySpec`] (every node is an independent N×N switch with its own
//! derived seed), wires the nodes with the directed links the
//! [`topology::Wiring`] describes, and routes packets host-to-host: the
//! engine injects packets addressed by *global* host pair, the fabric
//! rewrites them to node-local `(input, output)` ports at every hop, and
//! restores the global identity — ports, VOQ sequence number and original
//! arrival slot — the moment a packet reaches its destination host.  The
//! existing [`MetricsSink`](crate::metrics::sink::MetricsSink) therefore
//! measures true end-to-end delay and end-to-end reordering without knowing
//! fabrics exist.
//!
//! # Determinism
//!
//! The fabric advances strictly slot by slot in a fixed phase order — link
//! arrivals (ascending link index), node steps (ascending node index),
//! link admissions (ascending link index) — and draws randomness from a
//! single seed-derived RNG in the router plus one derived seed per node.
//! [`Steppable::advance`] ignores batching internally, so batch size,
//! per-node thread counts and suite worker counts are pure performance
//! knobs: the delivered packet stream is byte-identical at any setting.

pub mod routing;
pub mod topology;

use std::collections::VecDeque;
use std::mem;

use crate::registry;
use crate::spec::{SizingSpec, SpecError, TopologySpec};
use sprinklers_core::matrix::TrafficMatrix;
use sprinklers_core::packet::{DeliveredPacket, Packet};
use sprinklers_core::switch::{DeliverySink, Steppable, Switch, SwitchStats};

use routing::Router;
use topology::{PortTarget, Wiring};

/// Multiplier for deriving per-node seeds (the 64-bit golden ratio, the
/// same mixing constant `SplitMix64` uses).
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// The engine-visible identity a packet carried when it was injected,
/// parked here while the packet's header fields are node-local.
#[derive(Debug, Clone, Copy, Default)]
struct GlobalIdentity {
    src: usize,
    dst: usize,
    voq_seq: u64,
    arrival_slot: u64,
}

/// One switch node: the scheme instance plus its node-local VOQ sequence
/// counters (each hop re-sequences packets in its own arrival order).
struct Node {
    switch: Box<dyn Switch>,
    n: usize,
    /// `voq_seq[in_port * n + out_port]`: next node-local sequence number.
    voq_seq: Vec<u64>,
}

/// One directed inter-switch link: an ingress queue feeding a fixed-latency
/// wire that admits at most one packet per `gap` slots.
struct Link {
    to_node: usize,
    to_port: usize,
    latency: u64,
    gap: u64,
    /// Packets waiting to be admitted onto the wire.
    ingress: VecDeque<Packet>,
    /// In-flight packets with their arrival slots (non-decreasing order).
    wire: VecDeque<(u64, Packet)>,
    /// First slot at which the wire accepts the next packet.
    next_free: u64,
}

/// A multi-switch fabric the engine drives through [`Steppable`].
pub struct FabricWorld {
    wiring: Wiring,
    nodes: Vec<Node>,
    links: Vec<Link>,
    router: Router,
    label: String,
    hosts: usize,
    /// Global identity of every in-fabric packet, indexed by packet id
    /// (engine ids are dense, so this is a flat table).
    meta: Vec<GlobalIdentity>,
    /// Packets currently inside the fabric per `(src, dst)` host pair
    /// (`src * hosts + dst`) — the striping router's path-change guard.
    in_flight: Vec<u64>,
    injected: u64,
    delivered: u64,
    /// Reusable per-node delivery buffer (no steady-state allocation).
    scratch: Vec<DeliveredPacket>,
}

impl FabricWorld {
    /// Build the fabric a validated topology describes, with one `scheme`
    /// switch per node.
    ///
    /// Every node gets a seed derived from the scenario `seed` and its node
    /// index, and — for matrix-sized Sprinklers variants — a uniform rate
    /// matrix at the scenario's offered `load`, since each hop of a
    /// load-balanced fabric sees an approximately uniform mix of the host
    /// traffic.
    pub fn build(
        topo: &TopologySpec,
        scheme: &str,
        sizing: &SizingSpec,
        seed: u64,
        load: f64,
    ) -> Result<FabricWorld, SpecError> {
        let wiring = Wiring::build(topo);
        let hosts = wiring.hosts.len();
        let link_spec = topo.link();
        let node_load = if load.is_finite() {
            load.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mut nodes = Vec::with_capacity(wiring.nodes.len());
        for (idx, desc) in wiring.nodes.iter().enumerate() {
            let n = desc.ports.len();
            let node_seed = seed.wrapping_add(SEED_MIX.wrapping_mul(idx as u64 + 1));
            let matrix = TrafficMatrix::uniform(n, node_load);
            let switch = registry::build_named(scheme, n, sizing, &matrix, node_seed)
                .map_err(|e| e.context(format!("fabric node {idx} ({n} ports)")))?;
            nodes.push(Node {
                switch,
                n,
                voq_seq: vec![0; n * n],
            });
        }
        let links = wiring
            .links
            .iter()
            .map(|desc| Link {
                to_node: desc.to_node,
                to_port: desc.to_port,
                latency: link_spec.latency,
                gap: link_spec.gap,
                ingress: VecDeque::new(),
                wire: VecDeque::new(),
                next_free: 0,
            })
            .collect();
        let router = Router::new(
            topo.routing(),
            hosts,
            wiring.path_choices(),
            seed.wrapping_mul(SEED_MIX).wrapping_add(0xABCD),
        );
        let label = format!(
            "fabric:{}[{}/{}]",
            topo.kind_name(),
            scheme,
            topo.routing().name()
        );
        Ok(FabricWorld {
            wiring,
            nodes,
            links,
            router,
            label,
            hosts,
            meta: Vec::new(),
            in_flight: vec![0; hosts * hosts],
            injected: 0,
            delivered: 0,
            scratch: Vec::new(),
        })
    }

    /// Rewrite `packet` to node-local identity and hand it to `node`'s
    /// switch: local ports, a fresh node-local VOQ sequence number, and
    /// cleared single-switch routing fields (each hop stripes afresh).
    /// The caller has already set `arrival_slot` to the hop-entry slot.
    fn enqueue_at(&mut self, node_idx: usize, in_port: usize, out_port: usize, mut packet: Packet) {
        let node = &mut self.nodes[node_idx];
        packet.set_ports(in_port, out_port);
        packet.set_intermediate(0);
        packet.set_stripe_size(0);
        packet.set_stripe_index(0);
        let seq = &mut node.voq_seq[in_port * node.n + out_port];
        packet.voq_seq = *seq;
        *seq += 1;
        node.switch.arrive(packet);
    }

    /// Route one delivery off a node: out to a host (restoring the global
    /// identity) or onto the ingress of the next link.
    fn dispatch(
        &mut self,
        node_idx: usize,
        delivered: DeliveredPacket,
        sink: &mut dyn DeliverySink,
    ) {
        let out_port = delivered.packet.output();
        match self.wiring.nodes[node_idx].ports[out_port] {
            PortTarget::Host(host) => {
                if delivered.packet.is_padding() {
                    // Padding is a node-local artifact (frame fill); the
                    // metrics sink counts it without touching identity.
                    sink.deliver(delivered);
                    return;
                }
                let mut packet = delivered.packet;
                let meta = self.meta[packet.id as usize];
                debug_assert_eq!(host, meta.dst, "packet surfaced at the wrong host");
                packet.set_ports(meta.src, meta.dst);
                packet.voq_seq = meta.voq_seq;
                packet.arrival_slot = meta.arrival_slot;
                self.in_flight[meta.src * self.hosts + meta.dst] -= 1;
                self.delivered += 1;
                sink.deliver(DeliveredPacket::new(packet, delivered.departure_slot));
            }
            PortTarget::Link(link_idx) => {
                // Padding never crosses links: it has no destination.
                if !delivered.packet.is_padding() {
                    self.links[link_idx].ingress.push_back(delivered.packet);
                }
            }
        }
    }

    /// One slot of fabric time, in the fixed deterministic phase order:
    /// wire arrivals, node steps, wire admissions.
    fn step_slot(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
        // Phase 1: packets whose wire latency elapsed enter the far node.
        for link_idx in 0..self.links.len() {
            while let Some(&(due, _)) = self.links[link_idx].wire.front() {
                if due > slot {
                    break;
                }
                let (_, mut packet) = self.links[link_idx].wire.pop_front().unwrap();
                packet.arrival_slot = slot;
                let (to_node, to_port) = {
                    let link = &self.links[link_idx];
                    (link.to_node, link.to_port)
                };
                let dst = self.meta[packet.id as usize].dst;
                let out = self.wiring.transit_port(to_node, dst);
                self.enqueue_at(to_node, to_port, out, packet);
            }
        }
        // Phase 2: every node switches one slot; classify its deliveries.
        let mut scratch = mem::take(&mut self.scratch);
        for node_idx in 0..self.nodes.len() {
            debug_assert!(scratch.is_empty());
            self.nodes[node_idx].switch.step(slot, &mut scratch);
            for delivered in scratch.drain(..) {
                self.dispatch(node_idx, delivered, sink);
            }
        }
        self.scratch = scratch;
        // Phase 3: links admit at most one queued packet per `gap` slots.
        for link in &mut self.links {
            if slot >= link.next_free {
                if let Some(packet) = link.ingress.pop_front() {
                    link.wire.push_back((slot + link.latency, packet));
                    link.next_free = slot + link.gap;
                }
            }
        }
    }
}

impl Steppable for FabricWorld {
    fn ports(&self) -> usize {
        self.hosts
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn inject(&mut self, packet: Packet) {
        let src = packet.input();
        let dst = packet.output();
        // Park the engine-visible identity; header fields go node-local
        // until the packet surfaces at its destination host.
        let id = packet.id as usize;
        if id >= self.meta.len() {
            self.meta.resize(id + 1, GlobalIdentity::default());
        }
        self.meta[id] = GlobalIdentity {
            src,
            dst,
            voq_seq: packet.voq_seq,
            arrival_slot: packet.arrival_slot,
        };
        let (src_node, in_port) = self.wiring.hosts[src];
        let dst_node = self.wiring.host_node(dst);
        let out = if src_node == dst_node {
            // Same-node traffic never leaves the switch: no path choice.
            self.wiring.transit_port(src_node, dst)
        } else {
            let in_flight = self.in_flight[src * self.hosts + dst];
            let choice = self.router.choose(src, dst, in_flight);
            self.wiring.first_hop_port(src, dst, choice)
        };
        self.in_flight[src * self.hosts + dst] += 1;
        self.injected += 1;
        self.enqueue_at(src_node, in_port, out, packet);
    }

    fn advance(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink) {
        // Strictly slot at a time: fabric determinism does not depend on
        // how the engine batches (each node's own empty-slot path is cheap).
        for k in 0..u64::from(count) {
            self.step_slot(first_slot + k, sink);
        }
    }

    fn set_parallelism(&mut self, threads: usize) {
        for node in &mut self.nodes {
            node.switch.set_threads(threads);
        }
    }

    fn counters(&self) -> SwitchStats {
        let mut stats = SwitchStats {
            total_arrivals: self.injected,
            total_departures: self.delivered,
            ..SwitchStats::default()
        };
        for node in &self.nodes {
            let s = node.switch.stats();
            stats.queued_at_inputs += s.queued_at_inputs;
            stats.queued_at_intermediates += s.queued_at_intermediates;
            stats.queued_at_outputs += s.queued_at_outputs;
        }
        for link in &self.links {
            stats.queued_at_intermediates += link.ingress.len() + link.wire.len();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LinkSpec, RoutingSpec};

    fn fat_tree(routing: RoutingSpec, latency: u64) -> TopologySpec {
        TopologySpec::FatTree2 {
            edges: 2,
            cores: 2,
            hosts_per_edge: 4,
            routing,
            link: LinkSpec { latency, gap: 1 },
        }
    }

    fn drive(world: &mut FabricWorld, slots: std::ops::Range<u64>) -> Vec<DeliveredPacket> {
        let mut out = Vec::new();
        for slot in slots {
            world.step_slot(slot, &mut out);
        }
        out
    }

    #[test]
    fn local_packet_crosses_one_switch() {
        let topo = fat_tree(RoutingSpec::EcmpHash, 1);
        let mut world = FabricWorld::build(&topo, "oq", &SizingSpec::Matrix, 7, 0.5).unwrap();
        assert_eq!(world.ports(), 8);
        // Host 1 -> host 2: same edge switch, one hop.
        let mut p = Packet::new(1, 2, 0, 0).with_flow(42);
        p.voq_seq = 9;
        world.inject(p);
        let out = drive(&mut world, 1..6);
        assert_eq!(out.len(), 1);
        let d = &out[0];
        assert_eq!((d.packet.input(), d.packet.output()), (1, 2));
        assert_eq!(d.packet.voq_seq, 9, "global voq_seq restored");
        assert_eq!(d.packet.flow, 42);
        assert_eq!(d.packet.arrival_slot, 0, "global arrival slot restored");
        assert_eq!(d.departure_slot, 1, "OQ forwards in the next slot");
    }

    #[test]
    fn remote_packet_delay_is_three_hops_plus_two_wires() {
        // src edge (1 slot) + wire (latency) + core (1) + wire (latency) +
        // dst edge (1): with OQ nodes and an empty fabric the end-to-end
        // delay is exactly 3 + 2·latency.
        for latency in [1u64, 3] {
            let topo = fat_tree(RoutingSpec::EcmpHash, latency);
            let mut world = FabricWorld::build(&topo, "oq", &SizingSpec::Matrix, 7, 0.5).unwrap();
            // Host 0 -> host 6 (edge 0 -> edge 1).
            world.inject(Packet::new(0, 6, 0, 0));
            let out = drive(&mut world, 1..64);
            assert_eq!(out.len(), 1, "latency {latency}");
            assert_eq!(out[0].delay(), 3 + 2 * latency, "latency {latency}");
        }
    }

    #[test]
    fn counters_balance_after_a_drain() {
        let topo = fat_tree(RoutingSpec::RandomPacket, 2);
        let mut world = FabricWorld::build(&topo, "oq", &SizingSpec::Matrix, 3, 0.5).unwrap();
        let mut id = 0;
        for slot in 0..32u64 {
            for src in 0..8usize {
                let dst = (src + 3) % 8;
                let mut p = Packet::new(src, dst, id, slot);
                p.voq_seq = slot;
                world.inject(p);
                id += 1;
            }
            let mut out = Vec::new();
            world.step_slot(slot, &mut out);
        }
        // Drain well past the last injection; every packet must surface.
        drive(&mut world, 32..2_000);
        let stats = world.counters();
        assert_eq!(stats.total_arrivals, 8 * 32);
        assert_eq!(stats.total_departures, stats.total_arrivals);
        assert_eq!(stats.total_queued(), 0, "fully drained");
        assert!(world.in_flight.iter().all(|&f| f == 0));
    }
}
