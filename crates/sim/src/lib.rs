//! Slotted-time simulation engine for load-balanced switches.
//!
//! This crate drives any implementation of [`sprinklers_core::switch::Switch`]
//! (the Sprinklers switch itself or any of the baselines in
//! `sprinklers-baselines`) against a configurable traffic generator, and
//! collects the metrics the paper's evaluation reports: average packet delay,
//! delay percentiles, throughput, queue occupancy and — crucially — packet
//! reordering, both per VOQ and per application flow.
//!
//! The crate is organized around four pieces:
//!
//! * [`spec::ScenarioSpec`] — a declarative, serde-able description of one
//!   run: `{ scheme, n, sizing, traffic, run, seed }`, with a JSON
//!   round-trip for scenario files.  [`spec::SuiteSpec`] lifts that to a
//!   directory of spec files crossed with optional scheme/load overrides.
//! * [`registry`] — builds any scheme by name (`registry::schemes()` lists
//!   Sprinklers, its ablation variants, and all six baselines) as a
//!   `Box<dyn Switch>`.
//! * [`engine::Engine`] — runs a spec (or an explicit switch + traffic pair)
//!   and produces a [`report::SimReport`].  Deliveries flow through the
//!   [`metrics::MetricsSink`], so the steady-state loop performs no per-slot
//!   heap allocation.
//! * [`parallel::run_specs_parallel`] — fans many specs across worker
//!   threads (one engine each) and reassembles results in submission order,
//!   so sweeps and suites are deterministic at any worker count.
//!
//! # Example
//!
//! ```
//! use sprinklers_sim::prelude::*;
//!
//! let spec = ScenarioSpec::new("sprinklers", 16)
//!     .with_traffic(TrafficSpec::Uniform { load: 0.6 })
//!     .with_run(RunConfig { slots: 5_000, warmup_slots: 500, drain_slots: 2_000 })
//!     .with_seed(42);
//! let report = Engine::new().run(&spec).unwrap();
//! assert_eq!(report.reordering.voq_reorder_events, 0);
//! assert!(report.delay.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod fabric;
pub mod metrics;
pub mod parallel;
pub mod registry;
pub mod report;
pub mod spec;
pub mod sweep;
pub mod traffic;

/// Convenient re-exports of the most commonly used simulator types.
pub mod prelude {
    pub use crate::cache::{fnv1a_128, CachedRun, ExperimentCache};
    pub use crate::engine::{Engine, RunConfig};
    pub use crate::fabric::FabricWorld;
    pub use crate::metrics::delay::DelayStats;
    pub use crate::metrics::reorder::ReorderStats;
    pub use crate::metrics::sink::MetricsSink;
    pub use crate::parallel::{default_workers, run_specs_parallel, run_specs_parallel_ok};
    pub use crate::registry;
    pub use crate::report::{merge_csv, merged_csv_header, SimReport};
    pub use crate::spec::{
        FaultEventSpec, FaultKind, FaultSpec, LinkSpec, RandomFaultSpec, RoutingSpec, ScenarioSpec,
        SizingSpec, SpecError, SuiteCase, SuiteSpec, TopologySpec, TrafficSpec,
    };
    pub use crate::sweep::{
        grid_specs, paper_load_grid, sweep_loads, sweep_loads_with, sweep_schemes,
        sweep_schemes_with, LoadSweepPoint,
    };
    pub use crate::traffic::bernoulli::BernoulliTraffic;
    pub use crate::traffic::bursty::BurstyTraffic;
    pub use crate::traffic::flows::FlowTraffic;
    pub use crate::traffic::trace::TraceTraffic;
    pub use crate::traffic::trace_io::{
        record_spec, TraceFormat, TraceMeta, TraceReader, TraceRecord, TraceWriter,
    };
    pub use crate::traffic::trace_stream::TraceStream;
    pub use crate::traffic::TrafficGenerator;
}

pub use engine::{Engine, RunConfig};
pub use parallel::{run_specs_parallel, run_specs_parallel_ok};
pub use report::SimReport;
pub use spec::{ScenarioSpec, SizingSpec, SpecError, SuiteCase, SuiteSpec, TrafficSpec};
pub use traffic::TrafficGenerator;
