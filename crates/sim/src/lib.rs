//! Slotted-time simulator for load-balanced switches.
//!
//! This crate drives any implementation of [`sprinklers_core::switch::Switch`]
//! (the Sprinklers switch itself or any of the baselines in
//! `sprinklers-baselines`) against a configurable traffic generator, and
//! collects the metrics the paper's evaluation reports: average packet delay,
//! delay percentiles, throughput, queue occupancy and — crucially — packet
//! reordering, both per VOQ and per application flow.
//!
//! # Example
//!
//! ```
//! use sprinklers_core::prelude::*;
//! use sprinklers_sim::prelude::*;
//!
//! let n = 16;
//! let gen = BernoulliTraffic::uniform(n, 0.6, 7);
//! let switch = SprinklersSwitch::new(
//!     SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(gen.rate_matrix())),
//!     42,
//! );
//! let report = Simulator::new(switch, gen)
//!     .run(RunConfig { slots: 5_000, warmup_slots: 500, drain_slots: 2_000 });
//! assert_eq!(report.reordering.voq_reorder_events, 0);
//! assert!(report.delay.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod metrics;
pub mod report;
pub mod sweep;
pub mod traffic;

/// Convenient re-exports of the most commonly used simulator types.
pub mod prelude {
    pub use crate::harness::{RunConfig, Simulator};
    pub use crate::metrics::delay::DelayStats;
    pub use crate::metrics::reorder::ReorderStats;
    pub use crate::report::SimReport;
    pub use crate::sweep::{sweep_loads, LoadSweepPoint};
    pub use crate::traffic::bernoulli::BernoulliTraffic;
    pub use crate::traffic::bursty::BurstyTraffic;
    pub use crate::traffic::flows::FlowTraffic;
    pub use crate::traffic::trace::TraceTraffic;
    pub use crate::traffic::TrafficGenerator;
}

pub use harness::{RunConfig, Simulator};
pub use report::SimReport;
pub use traffic::TrafficGenerator;
