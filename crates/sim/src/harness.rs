//! The simulation harness: drives a switch against a traffic generator.

use crate::metrics::delay::DelayStats;
use crate::metrics::occupancy::OccupancySampler;
use crate::metrics::reorder::ReorderDetector;
use crate::report::SimReport;
use crate::traffic::TrafficGenerator;
use sprinklers_core::switch::Switch;

/// Parameters of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Number of slots during which traffic is offered.
    pub slots: u64,
    /// Initial slots whose packets are excluded from the delay statistics
    /// (they still count for reordering and conservation checks).
    pub warmup_slots: u64,
    /// Additional slots simulated after arrivals stop, to let queued packets
    /// drain and be counted.
    pub drain_slots: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            slots: 100_000,
            warmup_slots: 10_000,
            drain_slots: 50_000,
        }
    }
}

impl RunConfig {
    /// A short run for quick tests.
    pub fn quick() -> Self {
        RunConfig {
            slots: 10_000,
            warmup_slots: 1_000,
            drain_slots: 10_000,
        }
    }
}

/// Drives one switch against one traffic generator and gathers metrics.
pub struct Simulator<S: Switch, G: TrafficGenerator> {
    switch: S,
    traffic: G,
    next_packet_id: u64,
    /// Per-VOQ sequence counters, indexed `input * n + output`.
    voq_seq: Vec<u64>,
    /// Per-flow sequence? Flows reuse the VOQ sequence numbers (a flow is a
    /// subsequence of its VOQ), so no extra counters are needed.
    n: usize,
}

impl<S: Switch, G: TrafficGenerator> Simulator<S, G> {
    /// Create a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the switch and the traffic generator disagree on the number
    /// of ports.
    pub fn new(switch: S, traffic: G) -> Self {
        assert_eq!(
            switch.n(),
            traffic.n(),
            "switch has {} ports but the traffic generator targets {}",
            switch.n(),
            traffic.n()
        );
        let n = switch.n();
        Simulator {
            switch,
            traffic,
            next_packet_id: 0,
            voq_seq: vec![0; n * n],
            n,
        }
    }

    /// Access the switch (e.g. to inspect configuration before running).
    pub fn switch(&self) -> &S {
        &self.switch
    }

    /// Run the simulation and produce a report.
    pub fn run(mut self, config: RunConfig) -> SimReport {
        let mut delay = DelayStats::default();
        let mut reorder = ReorderDetector::new();
        let mut occupancy = OccupancySampler::new();
        let mut offered = 0u64;
        let mut delivered = 0u64;
        let mut padding = 0u64;

        let total_slots = config.slots + config.drain_slots;
        for slot in 0..total_slots {
            if slot < config.slots {
                for mut packet in self.traffic.arrivals(slot) {
                    packet.id = self.next_packet_id;
                    self.next_packet_id += 1;
                    packet.arrival_slot = slot;
                    let key = packet.input * self.n + packet.output;
                    packet.voq_seq = self.voq_seq[key];
                    self.voq_seq[key] += 1;
                    offered += 1;
                    self.switch.arrive(packet);
                }
            }
            for d in self.switch.tick(slot) {
                if d.packet.is_padding {
                    padding += 1;
                    continue;
                }
                delivered += 1;
                reorder.observe(&d.packet);
                if d.packet.arrival_slot >= config.warmup_slots {
                    delay.record(d.delay());
                }
            }
            if slot % self.n as u64 == 0 {
                occupancy.sample(&self.switch.stats());
            }
        }

        SimReport {
            switch_name: self.switch.name().to_string(),
            traffic_label: self.traffic.label(),
            n: self.n,
            slots: config.slots,
            warmup_slots: config.warmup_slots,
            offered_packets: offered,
            delivered_packets: delivered,
            padding_packets: padding,
            residual_packets: offered - delivered,
            delay,
            reordering: reorder.stats(),
            occupancy: occupancy.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::bernoulli::BernoulliTraffic;
    use crate::traffic::trace::TraceTraffic;
    use sprinklers_core::config::{SizingMode, SprinklersConfig};
    use sprinklers_core::sprinklers::SprinklersSwitch;

    #[test]
    fn trace_run_delivers_every_packet_in_order() {
        let n = 8;
        let traffic = TraceTraffic::burst(n, 1, 5, 0, 64);
        let switch = SprinklersSwitch::new(
            SprinklersConfig::new(n).with_sizing(SizingMode::FixedSize(4)),
            3,
        );
        let report = Simulator::new(switch, traffic).run(RunConfig {
            slots: 64,
            warmup_slots: 0,
            drain_slots: 1024,
        });
        assert_eq!(report.offered_packets, 64);
        assert_eq!(report.delivered_packets, 64);
        assert_eq!(report.residual_packets, 0);
        assert!(report.reordering.is_ordered());
        assert!(report.delay.mean() >= 1.0);
    }

    #[test]
    fn bernoulli_run_is_conserving_and_ordered() {
        let n = 8;
        let gen = BernoulliTraffic::uniform(n, 0.5, 21);
        let switch = SprinklersSwitch::new(
            SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(gen.rate_matrix())),
            4,
        );
        let report = Simulator::new(switch, gen).run(RunConfig {
            slots: 20_000,
            warmup_slots: 2_000,
            drain_slots: 20_000,
        });
        assert!(report.reordering.is_ordered(), "Sprinklers must never reorder");
        assert!(report.delivery_ratio() > 0.95, "most packets should drain");
        assert!(report.delay.count() > 0);
        assert!(report.occupancy.samples > 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_sizes_are_rejected() {
        let gen = BernoulliTraffic::uniform(8, 0.5, 0);
        let switch = SprinklersSwitch::new(
            SprinklersConfig::new(16).with_sizing(SizingMode::FixedSize(1)),
            0,
        );
        let _ = Simulator::new(switch, gen);
    }

    #[test]
    fn warmup_excludes_early_packets_from_delay_only() {
        let n = 4;
        let traffic = TraceTraffic::burst(n, 0, 1, 0, 10);
        let switch = SprinklersSwitch::new(
            SprinklersConfig::new(n).with_sizing(SizingMode::FixedSize(1)),
            1,
        );
        let report = Simulator::new(switch, traffic).run(RunConfig {
            slots: 10,
            warmup_slots: 1_000, // everything arrives before warm-up ends
            drain_slots: 200,
        });
        assert_eq!(report.delivered_packets, 10);
        assert_eq!(report.delay.count(), 0, "warm-up packets are not measured for delay");
    }
}
