//! Parameter sweeps (load–delay curves).
//!
//! The paper's Figures 6 and 7 plot average delay against offered load for
//! the compared switching schemes.  [`sweep_loads`] runs one simulation per
//! load value from a single base [`ScenarioSpec`], so the same helper serves
//! every scheme and traffic pattern; [`sweep_schemes`] crosses a set of
//! scheme names with a set of loads, which is exactly the shape of the
//! paper's figures.
//!
//! Both sweeps delegate to [`crate::parallel::run_specs_parallel`]: the grid
//! is expanded into plain [`ScenarioSpec`]s up front, executed across worker
//! threads, and reassembled in grid order — so results are identical whether
//! the sweep ran on one core or all of them.  The `*_with` variants take an
//! explicit worker count (`0` = one per core); the original names keep their
//! signatures and use every core.

use crate::parallel::run_specs_parallel;
use crate::report::SimReport;
use crate::spec::{ScenarioSpec, SpecError};
use serde::{Deserialize, Serialize};

/// One point of a load sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadSweepPoint {
    /// Scheme name the point belongs to.
    pub scheme: String,
    /// Offered load ρ.
    pub load: f64,
    /// The full simulation report at that load.
    pub report: SimReport,
}

impl LoadSweepPoint {
    /// Average delay at this point (slots).
    pub fn mean_delay(&self) -> f64 {
        self.report.delay.mean()
    }
}

/// Expand a scheme × load grid into one [`ScenarioSpec`] per point, in
/// row-major (scheme-outer) order.  All points share the base spec's size,
/// sizing policy, run length and seed.
pub fn grid_specs(base: &ScenarioSpec, schemes: &[&str], loads: &[f64]) -> Vec<ScenarioSpec> {
    let mut specs = Vec::with_capacity(schemes.len() * loads.len());
    for &scheme in schemes {
        for &load in loads {
            let mut spec = base
                .clone()
                .with_traffic(base.traffic.clone().with_load(load));
            spec.scheme = scheme.to_string();
            specs.push(spec);
        }
    }
    specs
}

/// Run a pre-expanded list of sweep specs across `workers` threads and wrap
/// the reports as [`LoadSweepPoint`]s.  A failing point's error names the
/// scheme and load that produced it; the earliest failing point (in grid
/// order) wins, so errors are deterministic too.
fn run_grid(specs: Vec<ScenarioSpec>, workers: usize) -> Result<Vec<LoadSweepPoint>, SpecError> {
    let results = run_specs_parallel(&specs, workers);
    specs
        .into_iter()
        .zip(results)
        .map(|(spec, result)| {
            let load = spec.traffic.load();
            let report = result
                .map_err(|e| e.context(format!("scheme '{}' at load {:.2}", spec.scheme, load)))?;
            Ok(LoadSweepPoint {
                scheme: spec.scheme,
                load,
                report,
            })
        })
        .collect()
}

/// Run one simulation per load value, varying the base spec's traffic load.
/// Uses one worker thread per core; see [`sweep_loads_with`] to control it.
pub fn sweep_loads(base: &ScenarioSpec, loads: &[f64]) -> Result<Vec<LoadSweepPoint>, SpecError> {
    sweep_loads_with(base, loads, 0)
}

/// [`sweep_loads`] with an explicit worker count (`0` = one per core).
pub fn sweep_loads_with(
    base: &ScenarioSpec,
    loads: &[f64],
    workers: usize,
) -> Result<Vec<LoadSweepPoint>, SpecError> {
    run_grid(grid_specs(base, &[base.scheme.as_str()], loads), workers)
}

/// Cross a set of schemes with a set of loads (the shape of Figures 6/7).
/// All runs share the base spec's size, sizing policy, run length and seed.
/// Uses one worker thread per core; see [`sweep_schemes_with`] to control it.
pub fn sweep_schemes(
    base: &ScenarioSpec,
    schemes: &[&str],
    loads: &[f64],
) -> Result<Vec<LoadSweepPoint>, SpecError> {
    sweep_schemes_with(base, schemes, loads, 0)
}

/// [`sweep_schemes`] with an explicit worker count (`0` = one per core).
pub fn sweep_schemes_with(
    base: &ScenarioSpec,
    schemes: &[&str],
    loads: &[f64],
    workers: usize,
) -> Result<Vec<LoadSweepPoint>, SpecError> {
    run_grid(grid_specs(base, schemes, loads), workers)
}

/// The load grid used by the paper's Figures 6 and 7 (0.1 … 0.95).
pub fn paper_load_grid() -> Vec<f64> {
    vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RunConfig;
    use crate::spec::TrafficSpec;

    #[test]
    fn sweep_produces_one_point_per_load() {
        let base = ScenarioSpec::new("sprinklers", 8)
            .with_run(RunConfig::quick())
            .with_seed(17);
        let points = sweep_loads(&base, &[0.2, 0.5]).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].load, 0.2);
        assert!(points.iter().all(|p| p.scheme == "sprinklers"));
        assert!(points.iter().all(|p| p.report.reordering.is_ordered()));
        assert!(points.iter().all(|p| p.mean_delay() > 0.0));
    }

    #[test]
    fn sweep_schemes_crosses_schemes_and_loads() {
        let base = ScenarioSpec::new("sprinklers", 8)
            .with_traffic(TrafficSpec::Uniform { load: 0.1 })
            .with_run(RunConfig {
                slots: 2_000,
                warmup_slots: 200,
                drain_slots: 4_000,
            });
        let points = sweep_schemes(&base, &["oq", "baseline-lb"], &[0.2, 0.4, 0.6]).unwrap();
        assert_eq!(points.len(), 6);
        assert_eq!(points.iter().filter(|p| p.scheme == "oq").count(), 3);
        // Grid order: scheme-outer, load-inner.
        assert_eq!(points[0].scheme, "oq");
        assert_eq!(points[0].load, 0.2);
        assert_eq!(points[5].scheme, "baseline-lb");
        assert_eq!(points[5].load, 0.6);
    }

    #[test]
    fn sweep_propagates_unknown_scheme_errors() {
        let base = ScenarioSpec::new("bogus", 8).with_run(RunConfig::quick());
        assert!(sweep_loads(&base, &[0.5]).is_err());
    }

    #[test]
    fn sweep_schemes_errors_name_the_failing_scheme_and_load() {
        let base = ScenarioSpec::new("sprinklers", 8).with_run(RunConfig::quick());
        let err = sweep_schemes(&base, &["oq", "not-a-scheme", "foff"], &[0.2, 0.4])
            .unwrap_err()
            .to_string();
        assert!(err.contains("scheme 'not-a-scheme' at load 0.20"), "{err}");
    }

    #[test]
    fn worker_count_does_not_change_sweep_results() {
        let base = ScenarioSpec::new("sprinklers", 8)
            .with_run(RunConfig {
                slots: 2_000,
                warmup_slots: 200,
                drain_slots: 4_000,
            })
            .with_seed(3);
        let schemes = ["oq", "sprinklers"];
        let loads = [0.3, 0.7];
        let serial = sweep_schemes_with(&base, &schemes, &loads, 1).unwrap();
        let parallel = sweep_schemes_with(&base, &schemes, &loads, 4).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.load, b.load);
            assert_eq!(a.report.csv_row(), b.report.csv_row());
        }
    }

    #[test]
    fn grid_specs_expand_in_row_major_order() {
        let base = ScenarioSpec::new("x", 8);
        let specs = grid_specs(&base, &["a", "b"], &[0.1, 0.2]);
        let labels: Vec<(String, f64)> = specs
            .iter()
            .map(|s| (s.scheme.clone(), s.traffic.load()))
            .collect();
        assert_eq!(
            labels,
            [
                ("a".into(), 0.1),
                ("a".into(), 0.2),
                ("b".into(), 0.1),
                ("b".into(), 0.2),
            ]
        );
    }

    #[test]
    fn paper_load_grid_is_increasing_and_admissible() {
        let grid = paper_load_grid();
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert!(grid.iter().all(|&l| l > 0.0 && l < 1.0));
    }
}
