//! Parameter sweeps (load–delay curves).
//!
//! The paper's Figures 6 and 7 plot average delay against offered load for
//! five switching schemes.  `sweep_loads` runs one simulation per load value
//! using a caller-supplied factory, so the same helper serves every scheme and
//! traffic pattern.

use crate::harness::{RunConfig, Simulator};
use crate::report::SimReport;
use crate::traffic::TrafficGenerator;
use serde::{Deserialize, Serialize};
use sprinklers_core::switch::Switch;

/// One point of a load sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadSweepPoint {
    /// Offered load ρ.
    pub load: f64,
    /// The full simulation report at that load.
    pub report: SimReport,
}

impl LoadSweepPoint {
    /// Average delay at this point (slots).
    pub fn mean_delay(&self) -> f64 {
        self.report.delay.mean()
    }
}

/// Run one simulation per load value.  The factory receives the load and
/// returns the switch and traffic generator to use at that load.
pub fn sweep_loads<S, G, F>(loads: &[f64], run: RunConfig, mut factory: F) -> Vec<LoadSweepPoint>
where
    S: Switch,
    G: TrafficGenerator,
    F: FnMut(f64) -> (S, G),
{
    loads
        .iter()
        .map(|&load| {
            let (switch, traffic) = factory(load);
            let report = Simulator::new(switch, traffic).run(run);
            LoadSweepPoint { load, report }
        })
        .collect()
}

/// The load grid used by the paper's Figures 6 and 7 (0.1 … 0.95).
pub fn paper_load_grid() -> Vec<f64> {
    vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::bernoulli::BernoulliTraffic;
    use sprinklers_core::config::{SizingMode, SprinklersConfig};
    use sprinklers_core::sprinklers::SprinklersSwitch;

    #[test]
    fn sweep_produces_one_point_per_load() {
        let n = 8;
        let loads = [0.2, 0.5];
        let points = sweep_loads(&loads, RunConfig::quick(), |load| {
            let gen = BernoulliTraffic::uniform(n, load, 17);
            let switch = SprinklersSwitch::new(
                SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(gen.rate_matrix())),
                3,
            );
            (switch, gen)
        });
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].load, 0.2);
        assert!(points.iter().all(|p| p.report.reordering.is_ordered()));
        assert!(points.iter().all(|p| p.mean_delay() > 0.0));
    }

    #[test]
    fn paper_load_grid_is_increasing_and_admissible() {
        let grid = paper_load_grid();
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert!(grid.iter().all(|&l| l > 0.0 && l < 1.0));
    }
}
