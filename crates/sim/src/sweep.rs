//! Parameter sweeps (load–delay curves).
//!
//! The paper's Figures 6 and 7 plot average delay against offered load for
//! the compared switching schemes.  [`sweep_loads`] runs one simulation per
//! load value from a single base [`ScenarioSpec`], so the same helper serves
//! every scheme and traffic pattern; [`sweep_schemes`] crosses a set of
//! scheme names with a set of loads, which is exactly the shape of the
//! paper's figures.

use crate::engine::Engine;
use crate::report::SimReport;
use crate::spec::{ScenarioSpec, SpecError};
use serde::{Deserialize, Serialize};

/// One point of a load sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadSweepPoint {
    /// Scheme name the point belongs to.
    pub scheme: String,
    /// Offered load ρ.
    pub load: f64,
    /// The full simulation report at that load.
    pub report: SimReport,
}

impl LoadSweepPoint {
    /// Average delay at this point (slots).
    pub fn mean_delay(&self) -> f64 {
        self.report.delay.mean()
    }
}

/// Run one simulation per load value, varying the base spec's traffic load.
pub fn sweep_loads(base: &ScenarioSpec, loads: &[f64]) -> Result<Vec<LoadSweepPoint>, SpecError> {
    let mut engine = Engine::new();
    loads
        .iter()
        .map(|&load| {
            let spec = base.clone().with_traffic(base.traffic.with_load(load));
            let report = engine.run(&spec)?;
            Ok(LoadSweepPoint {
                scheme: spec.scheme,
                load,
                report,
            })
        })
        .collect()
}

/// Cross a set of schemes with a set of loads (the shape of Figures 6/7).
/// All runs share the base spec's size, sizing policy, run length and seed.
pub fn sweep_schemes(
    base: &ScenarioSpec,
    schemes: &[&str],
    loads: &[f64],
) -> Result<Vec<LoadSweepPoint>, SpecError> {
    let mut out = Vec::with_capacity(schemes.len() * loads.len());
    for &scheme in schemes {
        let mut spec = base.clone();
        spec.scheme = scheme.to_string();
        out.extend(sweep_loads(&spec, loads)?);
    }
    Ok(out)
}

/// The load grid used by the paper's Figures 6 and 7 (0.1 … 0.95).
pub fn paper_load_grid() -> Vec<f64> {
    vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RunConfig;
    use crate::spec::TrafficSpec;

    #[test]
    fn sweep_produces_one_point_per_load() {
        let base = ScenarioSpec::new("sprinklers", 8)
            .with_run(RunConfig::quick())
            .with_seed(17);
        let points = sweep_loads(&base, &[0.2, 0.5]).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].load, 0.2);
        assert!(points.iter().all(|p| p.scheme == "sprinklers"));
        assert!(points.iter().all(|p| p.report.reordering.is_ordered()));
        assert!(points.iter().all(|p| p.mean_delay() > 0.0));
    }

    #[test]
    fn sweep_schemes_crosses_schemes_and_loads() {
        let base = ScenarioSpec::new("sprinklers", 8)
            .with_traffic(TrafficSpec::Uniform { load: 0.1 })
            .with_run(RunConfig {
                slots: 2_000,
                warmup_slots: 200,
                drain_slots: 4_000,
            });
        let points = sweep_schemes(&base, &["oq", "baseline-lb"], &[0.2, 0.4, 0.6]).unwrap();
        assert_eq!(points.len(), 6);
        assert_eq!(points.iter().filter(|p| p.scheme == "oq").count(), 3);
    }

    #[test]
    fn sweep_propagates_unknown_scheme_errors() {
        let base = ScenarioSpec::new("bogus", 8).with_run(RunConfig::quick());
        assert!(sweep_loads(&base, &[0.5]).is_err());
    }

    #[test]
    fn paper_load_grid_is_increasing_and_admissible() {
        let grid = paper_load_grid();
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert!(grid.iter().all(|&l| l > 0.0 && l < 1.0));
    }
}
