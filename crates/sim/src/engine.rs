//! The simulation engine: drives any steppable world against any traffic
//! source and gathers metrics through the sink path.
//!
//! [`Engine::run`] resolves a [`ScenarioSpec`] through the
//! [`crate::registry`] and is the one entry point sweeps, bench binaries,
//! examples and integration tests share.  [`Engine::run_parts`] is the
//! lower-level form for callers that already hold a switch and a traffic
//! generator (trace-driven tests, hand-built variants).
//!
//! The engine is generic over [`Steppable`] — the minimal drive surface
//! (inject packets, advance slots, read counters).  A single switch is the
//! trivial instance through the blanket `impl<S: Switch> Steppable for S`;
//! a [`crate::fabric::FabricWorld`] is the multi-switch instance, selected
//! when the scenario carries a `topology`.  Both run through the *same*
//! batched loop below, so every determinism guarantee (byte-identical
//! reports at any batch/thread/worker setting) holds for fabrics by
//! construction.
//!
//! The engine owns one reusable arrival buffer and feeds deliveries into a
//! [`MetricsSink`], so the steady-state loop — generate arrivals, assign
//! identities, `step` the switch, update metrics — performs no per-slot heap
//! allocation.
//!
//! # Batched stepping
//!
//! The engine drives the switch through [`Switch::step_batch`] in batches of
//! up to [`DEFAULT_BATCH`] slots (configurable per scenario via
//! `ScenarioSpec::batch`), so long arrival-free stretches — the entire drain
//! phase, empty slots at light load — cross the `dyn Switch` boundary once
//! per batch instead of once per slot.  Batching never changes results: a
//! batch is broken at every slot that has arrivals (packets must be injected
//! before their slot is stepped) and at every occupancy sampling boundary
//! (samples are taken between the same two steps as in slot-at-a-time mode),
//! and `step_batch` itself is contractually identical to the sequential
//! `step` loop.  The `batch_equivalence_prop` and `golden_metrics` suites in
//! `tests/` plus the `batch-parity` CI job pin the byte-identical guarantee.
//!
//! Because occupancy is sampled every N slots, the sampling boundaries cap
//! the *effective* batch at N regardless of the configured value: at n = 8 a
//! `batch` of 64 steps in windows of 8.  (Observing `stats()` only at the
//! end of a longer window would read different occupancy values than the
//! slot-at-a-time loop and break byte-parity.)  Batch values above N are
//! accepted and harmless — they simply saturate at the sampling period.

use crate::fabric::FabricWorld;
use crate::metrics::occupancy::OccupancySampler;
use crate::metrics::sink::MetricsSink;
use crate::metrics::window::WindowSeries;
use crate::registry;
use crate::report::SimReport;
use crate::spec::{ScenarioSpec, SpecError};
use crate::traffic::TrafficGenerator;
use serde::{Deserialize, Serialize};
use sprinklers_core::packet::{Packet, MAX_PORTS};
use sprinklers_core::switch::{Steppable, Switch};

/// Default number of slots stepped per [`Switch::step_batch`] call when no
/// explicit batch size is configured.  Large enough to amortize the per-call
/// dispatch, small enough that delivery consumers see packets promptly.
pub const DEFAULT_BATCH: u32 = 64;

/// Parameters of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Number of slots during which traffic is offered.
    pub slots: u64,
    /// Initial slots whose packets are excluded from the delay statistics
    /// (they still count for reordering and conservation checks).
    pub warmup_slots: u64,
    /// Additional slots simulated after arrivals stop, to let queued packets
    /// drain and be counted.
    pub drain_slots: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            slots: 100_000,
            warmup_slots: 10_000,
            drain_slots: 50_000,
        }
    }
}

impl RunConfig {
    /// A short run for quick tests.
    pub fn quick() -> Self {
        RunConfig {
            slots: 10_000,
            warmup_slots: 1_000,
            drain_slots: 10_000,
        }
    }
}

/// Runs scenarios.  Reusable: one engine can run any number of scenarios,
/// reusing its internal arrival buffer across runs.
#[derive(Debug, Default)]
pub struct Engine {
    /// Reused across slots and runs so arrival generation never allocates in
    /// steady state.
    arrival_buf: Vec<Packet>,
}

impl Engine {
    /// Create an engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Run one scenario end to end: build the world — a single registry
    /// switch, or a [`FabricWorld`] when the spec carries a topology — and
    /// the traffic generator from the spec, simulate, and report.
    pub fn run(&mut self, spec: &ScenarioSpec) -> Result<SimReport, SpecError> {
        // Validate the port count before anything touches it: degenerate
        // sizes must surface as typed spec errors, not generator panics.
        if spec.n < 2 {
            return Err(SpecError::new(format!(
                "port count n must be at least 2 (got {})",
                spec.n
            )));
        }
        if spec.n > MAX_PORTS {
            return Err(SpecError::new(format!(
                "port count n must be at most {MAX_PORTS} (got {})",
                spec.n
            )));
        }
        if spec.faults.is_some() && spec.topology.is_none() {
            return Err(SpecError::new(
                "fault injection requires a fabric topology (single switches \
                 have no links or nodes to fail)"
                    .to_string(),
            ));
        }
        if let Some(topo) = &spec.topology {
            topo.validate(spec.n)?;
            if let Some(faults) = &spec.faults {
                faults.validate(topo, &spec.run)?;
            }
            let mut traffic = spec.build_traffic()?;
            let mut world = FabricWorld::build(
                topo,
                &spec.scheme,
                &spec.sizing,
                spec.seed,
                spec.traffic.load(),
            )?;
            // Pure perf knob, applied after construction: any value yields
            // a byte-identical report (see `ScenarioSpec::threads`).
            world.set_parallelism(spec.threads as usize);
            if let Some(faults) = spec.faults.as_ref().filter(|f| !f.is_empty()) {
                world = world.with_faults(faults, &spec.run);
            }
            let mut report = self.run_loop(&mut world, &mut traffic, spec.run, spec.batch);
            report.faults = world.fault_summary();
            return Ok(report);
        }
        // Build the traffic first and size the switch from the *generator's*
        // rate matrix.  For synthetic patterns this is the identical matrix
        // `TrafficSpec::try_matrix` constructs (every generator clones the
        // analytic matrix it was built from); for traces it avoids opening
        // and validating the file twice per run.
        let traffic = spec.build_traffic()?;
        let matrix = traffic.rate_matrix();
        let mut switch =
            registry::build_named(&spec.scheme, spec.n, &spec.sizing, &matrix, spec.seed)?;
        // Pure perf knob (see above).
        switch.set_threads(spec.threads as usize);
        Ok(self.run_parts_batched(switch, traffic, spec.run, spec.batch))
    }

    /// Drive an explicit world (any [`Steppable`]: a bare switch, a boxed
    /// one, or a fabric) against an explicit traffic generator with the
    /// default batch size ([`DEFAULT_BATCH`]).
    ///
    /// # Panics
    ///
    /// Panics if the world and the traffic generator disagree on the number
    /// of ports.
    pub fn run_parts<W: Steppable, G: TrafficGenerator>(
        &mut self,
        world: W,
        traffic: G,
        config: RunConfig,
    ) -> SimReport {
        self.run_parts_batched(world, traffic, config, DEFAULT_BATCH)
    }

    /// [`Engine::run_parts`] with an explicit batch size.  `batch == 1`
    /// reproduces the historical slot-at-a-time loop; any other value yields
    /// the same report byte for byte (see the module docs).
    pub fn run_parts_batched<W: Steppable, G: TrafficGenerator>(
        &mut self,
        mut world: W,
        mut traffic: G,
        config: RunConfig,
        batch: u32,
    ) -> SimReport {
        self.run_loop(&mut world, &mut traffic, config, batch)
    }

    /// The batched driving loop shared by every entry point.  Borrows the
    /// world so callers (the faulted-fabric path) can read world state —
    /// the fault summary — after the run.
    fn run_loop<W: Steppable, G: TrafficGenerator>(
        &mut self,
        world: &mut W,
        traffic: &mut G,
        config: RunConfig,
        batch: u32,
    ) -> SimReport {
        assert_eq!(
            world.ports(),
            traffic.n(),
            "world has {} ports but the traffic generator targets {}",
            world.ports(),
            traffic.n()
        );
        let n = world.ports();
        let n_u64 = n as u64;
        let batch = u64::from(batch.max(1));
        let mut next_packet_id = 0u64;
        let mut voq_seq = vec![0u64; n * n];
        let mut sink = MetricsSink::new(config.warmup_slots, n);
        let mut occupancy = OccupancySampler::new();
        let mut windows = WindowSeries::new(n_u64);
        let mut offered = 0u64;

        let total_slots = config.slots + config.drain_slots;
        let mut slot = 0u64;
        while slot < total_slots {
            // One window of up to `batch` slots.  Occupancy is sampled after
            // stepping every slot that is a multiple of N, exactly as the
            // slot-at-a-time loop did, so a window may end *on* a sampling
            // slot but never cross one.
            let until_sample = (n_u64 - slot % n_u64) % n_u64 + 1;
            let window = batch.min(until_sample).min(total_slots - slot);

            // Step the window in maximal arrival-free runs: a packet must be
            // injected before the call that steps its arrival slot, so every
            // arrival-bearing slot flushes the run accumulated so far and
            // starts the next one.
            let mut run_start = slot;
            let mut run_len = 0u32;
            for s in slot..slot + window {
                if s < config.slots {
                    self.arrival_buf.clear();
                    traffic.arrivals_into(s, &mut self.arrival_buf);
                    if !self.arrival_buf.is_empty() {
                        if run_len > 0 {
                            world.advance(run_start, run_len, &mut sink);
                        }
                        run_start = s;
                        run_len = 0;
                        for mut packet in self.arrival_buf.drain(..) {
                            packet.id = next_packet_id;
                            next_packet_id += 1;
                            packet.arrival_slot = s;
                            let key = packet.input() * n + packet.output();
                            packet.voq_seq = voq_seq[key];
                            voq_seq[key] += 1;
                            offered += 1;
                            world.inject(packet);
                        }
                    }
                }
                run_len += 1;
            }
            if run_len > 0 {
                world.advance(run_start, run_len, &mut sink);
            }

            slot += window;
            if (slot - 1).is_multiple_of(n_u64) {
                // One counters() snapshot feeds both the whole-run occupancy
                // aggregate and the windowed series, so they always agree.
                let stats = world.counters();
                occupancy.sample(&stats);
                windows.record(
                    slot,
                    offered,
                    sink.delivered_packets(),
                    sink.padding_packets(),
                    &stats,
                );
            }
        }
        // A run whose length is not a multiple of the sampling period ends
        // between boundaries; capture the active remainder so window sums
        // equal the run totals.
        let final_stats = world.counters();
        windows.finish(
            total_slots,
            offered,
            sink.delivered_packets(),
            sink.padding_packets(),
            &final_stats,
        );
        let dropped = final_stats.total_dropped;

        let totals = sink.into_parts();
        SimReport {
            switch_name: world.label(),
            traffic_label: traffic.label(),
            n,
            slots: config.slots,
            warmup_slots: config.warmup_slots,
            offered_packets: offered,
            delivered_packets: totals.delivered,
            padding_packets: totals.padding,
            residual_packets: offered - totals.delivered - dropped,
            dropped_packets: dropped,
            delay: totals.delay,
            reordering: totals.reordering,
            occupancy: occupancy.stats(),
            per_output_delivered: totals.per_output_delivered,
            windows,
            faults: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SizingSpec, TrafficSpec};
    use crate::traffic::bernoulli::BernoulliTraffic;
    use crate::traffic::trace::TraceTraffic;
    use sprinklers_core::config::{SizingMode, SprinklersConfig};
    use sprinklers_core::sprinklers::SprinklersSwitch;

    #[test]
    fn trace_run_delivers_every_packet_in_order() {
        let n = 8;
        let traffic = TraceTraffic::burst(n, 1, 5, 0, 64);
        let switch = SprinklersSwitch::new(
            SprinklersConfig::new(n).with_sizing(SizingMode::FixedSize(4)),
            3,
        );
        let report = Engine::new().run_parts(
            switch,
            traffic,
            RunConfig {
                slots: 64,
                warmup_slots: 0,
                drain_slots: 1024,
            },
        );
        assert_eq!(report.offered_packets, 64);
        assert_eq!(report.delivered_packets, 64);
        assert_eq!(report.residual_packets, 0);
        assert!(report.reordering.is_ordered());
        assert!(report.delay.mean() >= 1.0);
    }

    #[test]
    fn bernoulli_run_is_conserving_and_ordered() {
        let n = 8;
        let gen = BernoulliTraffic::uniform(n, 0.5, 21);
        let switch = SprinklersSwitch::new(
            SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(gen.rate_matrix())),
            4,
        );
        let report = Engine::new().run_parts(
            switch,
            gen,
            RunConfig {
                slots: 20_000,
                warmup_slots: 2_000,
                drain_slots: 20_000,
            },
        );
        assert!(
            report.reordering.is_ordered(),
            "Sprinklers must never reorder"
        );
        assert!(report.delivery_ratio() > 0.95, "most packets should drain");
        assert!(report.delay.count() > 0);
        assert!(report.occupancy.samples > 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_sizes_are_rejected() {
        let gen = BernoulliTraffic::uniform(8, 0.5, 0);
        let switch = SprinklersSwitch::new(
            SprinklersConfig::new(16).with_sizing(SizingMode::FixedSize(1)),
            0,
        );
        let _ = Engine::new().run_parts(switch, gen, RunConfig::quick());
    }

    #[test]
    fn warmup_excludes_early_packets_from_delay_only() {
        let n = 4;
        let traffic = TraceTraffic::burst(n, 0, 1, 0, 10);
        let switch = SprinklersSwitch::new(
            SprinklersConfig::new(n).with_sizing(SizingMode::FixedSize(1)),
            1,
        );
        let report = Engine::new().run_parts(
            switch,
            traffic,
            RunConfig {
                slots: 10,
                warmup_slots: 1_000, // everything arrives before warm-up ends
                drain_slots: 200,
            },
        );
        assert_eq!(report.delivered_packets, 10);
        assert_eq!(
            report.delay.count(),
            0,
            "warm-up packets are not measured for delay"
        );
    }

    #[test]
    fn engine_runs_a_spec_end_to_end() {
        let spec = ScenarioSpec::new("sprinklers", 8)
            .with_traffic(TrafficSpec::Uniform { load: 0.5 })
            .with_run(RunConfig::quick())
            .with_seed(7);
        let report = Engine::new().run(&spec).unwrap();
        assert_eq!(report.switch_name, "sprinklers");
        assert_eq!(report.n, 8);
        assert!(report.offered_packets > 0);
        assert!(report.reordering.is_ordered());
        assert!(report.delivery_ratio() > 0.9);
    }

    #[test]
    fn one_engine_runs_many_scenarios() {
        let mut engine = Engine::new();
        for scheme in ["oq", "baseline-lb", "sprinklers"] {
            let spec = ScenarioSpec::new(scheme, 8)
                .with_traffic(TrafficSpec::Uniform { load: 0.4 })
                .with_run(RunConfig {
                    slots: 2_000,
                    warmup_slots: 200,
                    drain_slots: 4_000,
                });
            let report = engine.run(&spec).unwrap();
            assert!(report.delivery_ratio() > 0.9, "{scheme} stalled");
        }
    }

    #[test]
    fn batch_size_never_changes_the_report() {
        // The whole point of batched stepping: a pure perf knob.  Compare the
        // full CSV row (delay, reordering, occupancy, conservation) across
        // batch sizes, including ones that straddle the sampling period.
        for scheme in ["sprinklers", "oq", "foff", "baseline-lb", "tcp-hash"] {
            let spec = |batch: u32| {
                ScenarioSpec::new(scheme, 8)
                    .with_traffic(TrafficSpec::Uniform { load: 0.7 })
                    .with_run(RunConfig {
                        slots: 3_000,
                        warmup_slots: 300,
                        drain_slots: 6_000,
                    })
                    .with_seed(42)
                    .with_batch(batch)
            };
            let mut engine = Engine::new();
            let baseline = engine.run(&spec(1)).unwrap().csv_row();
            for batch in [2, 3, 7, 8, 64, 1000] {
                let report = engine.run(&spec(batch)).unwrap();
                assert_eq!(
                    report.csv_row(),
                    baseline,
                    "{scheme} diverged at batch={batch}"
                );
            }
        }
    }

    #[test]
    fn engine_rejects_unknown_schemes() {
        let spec = ScenarioSpec::new("nope", 8);
        assert!(Engine::new().run(&spec).is_err());
    }

    #[test]
    fn adaptive_sizing_spec_runs() {
        let spec = ScenarioSpec::new("sprinklers", 8)
            .with_sizing(SizingSpec::Adaptive)
            .with_run(RunConfig {
                slots: 5_000,
                warmup_slots: 500,
                drain_slots: 10_000,
            });
        let report = Engine::new().run(&spec).unwrap();
        assert!(report.reordering.is_ordered());
    }
}
