//! The simulation engine: drives any switch against any traffic source and
//! gathers metrics through the sink path.
//!
//! [`Engine::run`] resolves a [`ScenarioSpec`] through the
//! [`crate::registry`] and is the one entry point sweeps, bench binaries,
//! examples and integration tests share.  [`Engine::run_parts`] is the
//! lower-level form for callers that already hold a switch and a traffic
//! generator (trace-driven tests, hand-built variants).
//!
//! The engine owns one reusable arrival buffer and feeds deliveries into a
//! [`MetricsSink`], so the steady-state loop — generate arrivals, assign
//! identities, `step` the switch, update metrics — performs no per-slot heap
//! allocation.

use crate::metrics::occupancy::OccupancySampler;
use crate::metrics::sink::MetricsSink;
use crate::registry;
use crate::report::SimReport;
use crate::spec::{ScenarioSpec, SpecError};
use crate::traffic::TrafficGenerator;
use serde::{Deserialize, Serialize};
use sprinklers_core::packet::Packet;
use sprinklers_core::switch::Switch;

/// Parameters of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Number of slots during which traffic is offered.
    pub slots: u64,
    /// Initial slots whose packets are excluded from the delay statistics
    /// (they still count for reordering and conservation checks).
    pub warmup_slots: u64,
    /// Additional slots simulated after arrivals stop, to let queued packets
    /// drain and be counted.
    pub drain_slots: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            slots: 100_000,
            warmup_slots: 10_000,
            drain_slots: 50_000,
        }
    }
}

impl RunConfig {
    /// A short run for quick tests.
    pub fn quick() -> Self {
        RunConfig {
            slots: 10_000,
            warmup_slots: 1_000,
            drain_slots: 10_000,
        }
    }
}

/// Runs scenarios.  Reusable: one engine can run any number of scenarios,
/// reusing its internal arrival buffer across runs.
#[derive(Debug, Default)]
pub struct Engine {
    /// Reused across slots and runs so arrival generation never allocates in
    /// steady state.
    arrival_buf: Vec<Packet>,
}

impl Engine {
    /// Create an engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Run one scenario end to end: build the switch from the registry and
    /// the traffic generator from the spec, simulate, and report.
    pub fn run(&mut self, spec: &ScenarioSpec) -> Result<SimReport, SpecError> {
        let switch = registry::build(spec)?;
        let traffic = spec.traffic.build(spec.n, spec.seed.wrapping_add(1));
        Ok(self.run_parts(switch, traffic, spec.run))
    }

    /// Drive an explicit switch against an explicit traffic generator.
    ///
    /// # Panics
    ///
    /// Panics if the switch and the traffic generator disagree on the number
    /// of ports.
    pub fn run_parts<S: Switch, G: TrafficGenerator>(
        &mut self,
        mut switch: S,
        mut traffic: G,
        config: RunConfig,
    ) -> SimReport {
        assert_eq!(
            switch.n(),
            traffic.n(),
            "switch has {} ports but the traffic generator targets {}",
            switch.n(),
            traffic.n()
        );
        let n = switch.n();
        let mut next_packet_id = 0u64;
        let mut voq_seq = vec![0u64; n * n];
        let mut sink = MetricsSink::new(config.warmup_slots);
        let mut occupancy = OccupancySampler::new();
        let mut offered = 0u64;

        let total_slots = config.slots + config.drain_slots;
        for slot in 0..total_slots {
            if slot < config.slots {
                self.arrival_buf.clear();
                traffic.arrivals_into(slot, &mut self.arrival_buf);
                for mut packet in self.arrival_buf.drain(..) {
                    packet.id = next_packet_id;
                    next_packet_id += 1;
                    packet.arrival_slot = slot;
                    let key = packet.input * n + packet.output;
                    packet.voq_seq = voq_seq[key];
                    voq_seq[key] += 1;
                    offered += 1;
                    switch.arrive(packet);
                }
            }
            switch.step(slot, &mut sink);
            if slot % n as u64 == 0 {
                occupancy.sample(&switch.stats());
            }
        }

        let (delay, reordering, delivered, padding) = sink.into_parts();
        SimReport {
            switch_name: switch.name().to_string(),
            traffic_label: traffic.label(),
            n,
            slots: config.slots,
            warmup_slots: config.warmup_slots,
            offered_packets: offered,
            delivered_packets: delivered,
            padding_packets: padding,
            residual_packets: offered - delivered,
            delay,
            reordering,
            occupancy: occupancy.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SizingSpec, TrafficSpec};
    use crate::traffic::bernoulli::BernoulliTraffic;
    use crate::traffic::trace::TraceTraffic;
    use sprinklers_core::config::{SizingMode, SprinklersConfig};
    use sprinklers_core::sprinklers::SprinklersSwitch;

    #[test]
    fn trace_run_delivers_every_packet_in_order() {
        let n = 8;
        let traffic = TraceTraffic::burst(n, 1, 5, 0, 64);
        let switch = SprinklersSwitch::new(
            SprinklersConfig::new(n).with_sizing(SizingMode::FixedSize(4)),
            3,
        );
        let report = Engine::new().run_parts(
            switch,
            traffic,
            RunConfig {
                slots: 64,
                warmup_slots: 0,
                drain_slots: 1024,
            },
        );
        assert_eq!(report.offered_packets, 64);
        assert_eq!(report.delivered_packets, 64);
        assert_eq!(report.residual_packets, 0);
        assert!(report.reordering.is_ordered());
        assert!(report.delay.mean() >= 1.0);
    }

    #[test]
    fn bernoulli_run_is_conserving_and_ordered() {
        let n = 8;
        let gen = BernoulliTraffic::uniform(n, 0.5, 21);
        let switch = SprinklersSwitch::new(
            SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(gen.rate_matrix())),
            4,
        );
        let report = Engine::new().run_parts(
            switch,
            gen,
            RunConfig {
                slots: 20_000,
                warmup_slots: 2_000,
                drain_slots: 20_000,
            },
        );
        assert!(
            report.reordering.is_ordered(),
            "Sprinklers must never reorder"
        );
        assert!(report.delivery_ratio() > 0.95, "most packets should drain");
        assert!(report.delay.count() > 0);
        assert!(report.occupancy.samples > 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_sizes_are_rejected() {
        let gen = BernoulliTraffic::uniform(8, 0.5, 0);
        let switch = SprinklersSwitch::new(
            SprinklersConfig::new(16).with_sizing(SizingMode::FixedSize(1)),
            0,
        );
        let _ = Engine::new().run_parts(switch, gen, RunConfig::quick());
    }

    #[test]
    fn warmup_excludes_early_packets_from_delay_only() {
        let n = 4;
        let traffic = TraceTraffic::burst(n, 0, 1, 0, 10);
        let switch = SprinklersSwitch::new(
            SprinklersConfig::new(n).with_sizing(SizingMode::FixedSize(1)),
            1,
        );
        let report = Engine::new().run_parts(
            switch,
            traffic,
            RunConfig {
                slots: 10,
                warmup_slots: 1_000, // everything arrives before warm-up ends
                drain_slots: 200,
            },
        );
        assert_eq!(report.delivered_packets, 10);
        assert_eq!(
            report.delay.count(),
            0,
            "warm-up packets are not measured for delay"
        );
    }

    #[test]
    fn engine_runs_a_spec_end_to_end() {
        let spec = ScenarioSpec::new("sprinklers", 8)
            .with_traffic(TrafficSpec::Uniform { load: 0.5 })
            .with_run(RunConfig::quick())
            .with_seed(7);
        let report = Engine::new().run(&spec).unwrap();
        assert_eq!(report.switch_name, "sprinklers");
        assert_eq!(report.n, 8);
        assert!(report.offered_packets > 0);
        assert!(report.reordering.is_ordered());
        assert!(report.delivery_ratio() > 0.9);
    }

    #[test]
    fn one_engine_runs_many_scenarios() {
        let mut engine = Engine::new();
        for scheme in ["oq", "baseline-lb", "sprinklers"] {
            let spec = ScenarioSpec::new(scheme, 8)
                .with_traffic(TrafficSpec::Uniform { load: 0.4 })
                .with_run(RunConfig {
                    slots: 2_000,
                    warmup_slots: 200,
                    drain_slots: 4_000,
                });
            let report = engine.run(&spec).unwrap();
            assert!(report.delivery_ratio() > 0.9, "{scheme} stalled");
        }
    }

    #[test]
    fn engine_rejects_unknown_schemes() {
        let spec = ScenarioSpec::new("nope", 8);
        assert!(Engine::new().run(&spec).is_err());
    }

    #[test]
    fn adaptive_sizing_spec_runs() {
        let spec = ScenarioSpec::new("sprinklers", 8)
            .with_sizing(SizingSpec::Adaptive)
            .with_run(RunConfig {
                slots: 5_000,
                warmup_slots: 500,
                drain_slots: 10_000,
            });
        let report = Engine::new().run(&spec).unwrap();
        assert!(report.reordering.is_ordered());
    }
}
