//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] is the single value that describes one simulation run:
//! which scheme, how many ports, how stripe sizes are chosen, what traffic is
//! offered, how long to run, and the RNG seed.  Sweeps, benchmark binaries,
//! examples and integration tests all construct runs from this one type and
//! hand it to [`crate::engine::Engine::run`], which resolves the scheme
//! through [`crate::registry`].
//!
//! Specs are plain data: they derive the serde traits, and — because the
//! offline build uses marker-trait serde shims — they also carry a small
//! hand-rolled JSON round-trip ([`ScenarioSpec::to_json`] /
//! [`ScenarioSpec::from_json`]) so scenario files work regardless of which
//! serde is linked.

use crate::engine::{RunConfig, DEFAULT_BATCH};
use crate::traffic::bernoulli::BernoulliTraffic;
use crate::traffic::bursty::BurstyTraffic;
use crate::traffic::flows::FlowTraffic;
use crate::traffic::trace_io::{TraceFormat, MAX_REPEAT};
use crate::traffic::trace_stream::TraceStream;
use crate::traffic::TrafficGenerator;
use serde::{Deserialize, Serialize};
use sprinklers_core::matrix::TrafficMatrix;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// How the Sprinklers switch chooses stripe sizes in this scenario
/// (baselines ignore it).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizingSpec {
    /// Derive sizes from the scenario traffic's rate matrix (the paper's
    /// evaluation setting, where the matrix is known a priori).
    Matrix,
    /// Measure VOQ rates online and adapt sizes with the default parameters.
    Adaptive,
    /// Fixed power-of-two stripe size for every VOQ.
    Fixed(usize),
}

/// The offered traffic pattern of a scenario: one of the synthetic
/// generators, or a recorded trace replayed from disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficSpec {
    /// Bernoulli arrivals, uniform destinations (Figure 6).
    Uniform {
        /// Offered load ρ per input.
        load: f64,
    },
    /// Bernoulli arrivals, quasi-diagonal destinations (Figure 7).
    Diagonal {
        /// Offered load ρ per input.
        load: f64,
    },
    /// Bernoulli arrivals with a hot output per input.
    Hotspot {
        /// Offered load ρ per input.
        load: f64,
        /// Fraction of each input's load aimed at its hot output.
        hot_fraction: f64,
    },
    /// On/off bursty arrivals with uniform destinations.
    Bursty {
        /// Long-run offered load ρ per input.
        load: f64,
        /// In-burst arrival probability cap.
        peak: f64,
        /// Mean burst length in slots.
        mean_burst: f64,
    },
    /// Bernoulli arrivals carrying geometric application flows (uniform
    /// destinations); required by the TCP-hashing baseline.
    Flows {
        /// Offered load ρ per input.
        load: f64,
        /// Mean flow length in packets.
        mean_flow_len: f64,
    },
    /// Replay a recorded workload trace from disk, streamed with bounded
    /// memory (see [`crate::traffic::trace_stream::TraceStream`]).
    Trace {
        /// Trace file path.  Relative paths in spec files are resolved
        /// against the spec file's directory by the loaders
        /// ([`ScenarioSpec::rebase_paths`]).
        path: String,
        /// On-disk encoding; `None` selects by file extension.
        format: Option<TraceFormat>,
        /// Number of back-to-back copies to replay (each offset by the
        /// recorded slot span).
        repeat: u32,
        /// Time-dilation factor: recorded slots map to `floor(slot/scale)`,
        /// so `scale < 1` lowers the offered load and `scale > 1` raises it
        /// (up to inadmissible overload).  This is the knob load sweeps
        /// drive for traces ([`Self::with_load`]).
        scale: f64,
    },
}

impl TrafficSpec {
    /// A trace replay at its recorded timebase (`repeat = 1`, `scale = 1`),
    /// format chosen by file extension.
    pub fn trace(path: impl Into<String>) -> Self {
        TrafficSpec::Trace {
            path: path.into(),
            format: None,
            repeat: 1,
            scale: 1.0,
        }
    }

    /// The long-run rate matrix of this pattern at size `n`.  For traces
    /// this opens and validates the file: the recorded analytic matrix when
    /// the header carries one, else empirical rates from the data.
    pub fn try_matrix(&self, n: usize) -> Result<TrafficMatrix, SpecError> {
        Ok(match self {
            TrafficSpec::Uniform { load } => TrafficMatrix::uniform(n, *load),
            TrafficSpec::Diagonal { load } => TrafficMatrix::diagonal(n, *load),
            TrafficSpec::Hotspot { load, hot_fraction } => {
                TrafficMatrix::hotspot(n, *load, *hot_fraction)
            }
            TrafficSpec::Bursty { load, .. } => TrafficMatrix::uniform(n, *load),
            TrafficSpec::Flows { load, .. } => TrafficMatrix::uniform(n, *load),
            TrafficSpec::Trace {
                path,
                format,
                repeat,
                scale,
            } => TraceStream::open(path, *format, n, *repeat, *scale)?.rate_matrix(),
        })
    }

    /// Infallible form of [`Self::try_matrix`] for the synthetic patterns.
    ///
    /// # Panics
    ///
    /// Panics for [`TrafficSpec::Trace`] when the trace file cannot be read
    /// or validated; fallible callers should use [`Self::try_matrix`].
    pub fn matrix(&self, n: usize) -> TrafficMatrix {
        self.try_matrix(n)
            .expect("trace specs need try_matrix for error handling")
    }

    /// Instantiate the traffic generator.  Only trace replay can fail (the
    /// file is opened and validated here); synthetic patterns always build.
    pub fn build(&self, n: usize, seed: u64) -> Result<Box<dyn TrafficGenerator>, SpecError> {
        Ok(match self {
            TrafficSpec::Uniform { load } => Box::new(BernoulliTraffic::uniform(n, *load, seed)),
            TrafficSpec::Diagonal { load } => Box::new(BernoulliTraffic::diagonal(n, *load, seed)),
            TrafficSpec::Hotspot { load, hot_fraction } => {
                Box::new(BernoulliTraffic::hotspot(n, *load, *hot_fraction, seed))
            }
            TrafficSpec::Bursty {
                load,
                peak,
                mean_burst,
            } => Box::new(BurstyTraffic::uniform(n, *load, *peak, *mean_burst, seed)),
            TrafficSpec::Flows {
                load,
                mean_flow_len,
            } => Box::new(FlowTraffic::uniform(n, *load, *mean_flow_len, seed)),
            TrafficSpec::Trace {
                path,
                format,
                repeat,
                scale,
            } => Box::new(TraceStream::open(path, *format, n, *repeat, *scale)?),
        })
    }

    /// The pattern's offered load.  For traces this is the `scale` knob —
    /// the load multiplier relative to the recorded workload.
    pub fn load(&self) -> f64 {
        match self {
            TrafficSpec::Uniform { load }
            | TrafficSpec::Diagonal { load }
            | TrafficSpec::Hotspot { load, .. }
            | TrafficSpec::Bursty { load, .. }
            | TrafficSpec::Flows { load, .. } => *load,
            TrafficSpec::Trace { scale, .. } => *scale,
        }
    }

    /// The same pattern at a different offered load (for load sweeps).  For
    /// traces the load knob is `scale`: sweeping loads over a trace sweeps
    /// its time compression.
    #[must_use]
    pub fn with_load(mut self, new_load: f64) -> Self {
        match &mut self {
            TrafficSpec::Uniform { load }
            | TrafficSpec::Diagonal { load }
            | TrafficSpec::Hotspot { load, .. }
            | TrafficSpec::Bursty { load, .. }
            | TrafficSpec::Flows { load, .. } => *load = new_load,
            TrafficSpec::Trace { scale, .. } => *scale = new_load,
        }
        self
    }

    fn pattern_name(&self) -> &'static str {
        match self {
            TrafficSpec::Uniform { .. } => "uniform",
            TrafficSpec::Diagonal { .. } => "diagonal",
            TrafficSpec::Hotspot { .. } => "hotspot",
            TrafficSpec::Bursty { .. } => "bursty",
            TrafficSpec::Flows { .. } => "flows",
            TrafficSpec::Trace { .. } => "trace",
        }
    }
}

/// Inter-switch link parameters of a fabric topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Propagation latency in slots (≥ 1): a packet admitted onto the wire
    /// at slot `t` arrives at the far switch at slot `t + latency`.
    pub latency: u64,
    /// Admission gap in slots (≥ 1): at most one packet enters the wire per
    /// `gap` slots, so link capacity is `1/gap` packets per slot (1 = the
    /// switch line rate).
    pub gap: u64,
}

impl LinkSpec {
    /// Upper bound on `latency` and `gap` (2³² slots).  Far beyond any
    /// meaningful configuration, and it makes the fabric's arrival-slot
    /// arithmetic (`slot + latency`, `slot + gap`) documented-safe: with
    /// both bounded by 2³², a `u64` addition could only overflow after
    /// ~1.8·10¹⁹ simulated slots, which no realizable run reaches.
    /// Values above the bound are typed [`SpecError`]s at validation time
    /// ([`TopologySpec::validate`]), never silent wraparound.
    pub const MAX_LINK_SLOTS: u64 = 1 << 32;
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec { latency: 1, gap: 1 }
    }
}

/// How an edge switch picks the core (fat-tree) or intermediate switch
/// (butterfly) for packets destined to a remote host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingSpec {
    /// Deterministic hash of the `(source, destination)` host pair: every
    /// host VOQ is pinned to one path, so order is trivially preserved but
    /// load can clump on unlucky hash collisions (classic ECMP).
    EcmpHash,
    /// Independent uniform random choice per packet: ideal load spreading,
    /// but unequal path queues reorder packets end to end.
    RandomPacket,
    /// Sprinklers striping at the edge: a host VOQ sticks to its current
    /// path while any of its packets are in flight and re-randomizes (with
    /// a fresh power-of-two stripe budget) only once the VOQ has drained
    /// end to end — load-balanced *and* inversion-free.
    Stripe,
}

impl RoutingSpec {
    /// The spec-file name of this strategy.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingSpec::EcmpHash => "ecmp",
            RoutingSpec::RandomPacket => "random",
            RoutingSpec::Stripe => "stripe",
        }
    }

    fn from_name(name: &str) -> Result<Self, SpecError> {
        Ok(match name {
            "ecmp" => RoutingSpec::EcmpHash,
            "random" => RoutingSpec::RandomPacket,
            "stripe" => RoutingSpec::Stripe,
            other => {
                return Err(SpecError::new(format!(
                    "unknown routing strategy '{other}' (known: ecmp, random, stripe)"
                )))
            }
        })
    }
}

/// A multi-switch fabric topology.  When a [`ScenarioSpec`] carries one, the
/// engine builds one registry switch (of the spec's scheme) per topology
/// node, wires them with [`LinkSpec`] links, and reports end-to-end
/// delay/reordering over the whole network instead of a single switch.  The
/// spec's `n` must equal the topology's total host count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Two-level fat-tree: `edges` edge switches with `hosts_per_edge`
    /// hosts each, every edge connected up to each of `cores` core
    /// switches.  Edge nodes have `hosts_per_edge + cores` ports; core
    /// nodes have `edges` ports.
    FatTree2 {
        /// Number of edge switches (≥ 2; each core switch has one port per
        /// edge, and switches need at least two ports).
        edges: usize,
        /// Number of core switches (≥ 1); the routing strategy's path
        /// choices.
        cores: usize,
        /// Hosts attached to each edge switch (≥ 1).
        hosts_per_edge: usize,
        /// Path-choice strategy at the edge switches.
        routing: RoutingSpec,
        /// Inter-switch link parameters.
        link: LinkSpec,
    },
    /// Flattened butterfly: `switches` directly meshed switches with
    /// `hosts_per_switch` hosts each.  Remote packets either take the
    /// direct one-hop path or detour through one intermediate switch
    /// (Valiant style), chosen by the routing strategy.
    Butterfly {
        /// Number of switches in the full mesh (≥ 2).
        switches: usize,
        /// Hosts attached to each switch (≥ 1).
        hosts_per_switch: usize,
        /// Intermediate-switch choice strategy at the source switch.
        routing: RoutingSpec,
        /// Inter-switch link parameters.
        link: LinkSpec,
    },
}

impl TopologySpec {
    /// Total number of hosts (the fabric's external port space; must equal
    /// the owning spec's `n`).
    pub fn hosts(&self) -> usize {
        match self {
            TopologySpec::FatTree2 {
                edges,
                hosts_per_edge,
                ..
            } => edges * hosts_per_edge,
            TopologySpec::Butterfly {
                switches,
                hosts_per_switch,
                ..
            } => switches * hosts_per_switch,
        }
    }

    /// The routing strategy.
    pub fn routing(&self) -> RoutingSpec {
        match self {
            TopologySpec::FatTree2 { routing, .. } | TopologySpec::Butterfly { routing, .. } => {
                *routing
            }
        }
    }

    /// The inter-switch link parameters.
    pub fn link(&self) -> LinkSpec {
        match self {
            TopologySpec::FatTree2 { link, .. } | TopologySpec::Butterfly { link, .. } => *link,
        }
    }

    /// The spec-file name of the topology kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TopologySpec::FatTree2 { .. } => "fat-tree2",
            TopologySpec::Butterfly { .. } => "butterfly",
        }
    }

    /// Number of switch nodes in the wired fabric, in the node-index space
    /// fault events address (edge switches first, then cores, for the
    /// fat-tree; mesh switches in order for the butterfly — see
    /// `fabric::topology::Wiring`).
    pub fn node_count(&self) -> usize {
        match *self {
            TopologySpec::FatTree2 { edges, cores, .. } => edges + cores,
            TopologySpec::Butterfly { switches, .. } => switches,
        }
    }

    /// Number of directed inter-switch links, in the link-index space fault
    /// events address (ascending source node, then ascending source port —
    /// the same creation order `fabric::topology::Wiring` walks each slot).
    pub fn link_count(&self) -> usize {
        match *self {
            TopologySpec::FatTree2 { edges, cores, .. } => 2 * edges * cores,
            TopologySpec::Butterfly { switches, .. } => switches * (switches - 1),
        }
    }

    /// Check the topology's shape against the owning spec's port count `n`
    /// and the per-node switch size bounds.
    pub fn validate(&self, n: usize) -> Result<(), SpecError> {
        let link = self.link();
        if link.latency == 0 {
            return Err(SpecError::new(
                "link latency must be at least 1 slot".to_string(),
            ));
        }
        if link.gap == 0 {
            return Err(SpecError::new(
                "link gap must be at least 1 slot (1 = line rate)".to_string(),
            ));
        }
        if link.latency > LinkSpec::MAX_LINK_SLOTS {
            return Err(SpecError::new(format!(
                "link latency {} exceeds the {} slot bound (arrival-slot \
                 arithmetic must never overflow)",
                link.latency,
                LinkSpec::MAX_LINK_SLOTS
            )));
        }
        if link.gap > LinkSpec::MAX_LINK_SLOTS {
            return Err(SpecError::new(format!(
                "link gap {} exceeds the {} slot bound (admission-slot \
                 arithmetic must never overflow)",
                link.gap,
                LinkSpec::MAX_LINK_SLOTS
            )));
        }
        let node_sizes: [usize; 2] = match *self {
            TopologySpec::FatTree2 {
                edges,
                cores,
                hosts_per_edge,
                ..
            } => {
                if edges < 2 {
                    return Err(SpecError::new(format!(
                        "fat-tree2 needs at least 2 edge switches (got {edges})"
                    )));
                }
                if cores == 0 || hosts_per_edge == 0 {
                    return Err(SpecError::new(format!(
                        "fat-tree2 needs cores >= 1 and hosts_per_edge >= 1 \
                         (got cores={cores}, hosts_per_edge={hosts_per_edge})"
                    )));
                }
                [hosts_per_edge + cores, edges]
            }
            TopologySpec::Butterfly {
                switches,
                hosts_per_switch,
                ..
            } => {
                if switches < 2 || hosts_per_switch == 0 {
                    return Err(SpecError::new(format!(
                        "butterfly needs switches >= 2 and hosts_per_switch >= 1 \
                         (got switches={switches}, hosts_per_switch={hosts_per_switch})"
                    )));
                }
                [
                    hosts_per_switch + switches - 1,
                    hosts_per_switch + switches - 1,
                ]
            }
        };
        for size in node_sizes {
            if size > sprinklers_core::packet::MAX_PORTS {
                return Err(SpecError::new(format!(
                    "topology node size {size} exceeds the {}-port switch bound",
                    sprinklers_core::packet::MAX_PORTS
                )));
            }
        }
        if self.hosts() != n {
            return Err(SpecError::new(format!(
                "spec n = {n} must equal the topology's host count {} \
                 ({} topology)",
                self.hosts(),
                self.kind_name()
            )));
        }
        Ok(())
    }

    fn to_json_inline(&self) -> String {
        let link = self.link();
        let tail = format!(
            r#""routing":"{}","link":{{"latency":{},"gap":{}}}"#,
            self.routing().name(),
            link.latency,
            link.gap
        );
        match *self {
            TopologySpec::FatTree2 {
                edges,
                cores,
                hosts_per_edge,
                ..
            } => format!(
                r#"{{"kind":"fat-tree2","edges":{edges},"cores":{cores},"hosts_per_edge":{hosts_per_edge},{tail}}}"#
            ),
            TopologySpec::Butterfly {
                switches,
                hosts_per_switch,
                ..
            } => format!(
                r#"{{"kind":"butterfly","switches":{switches},"hosts_per_switch":{hosts_per_switch},{tail}}}"#
            ),
        }
    }
}

/// What a timed fault event does, and to which entity class.
///
/// Link indices address the directed inter-switch links in wiring order
/// ([`TopologySpec::link_count`]); node indices address switch nodes
/// ([`TopologySpec::node_count`]).  Host attachment points never fail —
/// faults model the fabric, not the end hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Take a directed link down: packets on its wire and in its ingress
    /// queue are dropped (typed losses) and nothing is admitted until the
    /// matching `link-up`.
    LinkDown,
    /// Restore a previously failed link.
    LinkUp,
    /// Take a switch node down: every packet buffered inside it is dropped
    /// and the node discards all traffic until the matching `node-up`, at
    /// which point it resumes empty (a rebooted switch keeps no state).
    NodeDown,
    /// Restore a previously failed node.
    NodeUp,
}

impl FaultKind {
    /// The spec-file name of this event kind.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LinkDown => "link-down",
            FaultKind::LinkUp => "link-up",
            FaultKind::NodeDown => "node-down",
            FaultKind::NodeUp => "node-up",
        }
    }

    /// True for the link-targeting kinds.
    pub fn is_link(&self) -> bool {
        matches!(self, FaultKind::LinkDown | FaultKind::LinkUp)
    }

    /// True for the recovery kinds.
    pub fn is_up(&self) -> bool {
        matches!(self, FaultKind::LinkUp | FaultKind::NodeUp)
    }

    fn from_name(name: &str) -> Result<Self, SpecError> {
        Ok(match name {
            "link-down" => FaultKind::LinkDown,
            "link-up" => FaultKind::LinkUp,
            "node-down" => FaultKind::NodeDown,
            "node-up" => FaultKind::NodeUp,
            other => {
                return Err(SpecError::new(format!(
                    "unknown fault kind '{other}' (known: link-down, link-up, \
                     node-down, node-up)"
                )))
            }
        })
    }
}

/// One timed fault event: at the start of `slot` (after that slot's
/// injections, before the fabric's wire-arrival phase), apply `kind` to the
/// link or node `index` addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEventSpec {
    /// Absolute slot the event fires at (must precede the run end,
    /// `slots + drain_slots`).
    pub slot: u64,
    /// What happens.
    pub kind: FaultKind,
    /// Link index for link events, node index for node events.
    pub index: usize,
}

/// Seeded random link-failure generator: each link (except those already
/// scripted by explicit events) alternates up/down phases with durations
/// drawn uniformly from `1..=2·mean − 1` slots — integer-uniform with the
/// requested mean — from its own seed-derived RNG, so the schedule is a
/// pure function of the spec.  Nodes never fail randomly; script those
/// explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomFaultSpec {
    /// Mean slots between failures (mean up-phase length, ≥ 1).
    pub mtbf: u64,
    /// Mean slots to repair (mean down-phase length, ≥ 1).
    pub mttr: u64,
    /// Generator seed (independent of the scenario seed, so failure
    /// schedules can be varied without moving traffic or routing draws).
    pub seed: u64,
}

/// Deterministic fault schedule of a fabric scenario: explicit timed
/// events, an optional random link-failure generator, or both.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Explicit timed events, applied in deterministic order regardless of
    /// how they are listed here.
    pub events: Vec<FaultEventSpec>,
    /// Optional seeded random link-failure generator.
    pub random: Option<RandomFaultSpec>,
}

impl FaultSpec {
    /// True when the spec describes no fault activity at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.random.is_none()
    }

    /// Check the schedule against the topology it applies to and the run
    /// length.  Every degenerate shape is a typed error: events addressing
    /// nonexistent links/nodes, events at or past the run end, duplicate
    /// events for one entity at one slot, an `up` with no prior `down`
    /// (or `down`/`up` repeated without alternation), and zero MTBF/MTTR.
    pub fn validate(&self, topo: &TopologySpec, run: &RunConfig) -> Result<(), SpecError> {
        let total_slots = run.slots.saturating_add(run.drain_slots);
        let links = topo.link_count();
        let nodes = topo.node_count();
        for event in &self.events {
            let (space, count) = if event.kind.is_link() {
                ("link", links)
            } else {
                ("node", nodes)
            };
            if event.index >= count {
                return Err(SpecError::new(format!(
                    "fault event '{}' at slot {} references {space} {} but the \
                     {} topology has only {count} {space}s",
                    event.kind.name(),
                    event.slot,
                    event.index,
                    topo.kind_name()
                )));
            }
            if event.slot >= total_slots {
                return Err(SpecError::new(format!(
                    "fault event '{}' on {space} {} at slot {} is at or past \
                     the run end (slots + drain_slots = {total_slots})",
                    event.kind.name(),
                    event.index,
                    event.slot
                )));
            }
        }
        // Per-entity timeline: `(is_link, index)` identifies the entity, so
        // sorting groups each entity's events in slot order.
        let mut timeline: Vec<(bool, usize, u64, bool)> = self
            .events
            .iter()
            .map(|e| (e.kind.is_link(), e.index, e.slot, e.kind.is_up()))
            .collect();
        timeline.sort_unstable();
        for pair in timeline.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if (a.0, a.1, a.2) == (b.0, b.1, b.2) {
                let space = if a.0 { "link" } else { "node" };
                return Err(SpecError::new(format!(
                    "duplicate fault events for {space} {} at slot {} \
                     (at most one event per entity per slot)",
                    a.1, a.2
                )));
            }
        }
        let mut prev: Option<(bool, usize, bool)> = None;
        for &(is_link, index, slot, is_up) in &timeline {
            let space = if is_link { "link" } else { "node" };
            let same_entity = prev.is_some_and(|(pl, pi, _)| (pl, pi) == (is_link, index));
            // An entity's first event must be a down; after that the states
            // strictly alternate.
            let expected_up = same_entity && !prev.unwrap().2;
            if is_up != expected_up {
                if is_up && !same_entity {
                    return Err(SpecError::new(format!(
                        "fault event '{space}-up' on {space} {index} at slot \
                         {slot} has no prior '{space}-down'"
                    )));
                }
                return Err(SpecError::new(format!(
                    "fault events on {space} {index} must alternate down/up \
                     (the event at slot {slot} repeats the '{}' state)",
                    if is_up { "up" } else { "down" }
                )));
            }
            prev = Some((is_link, index, is_up));
        }
        if let Some(random) = &self.random {
            if random.mtbf == 0 {
                return Err(SpecError::new(
                    "random fault mtbf must be at least 1 slot".to_string(),
                ));
            }
            if random.mttr == 0 {
                return Err(SpecError::new(
                    "random fault mttr must be at least 1 slot".to_string(),
                ));
            }
        }
        Ok(())
    }

    fn to_json_inline(&self) -> String {
        let mut out = String::from(r#"{"events":["#);
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let target = if event.kind.is_link() { "link" } else { "node" };
            let _ = write!(
                out,
                r#"{{"slot":{},"kind":"{}","{target}":{}}}"#,
                event.slot,
                event.kind.name(),
                event.index
            );
        }
        out.push(']');
        if let Some(random) = &self.random {
            let _ = write!(
                out,
                r#","random":{{"mtbf":{},"mttr":{},"seed":{}}}"#,
                random.mtbf, random.mttr, random.seed
            );
        }
        out.push('}');
        out
    }
}

/// Everything needed to reproduce one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scheme name, resolved through [`crate::registry`] (see
    /// [`crate::registry::schemes`] for the known names).
    pub scheme: String,
    /// Switch size (ports).
    pub n: usize,
    /// Stripe sizing policy (Sprinklers variants only).
    pub sizing: SizingSpec,
    /// Multi-switch fabric topology, when this scenario simulates a network
    /// of switches instead of a single one.  `None` (the default, and the
    /// only form legacy spec files can express) is the classic single-switch
    /// run.  When set, `n` is the topology's total host count and `scheme`
    /// names the per-node switch every topology node is built from.
    pub topology: Option<TopologySpec>,
    /// Deterministic fault schedule, only meaningful together with a
    /// `topology` (single switches have no links or nodes to fail; the
    /// engine rejects faults without one).  `None` — the default, and the
    /// only form legacy spec files can express — is the failure-free run.
    /// Faults are part of the scenario's scientific identity: a faulted
    /// spec hashes differently from a healthy one, so the experiment cache
    /// can never serve a healthy result for a faulted run.
    pub faults: Option<FaultSpec>,
    /// Offered traffic.
    pub traffic: TrafficSpec,
    /// Run length configuration.
    pub run: RunConfig,
    /// Seed for the switch's and the traffic generator's randomness.
    pub seed: u64,
    /// Slots per [`sprinklers_core::switch::Switch::step_batch`] call in the
    /// engine's hot loop.  Purely a performance knob: any value produces a
    /// byte-identical report (the `batch-parity` CI job and the differential
    /// property suite enforce this), so it is *not* part of the scenario's
    /// scientific identity even though it round-trips through JSON.  The
    /// engine's occupancy-sampling boundaries additionally cap the effective
    /// batch at `n` (see the `engine` module docs), so values above `n`
    /// simply saturate.
    pub batch: u32,
    /// Worker threads used *inside* each simulated slot (see
    /// [`sprinklers_core::switch::Switch::set_threads`]).  Like `batch`,
    /// purely a performance knob: the fabric phases shard by contiguous port
    /// range and merge in ascending port order, so any value produces a
    /// byte-identical report (the `thread-parity` CI job and the differential
    /// property suite enforce this) and it is *not* part of the scenario's
    /// scientific identity.  Switches clamp it to `[1, n]`; schemes without a
    /// parallel path simply ignore it.
    pub threads: u32,
}

impl ScenarioSpec {
    /// A scenario with workable defaults: matrix sizing, uniform Bernoulli
    /// traffic at 60% load, the default run length, seed 1.
    pub fn new(scheme: impl Into<String>, n: usize) -> Self {
        ScenarioSpec {
            scheme: scheme.into(),
            n,
            sizing: SizingSpec::Matrix,
            topology: None,
            faults: None,
            traffic: TrafficSpec::Uniform { load: 0.6 },
            run: RunConfig::default(),
            seed: 1,
            batch: DEFAULT_BATCH,
            threads: 1,
        }
    }

    /// Set the sizing policy.
    #[must_use]
    pub fn with_sizing(mut self, sizing: SizingSpec) -> Self {
        self.sizing = sizing;
        self
    }

    /// Set a multi-switch fabric topology (see [`TopologySpec`]).
    #[must_use]
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Set a deterministic fault schedule (see [`FaultSpec`]; requires a
    /// topology to be meaningful).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Set the traffic pattern.
    #[must_use]
    pub fn with_traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = traffic;
        self
    }

    /// Set the run configuration.
    #[must_use]
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Set the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the stepping batch size (clamped to at least 1 by the engine).
    #[must_use]
    pub fn with_batch(mut self, batch: u32) -> Self {
        self.batch = batch;
        self
    }

    /// Set the intra-slot worker thread count (clamped to `[1, n]` by the
    /// switch; 1 is the serial path).
    #[must_use]
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// The seed handed to this scenario's traffic generator.  Derived from
    /// the spec seed; the engine and the `trace record` pipeline both go
    /// through here, so a recorded trace captures exactly the arrival
    /// stream the engine would have generated.
    pub fn traffic_seed(&self) -> u64 {
        self.seed.wrapping_add(1)
    }

    /// Instantiate this scenario's traffic generator (see
    /// [`Self::traffic_seed`]).
    pub fn build_traffic(&self) -> Result<Box<dyn TrafficGenerator>, SpecError> {
        self.traffic.build(self.n, self.traffic_seed())
    }

    /// Resolve any relative trace path against `base` (typically the
    /// directory of the spec file this scenario was loaded from), so specs
    /// can reference traces checked in next to them regardless of the
    /// process working directory.  Absolute paths are left untouched.
    pub fn rebase_paths(&mut self, base: &Path) {
        if let TrafficSpec::Trace { path, .. } = &mut self.traffic {
            if Path::new(path.as_str()).is_relative() && !base.as_os_str().is_empty() {
                *path = base.join(path.as_str()).to_string_lossy().into_owned();
            }
        }
    }

    /// Render the spec as JSON.
    pub fn to_json(&self) -> String {
        let sizing = match self.sizing {
            SizingSpec::Matrix => r#"{"mode":"matrix"}"#.to_string(),
            SizingSpec::Adaptive => r#"{"mode":"adaptive"}"#.to_string(),
            SizingSpec::Fixed(size) => format!(r#"{{"mode":"fixed","size":{size}}}"#),
        };
        let traffic = match &self.traffic {
            TrafficSpec::Uniform { load } => {
                format!(r#"{{"pattern":"uniform","load":{load}}}"#)
            }
            TrafficSpec::Diagonal { load } => {
                format!(r#"{{"pattern":"diagonal","load":{load}}}"#)
            }
            TrafficSpec::Hotspot { load, hot_fraction } => {
                format!(r#"{{"pattern":"hotspot","load":{load},"hot_fraction":{hot_fraction}}}"#)
            }
            TrafficSpec::Bursty {
                load,
                peak,
                mean_burst,
            } => format!(
                r#"{{"pattern":"bursty","load":{load},"peak":{peak},"mean_burst":{mean_burst}}}"#
            ),
            TrafficSpec::Flows {
                load,
                mean_flow_len,
            } => format!(r#"{{"pattern":"flows","load":{load},"mean_flow_len":{mean_flow_len}}}"#),
            TrafficSpec::Trace {
                path,
                format,
                repeat,
                scale,
            } => {
                let format = match format {
                    Some(f) => format!(r#","format":"{}""#, f.name()),
                    None => String::new(),
                };
                format!(
                    r#"{{"kind":"trace","path":"{}"{format},"repeat":{repeat},"scale":{scale}}}"#,
                    escape_json_string(path),
                )
            }
        };
        // The topology line is emitted only when present, so legacy
        // (single-switch) specs keep their exact historical JSON — and,
        // through `scientific_identity_json`, their cache keys.
        let topology = match &self.topology {
            None => String::new(),
            Some(topo) => format!("  \"topology\": {},\n", topo.to_json_inline()),
        };
        // Like topology: emitted only when present, so fault-free specs keep
        // their exact historical JSON — and, through
        // `scientific_identity_json`, their cache keys — while faulted specs
        // hash differently by construction.
        let faults = match &self.faults {
            None => String::new(),
            Some(faults) => format!("  \"faults\": {},\n", faults.to_json_inline()),
        };
        format!(
            concat!(
                "{{\n",
                "  \"scheme\": \"{}\",\n",
                "  \"n\": {},\n",
                "  \"sizing\": {},\n",
                "{}",
                "{}",
                "  \"traffic\": {},\n",
                "  \"run\": {{\"slots\":{},\"warmup_slots\":{},\"drain_slots\":{}}},\n",
                "  \"seed\": {},\n",
                "  \"batch\": {},\n",
                "  \"threads\": {}\n",
                "}}"
            ),
            escape_json_string(&self.scheme),
            self.n,
            sizing,
            topology,
            faults,
            traffic,
            self.run.slots,
            self.run.warmup_slots,
            self.run.drain_slots,
            self.seed,
            self.batch,
            self.threads,
        )
    }

    /// Parse a spec from JSON (the format produced by [`Self::to_json`];
    /// unknown keys are rejected, missing optional blocks fall back to the
    /// defaults of [`Self::new`]).
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let value = json::parse(text)?;
        let obj = value.as_object("top level")?;
        let mut spec = ScenarioSpec::new(obj.get_str("scheme")?, obj.get_u64("n")? as usize);
        for (key, val) in &obj.entries {
            match key.as_str() {
                "scheme" | "n" => {}
                "seed" => spec.seed = val.as_u64(key)?,
                "batch" => {
                    let batch = val.as_u64(key)?;
                    if batch == 0 || batch > u64::from(u32::MAX) {
                        return Err(SpecError::new(format!(
                            "batch must be in 1..=u32::MAX, got {batch}"
                        )));
                    }
                    spec.batch = batch as u32;
                }
                "threads" => {
                    let threads = val.as_u64(key)?;
                    if threads == 0 || threads > u64::from(u32::MAX) {
                        return Err(SpecError::new(format!(
                            "threads must be in 1..=u32::MAX, got {threads}"
                        )));
                    }
                    spec.threads = threads as u32;
                }
                "run" => {
                    let run = val.as_object(key)?;
                    spec.run = RunConfig {
                        slots: run.get_u64("slots")?,
                        warmup_slots: run.get_u64("warmup_slots")?,
                        drain_slots: run.get_u64("drain_slots")?,
                    };
                }
                "sizing" => {
                    let sizing = val.as_object(key)?;
                    spec.sizing = match sizing.get_str("mode")?.as_str() {
                        "matrix" => SizingSpec::Matrix,
                        "adaptive" => SizingSpec::Adaptive,
                        "fixed" => SizingSpec::Fixed(sizing.get_u64("size")? as usize),
                        other => {
                            return Err(SpecError::new(format!("unknown sizing mode '{other}'")))
                        }
                    };
                }
                "traffic" => {
                    spec.traffic = parse_traffic(val.as_object(key)?)?;
                }
                "topology" => {
                    spec.topology = Some(parse_topology(val.as_object(key)?)?);
                }
                "faults" => {
                    spec.faults = Some(parse_faults(val.as_object(key)?)?);
                }
                other => return Err(SpecError::new(format!("unknown key '{other}'"))),
            }
        }
        Ok(spec)
    }

    /// A short human-readable summary (used in logs and CSV labels).
    pub fn label(&self) -> String {
        let base = format!(
            "{}/n={}/{}@{:.2}",
            self.scheme,
            self.n,
            self.traffic.pattern_name(),
            self.traffic.load()
        );
        match &self.topology {
            None => base,
            Some(topo) => format!("{base}/{}", topo.kind_name()),
        }
    }
}

/// A suite of scenarios: a directory of [`ScenarioSpec`] JSON files, plus
/// optional scheme and load grid overrides that cross every base spec.
///
/// A suite is the unit the `suite` binary executes: the directory provides
/// the base scenarios (sorted by file name, so expansion order — and
/// therefore the merged CSV — is deterministic), and the overrides turn each
/// base spec into a scheme × load grid, which is exactly the shape of the
/// paper's figure experiments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SuiteSpec {
    /// Directory containing the `*.json` scenario files.
    pub dir: std::path::PathBuf,
    /// When set, each base spec is re-run once per scheme name, overriding
    /// the spec's own scheme.
    pub schemes: Option<Vec<String>>,
    /// When set, each (spec, scheme) pair is re-run once per load,
    /// overriding the spec traffic's load.
    pub loads: Option<Vec<f64>>,
    /// When set, every expanded case runs with this stepping batch size
    /// (overriding each spec's own `batch`).  Pure performance knob: the
    /// merged CSV is byte-identical at any value, which is exactly what the
    /// `batch-parity` CI job exercises — so, unlike the scheme and load
    /// overrides, it never appears in case names.
    pub batch: Option<u32>,
    /// When set, every expanded case runs with this intra-slot worker thread
    /// count (overriding each spec's own `threads`).  Like `batch`, a pure
    /// performance knob enforced byte-identical by the `thread-parity` CI
    /// job, so it never appears in case names either.
    pub threads: Option<u32>,
}

/// One expanded member of a suite: a stable name (file stem plus any
/// override suffixes) and the fully resolved spec to run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteCase {
    /// Deterministic case label, e.g. `smoke_uniform+foff@0.80`.
    pub name: String,
    /// The resolved scenario.
    pub spec: ScenarioSpec,
}

impl SuiteSpec {
    /// A suite over `dir` with no overrides.
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Self {
        SuiteSpec {
            dir: dir.into(),
            schemes: None,
            loads: None,
            batch: None,
            threads: None,
        }
    }

    /// Cross every base spec with these scheme names.
    #[must_use]
    pub fn with_schemes(mut self, schemes: Vec<String>) -> Self {
        self.schemes = Some(schemes);
        self
    }

    /// Cross every (spec, scheme) pair with these offered loads.
    #[must_use]
    pub fn with_loads(mut self, loads: Vec<f64>) -> Self {
        self.loads = Some(loads);
        self
    }

    /// Run every expanded case with this stepping batch size.
    #[must_use]
    pub fn with_batch(mut self, batch: u32) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Run every expanded case with this intra-slot worker thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Read and parse every `*.json` file under the suite directory
    /// (recursively; sorted by full path) and expand the scheme/load
    /// overrides into the full case list.  Errors carry the offending
    /// file's path as context.
    ///
    /// Case names are file *stems*, so two spec files with the same stem in
    /// different subdirectories would silently share one merged-CSV case
    /// label; that collision is detected here and reported as a typed error
    /// naming both paths.
    pub fn load_cases(&self) -> Result<Vec<SuiteCase>, SpecError> {
        let mut paths: Vec<std::path::PathBuf> = Vec::new();
        collect_spec_paths(&self.dir, &mut paths)?;
        paths.sort();
        if paths.is_empty() {
            return Err(SpecError::new(format!(
                "no *.json scenario specs in {}",
                self.dir.display()
            )));
        }
        let mut stems: Vec<(String, &std::path::PathBuf)> = Vec::new();
        let mut cases = Vec::new();
        for path in &paths {
            let text = std::fs::read_to_string(path)
                .map_err(|e| SpecError::new(format!("cannot read {}: {e}", path.display())))?;
            let mut base = ScenarioSpec::from_json(&text)
                .map_err(|e| e.context(format!("spec file {}", path.display())))?;
            // Trace paths in suite members are relative to the spec file.
            base.rebase_paths(path.parent().unwrap_or_else(|| Path::new("")));
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "spec".to_string());
            // The stem becomes the merged CSV's leading `case` column
            // verbatim; a comma or newline in it would silently splice extra
            // columns or rows into every downstream consumer.  Reject at
            // load time with a typed error instead.
            if stem.contains(',') || stem.contains('\n') || stem.contains('\r') {
                return Err(SpecError::new(format!(
                    "spec file name '{}' contains a comma or newline; case names \
                     form the merged CSV's first column, so these characters would \
                     corrupt its structure ({})",
                    stem.escape_debug(),
                    path.display()
                )));
            }
            if let Some((_, first)) = stems.iter().find(|(s, _)| *s == stem) {
                return Err(SpecError::new(format!(
                    "duplicate spec file stem '{stem}': {} and {} would share \
                     one case label in the merged CSV, making their rows \
                     unattributable; rename one of them",
                    first.display(),
                    path.display()
                )));
            }
            stems.push((stem.clone(), path));
            cases.extend(self.expand(&stem, &base));
        }
        Ok(cases)
    }

    /// Cross one base spec with the suite's overrides.  With no overrides
    /// the base spec is the single case; each applied override is recorded
    /// in the case name (`+scheme` / `@load`).
    pub fn expand(&self, name: &str, base: &ScenarioSpec) -> Vec<SuiteCase> {
        let schemes: Vec<Option<&str>> = match &self.schemes {
            Some(list) => list.iter().map(|s| Some(s.as_str())).collect(),
            None => vec![None],
        };
        let loads: Vec<Option<f64>> = match &self.loads {
            Some(list) => list.iter().copied().map(Some).collect(),
            None => vec![None],
        };
        let mut cases = Vec::with_capacity(schemes.len() * loads.len());
        for scheme in &schemes {
            for load in &loads {
                let mut spec = base.clone();
                let mut case_name = name.to_string();
                if let Some(scheme) = scheme {
                    spec.scheme = scheme.to_string();
                    case_name.push('+');
                    case_name.push_str(scheme);
                }
                if let Some(load) = *load {
                    spec.traffic = spec.traffic.with_load(load);
                    // Full float Display (shortest round-trip form), not a
                    // rounded rendering: distinct loads must yield distinct
                    // case names or merged CSV rows become unattributable.
                    case_name.push_str(&format!("@{load}"));
                }
                if let Some(batch) = self.batch {
                    spec.batch = batch;
                }
                if let Some(threads) = self.threads {
                    spec.threads = threads;
                }
                cases.push(SuiteCase {
                    name: case_name,
                    spec,
                });
            }
        }
        cases
    }
}

/// Recursively collect every `*.json` file under `dir`.  Unsorted; the
/// caller sorts the combined list by full path so traversal order (which
/// the OS does not guarantee) never leaks into case order.
fn collect_spec_paths(
    dir: &std::path::Path,
    out: &mut Vec<std::path::PathBuf>,
) -> Result<(), SpecError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| SpecError::new(format!("cannot read suite dir {}: {e}", dir.display())))?;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_spec_paths(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "json") {
            out.push(path);
        }
    }
    Ok(())
}

/// Parse the `traffic` object of a spec.  Synthetic patterns carry a
/// `"pattern"` key; trace replays are written `{"kind": "trace", "path":
/// ..., ["format": "csv"|"sprt",] ["repeat": R,] ["scale": S]}`.
fn parse_traffic(traffic: &json::Object) -> Result<TrafficSpec, SpecError> {
    if traffic.maybe("pattern").is_some() {
        let load = traffic.get_num("load")?;
        return Ok(match traffic.get_str("pattern")?.as_str() {
            "uniform" => TrafficSpec::Uniform { load },
            "diagonal" => TrafficSpec::Diagonal { load },
            "hotspot" => TrafficSpec::Hotspot {
                load,
                hot_fraction: traffic.get_num("hot_fraction")?,
            },
            "bursty" => TrafficSpec::Bursty {
                load,
                peak: traffic.get_num("peak")?,
                mean_burst: traffic.get_num("mean_burst")?,
            },
            "flows" => TrafficSpec::Flows {
                load,
                mean_flow_len: traffic.get_num("mean_flow_len")?,
            },
            other => return Err(SpecError::new(format!("unknown traffic pattern '{other}'"))),
        });
    }
    let kind = traffic.get_str("kind").map_err(|_| {
        SpecError::new("traffic needs a 'pattern' (synthetic) or 'kind' (trace) key".to_string())
    })?;
    if kind != "trace" {
        return Err(SpecError::new(format!("unknown traffic kind '{kind}'")));
    }
    let path = traffic.get_str("path")?;
    let format = match traffic.maybe("format") {
        None => None,
        Some(value) => match value {
            json::Value::String(name) => Some(TraceFormat::from_name(name)?),
            other => {
                return Err(SpecError::new(format!(
                    "format should be a string, got {other:?}"
                )))
            }
        },
    };
    let repeat = match traffic.maybe("repeat") {
        None => 1,
        Some(value) => {
            let repeat = value.as_u64("repeat")?;
            if repeat == 0 || repeat > u64::from(MAX_REPEAT) {
                return Err(SpecError::new(format!(
                    "trace repeat must be in 1..={MAX_REPEAT}, got {repeat}"
                )));
            }
            repeat as u32
        }
    };
    let scale = match traffic.maybe("scale") {
        None => 1.0,
        Some(value) => {
            let scale = value.as_number("scale")?;
            if !scale.is_finite() || scale <= 0.0 {
                return Err(SpecError::new(format!(
                    "trace scale must be finite and positive, got {scale}"
                )));
            }
            scale
        }
    };
    Ok(TrafficSpec::Trace {
        path,
        format,
        repeat,
        scale,
    })
}

/// Parse the `topology` object of a spec: a `"kind"` key selects the shape,
/// the shape's dimension keys are required, and `"routing"`/`"link"` are
/// optional (defaulting to ECMP hashing over line-rate latency-1 links).
fn parse_topology(topo: &json::Object) -> Result<TopologySpec, SpecError> {
    let kind = topo.get_str("kind")?;
    let mut routing = RoutingSpec::EcmpHash;
    let mut link = LinkSpec::default();
    let mut edges = None;
    let mut cores = None;
    let mut hosts_per_edge = None;
    let mut switches = None;
    let mut hosts_per_switch = None;
    for (key, val) in &topo.entries {
        match key.as_str() {
            "kind" => {}
            "routing" => routing = RoutingSpec::from_name(&topo.get_str(key)?)?,
            "link" => link = parse_link(val.as_object(key)?)?,
            "edges" => edges = Some(val.as_u64(key)? as usize),
            "cores" => cores = Some(val.as_u64(key)? as usize),
            "hosts_per_edge" => hosts_per_edge = Some(val.as_u64(key)? as usize),
            "switches" => switches = Some(val.as_u64(key)? as usize),
            "hosts_per_switch" => hosts_per_switch = Some(val.as_u64(key)? as usize),
            other => return Err(SpecError::new(format!("unknown topology key '{other}'"))),
        }
    }
    let require = |value: Option<usize>, name: &str| {
        value.ok_or_else(|| SpecError::new(format!("topology kind '{kind}' needs key '{name}'")))
    };
    let forbid = |value: Option<usize>, name: &str| match value {
        Some(_) => Err(SpecError::new(format!(
            "topology key '{name}' does not apply to kind '{kind}'"
        ))),
        None => Ok(()),
    };
    match kind.as_str() {
        "fat-tree2" => {
            forbid(switches, "switches")?;
            forbid(hosts_per_switch, "hosts_per_switch")?;
            Ok(TopologySpec::FatTree2 {
                edges: require(edges, "edges")?,
                cores: require(cores, "cores")?,
                hosts_per_edge: require(hosts_per_edge, "hosts_per_edge")?,
                routing,
                link,
            })
        }
        "butterfly" => {
            forbid(edges, "edges")?;
            forbid(cores, "cores")?;
            forbid(hosts_per_edge, "hosts_per_edge")?;
            Ok(TopologySpec::Butterfly {
                switches: require(switches, "switches")?,
                hosts_per_switch: require(hosts_per_switch, "hosts_per_switch")?,
                routing,
                link,
            })
        }
        other => Err(SpecError::new(format!(
            "unknown topology kind '{other}' (known: fat-tree2, butterfly)"
        ))),
    }
}

/// Parse the optional `link` object of a topology.
fn parse_link(link: &json::Object) -> Result<LinkSpec, SpecError> {
    let mut spec = LinkSpec::default();
    for (key, val) in &link.entries {
        match key.as_str() {
            "latency" => spec.latency = val.as_u64(key)?,
            "gap" => spec.gap = val.as_u64(key)?,
            other => return Err(SpecError::new(format!("unknown link key '{other}'"))),
        }
    }
    Ok(spec)
}

/// Parse the `faults` object of a spec: an `"events"` array of timed
/// events, an optional `"random"` MTBF/MTTR generator block, or both.
fn parse_faults(faults: &json::Object) -> Result<FaultSpec, SpecError> {
    let mut spec = FaultSpec::default();
    for (key, val) in &faults.entries {
        match key.as_str() {
            "events" => {
                for (i, item) in val.as_array(key)?.iter().enumerate() {
                    let event = item.as_object(&format!("faults event #{i}"))?;
                    spec.events.push(
                        parse_fault_event(event).map_err(|e| e.context(format!("event #{i}")))?,
                    );
                }
            }
            "random" => {
                let random = val.as_object(key)?;
                for (rkey, _) in &random.entries {
                    match rkey.as_str() {
                        "mtbf" | "mttr" | "seed" => {}
                        other => {
                            return Err(SpecError::new(format!(
                                "unknown random-fault key '{other}'"
                            )))
                        }
                    }
                }
                spec.random = Some(RandomFaultSpec {
                    mtbf: random.get_u64("mtbf")?,
                    mttr: random.get_u64("mttr")?,
                    seed: match random.maybe("seed") {
                        None => 0,
                        Some(value) => value.as_u64("seed")?,
                    },
                });
            }
            other => return Err(SpecError::new(format!("unknown faults key '{other}'"))),
        }
    }
    Ok(spec)
}

/// Parse one fault event: `{"slot": S, "kind": "link-down", "link": L}` —
/// the index key must match the kind's entity class (`"link"` for link
/// events, `"node"` for node events).
fn parse_fault_event(event: &json::Object) -> Result<FaultEventSpec, SpecError> {
    let kind = FaultKind::from_name(&event.get_str("kind")?)?;
    let (want, wrong) = if kind.is_link() {
        ("link", "node")
    } else {
        ("node", "link")
    };
    for (key, _) in &event.entries {
        match key.as_str() {
            "slot" | "kind" => {}
            k if k == want => {}
            k if k == wrong => {
                return Err(SpecError::new(format!(
                    "fault kind '{}' targets a {want}, not a {wrong}",
                    kind.name()
                )))
            }
            other => return Err(SpecError::new(format!("unknown fault event key '{other}'"))),
        }
    }
    Ok(FaultEventSpec {
        slot: event.get_u64("slot")?,
        kind,
        index: event.get_u64(want)? as usize,
    })
}

/// Escape a string for embedding in a JSON string literal, so
/// [`ScenarioSpec::to_json`] round-trips through [`ScenarioSpec::from_json`]
/// even when the (unvalidated-at-spec-level) scheme name contains quotes,
/// backslashes or control characters.
pub(crate) fn escape_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Error produced when a scenario spec cannot be parsed or resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }

    /// Prefix the error with where it happened (a scheme name, a sweep point,
    /// a spec file path), so grid and suite runners can attribute a failure
    /// to the exact run that produced it.
    #[must_use]
    pub fn context(self, ctx: impl fmt::Display) -> Self {
        SpecError {
            message: format!("{ctx}: {}", self.message),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec error: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// Minimal JSON reader used by [`ScenarioSpec::from_json`].
mod json {
    use super::SpecError;

    // The spec format only needs objects, arrays, numbers and strings;
    // booleans and null are rejected at parse time.  Numbers carry the exact
    // u64 alongside the f64 when the literal is a plain non-negative
    // integer, because seeds and slot counts exceed f64's 2^53 exact-integer
    // range (a round-trip through f64 alone silently corrupts large seeds).
    #[derive(Debug, Clone)]
    pub(super) enum Value {
        Object(Object),
        Array(Vec<Value>),
        Number { value: f64, integer: Option<u64> },
        String(String),
    }

    #[derive(Debug, Clone, Default)]
    pub(super) struct Object {
        pub entries: Vec<(String, Value)>,
    }

    impl Object {
        fn get(&self, key: &str) -> Result<&Value, SpecError> {
            self.maybe(key)
                .ok_or_else(|| SpecError::new(format!("missing key '{key}'")))
        }

        /// The value under `key`, when present (for optional fields).
        pub(super) fn maybe(&self, key: &str) -> Option<&Value> {
            self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        pub(super) fn get_str(&self, key: &str) -> Result<String, SpecError> {
            match self.get(key)? {
                Value::String(s) => Ok(s.clone()),
                other => Err(SpecError::new(format!(
                    "key '{key}' should be a string, got {other:?}"
                ))),
            }
        }

        pub(super) fn get_num(&self, key: &str) -> Result<f64, SpecError> {
            self.get(key)?.as_number(key)
        }

        pub(super) fn get_u64(&self, key: &str) -> Result<u64, SpecError> {
            self.get(key)?.as_u64(key)
        }
    }

    impl Value {
        pub(super) fn as_object(&self, what: &str) -> Result<&Object, SpecError> {
            match self {
                Value::Object(o) => Ok(o),
                other => Err(SpecError::new(format!(
                    "{what} should be an object, got {other:?}"
                ))),
            }
        }

        pub(super) fn as_array(&self, what: &str) -> Result<&[Value], SpecError> {
            match self {
                Value::Array(items) => Ok(items),
                other => Err(SpecError::new(format!(
                    "{what} should be an array, got {other:?}"
                ))),
            }
        }

        pub(super) fn as_number(&self, what: &str) -> Result<f64, SpecError> {
            match self {
                Value::Number { value, .. } => Ok(*value),
                other => Err(SpecError::new(format!(
                    "{what} should be a number, got {other:?}"
                ))),
            }
        }

        /// The exact integer value — unlike [`Self::as_number`] this never
        /// goes through f64, so 64-bit seeds round-trip losslessly.
        pub(super) fn as_u64(&self, what: &str) -> Result<u64, SpecError> {
            match self {
                Value::Number {
                    integer: Some(i), ..
                } => Ok(*i),
                other => Err(SpecError::new(format!(
                    "{what} should be a non-negative integer, got {other:?}"
                ))),
            }
        }
    }

    pub(super) fn parse(text: &str) -> Result<Value, SpecError> {
        let mut p = Parser {
            chars: text.char_indices().peekable(),
            text,
        };
        let v = p.value()?;
        p.skip_ws();
        if let Some((i, c)) = p.chars.peek() {
            return Err(SpecError::new(format!("trailing input at byte {i}: '{c}'")));
        }
        Ok(v)
    }

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::CharIndices<'a>>,
        text: &'a str,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.chars.peek(), Some((_, c)) if c.is_whitespace()) {
                self.chars.next();
            }
        }

        fn expect(&mut self, want: char) -> Result<(), SpecError> {
            self.skip_ws();
            match self.chars.next() {
                Some((_, c)) if c == want => Ok(()),
                Some((i, c)) => Err(SpecError::new(format!(
                    "expected '{want}' at byte {i}, got '{c}'"
                ))),
                None => Err(SpecError::new(format!(
                    "expected '{want}', got end of input"
                ))),
            }
        }

        fn value(&mut self) -> Result<Value, SpecError> {
            self.skip_ws();
            match self.chars.peek().copied() {
                Some((_, '{')) => self.object(),
                Some((_, '[')) => self.array(),
                Some((_, '"')) => Ok(Value::String(self.string()?)),
                Some((_, c)) if c == '-' || c.is_ascii_digit() => self.number(),
                Some((i, c)) => Err(SpecError::new(format!(
                    "unexpected character '{c}' at byte {i}"
                ))),
                None => Err(SpecError::new("unexpected end of input")),
            }
        }

        fn object(&mut self) -> Result<Value, SpecError> {
            self.expect('{')?;
            let mut obj = Object::default();
            self.skip_ws();
            if matches!(self.chars.peek(), Some((_, '}'))) {
                self.chars.next();
                return Ok(Value::Object(obj));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect(':')?;
                let val = self.value()?;
                obj.entries.push((key, val));
                self.skip_ws();
                match self.chars.next() {
                    Some((_, ',')) => continue,
                    Some((_, '}')) => return Ok(Value::Object(obj)),
                    other => {
                        return Err(SpecError::new(format!(
                            "expected ',' or '}}' in object, got {other:?}"
                        )))
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, SpecError> {
            self.expect('[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if matches!(self.chars.peek(), Some((_, ']'))) {
                self.chars.next();
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.chars.next() {
                    Some((_, ',')) => continue,
                    Some((_, ']')) => return Ok(Value::Array(items)),
                    other => {
                        return Err(SpecError::new(format!(
                            "expected ',' or ']' in array, got {other:?}"
                        )))
                    }
                }
            }
        }

        fn string(&mut self) -> Result<String, SpecError> {
            self.expect('"')?;
            let mut out = String::new();
            loop {
                match self.chars.next() {
                    Some((_, '"')) => return Ok(out),
                    Some((_, '\\')) => match self.chars.next() {
                        Some((_, '"')) => out.push('"'),
                        Some((_, '\\')) => out.push('\\'),
                        Some((_, 'n')) => out.push('\n'),
                        Some((_, 't')) => out.push('\t'),
                        Some((_, 'r')) => out.push('\r'),
                        Some((_, '/')) => out.push('/'),
                        Some((_, 'u')) => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let digit = match self.chars.next() {
                                    Some((_, c)) => c.to_digit(16).ok_or_else(|| {
                                        SpecError::new(format!(
                                            "invalid hex digit {c:?} in \\u escape"
                                        ))
                                    })?,
                                    None => return Err(SpecError::new("unterminated \\u escape")),
                                };
                                code = code * 16 + digit;
                            }
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(SpecError::new(format!(
                                        "\\u{code:04x} is not a scalar value (surrogate \
                                         pairs are not supported)"
                                    )))
                                }
                            }
                        }
                        other => {
                            return Err(SpecError::new(format!(
                                "unsupported escape {other:?} in string"
                            )))
                        }
                    },
                    Some((_, c)) => out.push(c),
                    None => return Err(SpecError::new("unterminated string")),
                }
            }
        }

        fn number(&mut self) -> Result<Value, SpecError> {
            let start = match self.chars.peek() {
                Some((i, _)) => *i,
                None => return Err(SpecError::new("unexpected end of input")),
            };
            let mut end = start;
            while let Some((i, c)) = self.chars.peek().copied() {
                if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                    end = i + c.len_utf8();
                    self.chars.next();
                } else {
                    break;
                }
            }
            let literal = &self.text[start..end];
            let value = literal
                .parse::<f64>()
                .map_err(|e| SpecError::new(format!("bad number '{literal}': {e}")))?;
            Ok(Value::Number {
                value,
                // Plain digit strings keep their exact u64 so integer fields
                // (seeds, slot counts) survive values beyond 2^53.
                integer: literal.parse::<u64>().ok(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let spec = ScenarioSpec::new("sprinklers", 16);
        assert_eq!(spec.scheme, "sprinklers");
        assert_eq!(spec.n, 16);
        assert_eq!(spec.sizing, SizingSpec::Matrix);
        assert_eq!(spec.traffic.load(), 0.6);
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let spec = ScenarioSpec::new("foff", 32)
            .with_sizing(SizingSpec::Fixed(4))
            .with_traffic(TrafficSpec::Hotspot {
                load: 0.85,
                hot_fraction: 0.4,
            })
            .with_run(RunConfig {
                slots: 1234,
                warmup_slots: 56,
                drain_slots: 789,
            })
            .with_seed(99);
        let parsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn json_round_trip_escapes_hostile_scheme_names() {
        for scheme in ["a\"b", "back\\slash", "tab\there", "new\nline", "\u{1}"] {
            let spec = ScenarioSpec::new(scheme, 8);
            let parsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(parsed.scheme, scheme);
        }
    }

    #[test]
    fn json_round_trip_covers_all_traffic_patterns() {
        for traffic in [
            TrafficSpec::Uniform { load: 0.5 },
            TrafficSpec::Diagonal { load: 0.9 },
            TrafficSpec::Bursty {
                load: 0.6,
                peak: 1.0,
                mean_burst: 32.0,
            },
            TrafficSpec::Flows {
                load: 0.7,
                mean_flow_len: 20.0,
            },
        ] {
            let spec = ScenarioSpec::new("ufs", 8).with_traffic(traffic);
            assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
        }
    }

    #[test]
    fn batch_round_trips_and_defaults() {
        let spec = ScenarioSpec::new("sprinklers", 8).with_batch(17);
        let parsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed.batch, 17);
        assert_eq!(parsed, spec);
        // Specs written before the batch knob existed parse to the default.
        let legacy = ScenarioSpec::from_json(r#"{"scheme": "oq", "n": 8}"#).unwrap();
        assert_eq!(legacy.batch, crate::engine::DEFAULT_BATCH);
    }

    #[test]
    fn zero_and_fractional_batches_are_rejected() {
        for bad in [
            r#"{"scheme": "oq", "n": 8, "batch": 0}"#,
            r#"{"scheme": "oq", "n": 8, "batch": 1.5}"#,
            r#"{"scheme": "oq", "n": 8, "batch": 4294967296}"#,
        ] {
            assert!(ScenarioSpec::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn threads_round_trips_and_defaults() {
        let spec = ScenarioSpec::new("sprinklers", 8).with_threads(4);
        let parsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed.threads, 4);
        assert_eq!(parsed, spec);
        // Specs written before the threads knob existed parse to the serial
        // default.
        let legacy = ScenarioSpec::from_json(r#"{"scheme": "oq", "n": 8}"#).unwrap();
        assert_eq!(legacy.threads, 1);
    }

    #[test]
    fn zero_and_fractional_thread_counts_are_rejected() {
        for bad in [
            r#"{"scheme": "oq", "n": 8, "threads": 0}"#,
            r#"{"scheme": "oq", "n": 8, "threads": 2.5}"#,
            r#"{"scheme": "oq", "n": 8, "threads": 4294967296}"#,
        ] {
            assert!(ScenarioSpec::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn seeds_beyond_f64_precision_round_trip_exactly() {
        // Found by the spec_roundtrip_prop property suite: the JSON reader
        // used to funnel integers through f64, corrupting seeds > 2^53.
        for seed in [u64::MAX, u64::MAX - 1, (1 << 53) + 1, 16591238828776808448] {
            let spec = ScenarioSpec::new("oq", 8).with_seed(seed);
            let parsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(parsed.seed, seed);
        }
    }

    #[test]
    fn integer_fields_reject_fractional_values() {
        for bad in [
            r#"{"scheme": "oq", "n": 8.5}"#,
            r#"{"scheme": "oq", "n": 8, "seed": 1.25}"#,
            r#"{"scheme": "oq", "n": 8, "run": {"slots":1e3,"warmup_slots":0,"drain_slots":0}}"#,
        ] {
            assert!(ScenarioSpec::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn missing_blocks_fall_back_to_defaults() {
        let spec = ScenarioSpec::from_json(r#"{"scheme": "oq", "n": 8}"#).unwrap();
        assert_eq!(spec, ScenarioSpec::new("oq", 8));
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let err = ScenarioSpec::from_json(r#"{"scheme": "oq", "n": 8, "bogus": 1}"#).unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn malformed_json_reports_an_error() {
        assert!(ScenarioSpec::from_json("{").is_err());
        assert!(ScenarioSpec::from_json(r#"{"scheme": 3, "n": 8}"#).is_err());
        assert!(ScenarioSpec::from_json("").is_err());
    }

    #[test]
    fn with_load_changes_only_the_load() {
        let t = TrafficSpec::Hotspot {
            load: 0.5,
            hot_fraction: 0.3,
        };
        let t2 = t.with_load(0.9);
        assert_eq!(t2.load(), 0.9);
        match t2 {
            TrafficSpec::Hotspot { hot_fraction, .. } => assert_eq!(hot_fraction, 0.3),
            _ => panic!("pattern changed"),
        }
    }

    #[test]
    fn label_is_compact() {
        let spec = ScenarioSpec::new("sprinklers", 32);
        assert_eq!(spec.label(), "sprinklers/n=32/uniform@0.60");
    }

    #[test]
    fn context_prefixes_the_error_message() {
        let err = SpecError::new("boom").context("file x.json");
        assert_eq!(err.to_string(), "scenario spec error: file x.json: boom");
    }

    #[test]
    fn suite_expand_without_overrides_is_the_base_spec() {
        let base = ScenarioSpec::new("oq", 8);
        let cases = SuiteSpec::new("unused").expand("case", &base);
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].name, "case");
        assert_eq!(cases[0].spec, base);
    }

    #[test]
    fn suite_expand_crosses_schemes_and_loads_deterministically() {
        let base = ScenarioSpec::new("oq", 8);
        let suite = SuiteSpec::new("unused")
            .with_schemes(vec!["sprinklers".into(), "foff".into()])
            .with_loads(vec![0.3, 0.9]);
        let cases = suite.expand("base", &base);
        assert_eq!(cases.len(), 4);
        let names: Vec<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "base+sprinklers@0.3",
                "base+sprinklers@0.9",
                "base+foff@0.3",
                "base+foff@0.9",
            ]
        );
        assert_eq!(cases[0].spec.scheme, "sprinklers");
        assert_eq!(cases[3].spec.scheme, "foff");
        assert_eq!(cases[3].spec.traffic.load(), 0.9);
        // Everything not overridden is inherited from the base spec.
        assert!(cases.iter().all(|c| c.spec.n == 8 && c.spec.seed == 1));
    }

    #[test]
    fn suite_batch_override_reaches_every_case_but_not_the_names() {
        let base = ScenarioSpec::new("oq", 8);
        let suite = SuiteSpec::new("unused")
            .with_schemes(vec!["sprinklers".into(), "foff".into()])
            .with_batch(5);
        let cases = suite.expand("base", &base);
        assert!(cases.iter().all(|c| c.spec.batch == 5));
        // Batch is a perf knob, not part of the case identity: names must be
        // stable so batch-parity runs can `cmp` their CSVs.
        let without = SuiteSpec::new("unused")
            .with_schemes(vec!["sprinklers".into(), "foff".into()])
            .expand("base", &base);
        let names = |cs: &[SuiteCase]| cs.iter().map(|c| c.name.clone()).collect::<Vec<_>>();
        assert_eq!(names(&cases), names(&without));
    }

    #[test]
    fn suite_threads_override_reaches_every_case_but_not_the_names() {
        let base = ScenarioSpec::new("oq", 8);
        let suite = SuiteSpec::new("unused")
            .with_schemes(vec!["sprinklers".into(), "foff".into()])
            .with_threads(4);
        let cases = suite.expand("base", &base);
        assert!(cases.iter().all(|c| c.spec.threads == 4));
        // Like batch, threads is a perf knob, not part of the case identity:
        // names must be stable so thread-parity runs can `cmp` their CSVs.
        let without = SuiteSpec::new("unused")
            .with_schemes(vec!["sprinklers".into(), "foff".into()])
            .expand("base", &base);
        let names = |cs: &[SuiteCase]| cs.iter().map(|c| c.name.clone()).collect::<Vec<_>>();
        assert_eq!(names(&cases), names(&without));
    }

    #[test]
    fn suite_case_names_distinguish_nearby_loads() {
        // Labels must never round loads: distinct override values need
        // distinct case names or merged CSV rows become unattributable.
        let base = ScenarioSpec::new("oq", 8);
        let suite = SuiteSpec::new("unused").with_loads(vec![0.301, 0.299]);
        let cases = suite.expand("x", &base);
        assert_eq!(cases[0].name, "x@0.301");
        assert_eq!(cases[1].name, "x@0.299");
        let unique: std::collections::HashSet<&str> =
            cases.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(unique.len(), cases.len());
    }

    #[test]
    fn suite_loads_a_directory_sorted_by_file_name() {
        let dir = std::env::temp_dir().join(format!("sprinklers-suite-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("b_second.json"),
            ScenarioSpec::new("foff", 8).to_json(),
        )
        .unwrap();
        std::fs::write(
            dir.join("a_first.json"),
            ScenarioSpec::new("oq", 8).to_json(),
        )
        .unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a spec").unwrap();

        let cases = SuiteSpec::new(&dir).load_cases().unwrap();
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].name, "a_first");
        assert_eq!(cases[0].spec.scheme, "oq");
        assert_eq!(cases[1].name, "b_second");

        // A malformed member file fails with the file path in the message.
        std::fs::write(dir.join("c_bad.json"), "{ nope").unwrap();
        let err = SuiteSpec::new(&dir).load_cases().unwrap_err().to_string();
        assert!(err.contains("c_bad.json"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_hostile_spec_file_names_are_rejected_at_load_time() {
        // Regression: a stem like `evil,0.9` used to flow straight into the
        // merged CSV's `case` column, silently shifting every later column
        // of that row.  Now it is a typed load-time error.
        let dir = std::env::temp_dir().join(format!("sprinklers-inject-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ok.json"), ScenarioSpec::new("oq", 8).to_json()).unwrap();
        std::fs::write(
            dir.join("evil,case.json"),
            ScenarioSpec::new("oq", 8).to_json(),
        )
        .unwrap();
        let err = SuiteSpec::new(&dir).load_cases().unwrap_err().to_string();
        assert!(err.contains("comma or newline"), "{err}");
        assert!(err.contains("evil,case"), "{err}");

        // A newline in the file name is just as hostile: it would inject a
        // whole extra CSV row.
        std::fs::remove_file(dir.join("evil,case.json")).unwrap();
        std::fs::write(
            dir.join("evil\nrow.json"),
            ScenarioSpec::new("oq", 8).to_json(),
        )
        .unwrap();
        let err = SuiteSpec::new(&dir).load_cases().unwrap_err().to_string();
        assert!(err.contains("comma or newline"), "{err}");

        // Clean stems still load fine once the hostile file is gone.
        std::fs::remove_file(dir.join("evil\nrow.json")).unwrap();
        assert_eq!(SuiteSpec::new(&dir).load_cases().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn fat_tree(routing: RoutingSpec) -> TopologySpec {
        TopologySpec::FatTree2 {
            edges: 2,
            cores: 4,
            hosts_per_edge: 8,
            routing,
            link: LinkSpec { latency: 2, gap: 1 },
        }
    }

    #[test]
    fn topology_specs_round_trip_through_json() {
        for topo in [
            fat_tree(RoutingSpec::EcmpHash),
            fat_tree(RoutingSpec::RandomPacket),
            fat_tree(RoutingSpec::Stripe),
            TopologySpec::Butterfly {
                switches: 4,
                hosts_per_switch: 4,
                routing: RoutingSpec::Stripe,
                link: LinkSpec::default(),
            },
        ] {
            let spec = ScenarioSpec::new("oq", topo.hosts()).with_topology(topo);
            let parsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(parsed, spec, "json was: {}", spec.to_json());
        }
    }

    #[test]
    fn topology_free_specs_emit_the_exact_legacy_json() {
        // The topology line is only emitted when present, so single-switch
        // specs keep their historical bytes — and therefore their
        // content-addressed cache keys.
        let spec = ScenarioSpec::new("oq", 8);
        assert!(!spec.to_json().contains("topology"));
        assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
    }

    #[test]
    fn topology_json_defaults_routing_and_link() {
        let spec = ScenarioSpec::from_json(
            r#"{"scheme": "oq", "n": 4,
                "topology": {"kind": "fat-tree2", "edges": 2, "cores": 2, "hosts_per_edge": 2}}"#,
        )
        .unwrap();
        let topo = spec.topology.unwrap();
        assert_eq!(topo.routing(), RoutingSpec::EcmpHash);
        assert_eq!(topo.link(), LinkSpec { latency: 1, gap: 1 });
    }

    #[test]
    fn malformed_topology_json_is_rejected() {
        for bad in [
            // Unknown kind.
            r#"{"scheme": "oq", "n": 4, "topology": {"kind": "torus", "edges": 2}}"#,
            // Missing a dimension.
            r#"{"scheme": "oq", "n": 4, "topology": {"kind": "fat-tree2", "edges": 2, "cores": 2}}"#,
            // Dimension from the other kind.
            r#"{"scheme": "oq", "n": 4,
                "topology": {"kind": "butterfly", "switches": 2, "hosts_per_switch": 2, "edges": 2}}"#,
            // Unknown topology key.
            r#"{"scheme": "oq", "n": 4,
                "topology": {"kind": "fat-tree2", "edges": 2, "cores": 2, "hosts_per_edge": 2, "bogus": 1}}"#,
            // Unknown routing strategy.
            r#"{"scheme": "oq", "n": 4,
                "topology": {"kind": "fat-tree2", "edges": 2, "cores": 2, "hosts_per_edge": 2, "routing": "lava"}}"#,
            // Unknown link key.
            r#"{"scheme": "oq", "n": 4,
                "topology": {"kind": "fat-tree2", "edges": 2, "cores": 2, "hosts_per_edge": 2, "link": {"mtu": 9000}}}"#,
        ] {
            assert!(ScenarioSpec::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn topology_validation_rejects_degenerate_shapes() {
        let ok = fat_tree(RoutingSpec::EcmpHash);
        assert!(ok.validate(16).is_ok());
        // Host-count mismatch with the owning spec's n.
        assert!(ok.validate(8).is_err());
        // One edge switch would make 1-port core switches.
        let one_edge = TopologySpec::FatTree2 {
            edges: 1,
            cores: 2,
            hosts_per_edge: 4,
            routing: RoutingSpec::EcmpHash,
            link: LinkSpec::default(),
        };
        assert!(one_edge.validate(4).is_err());
        // Zero-latency links are meaningless in slotted time.
        let zero_latency = TopologySpec::FatTree2 {
            edges: 2,
            cores: 2,
            hosts_per_edge: 2,
            routing: RoutingSpec::EcmpHash,
            link: LinkSpec { latency: 0, gap: 1 },
        };
        assert!(zero_latency.validate(4).is_err());
        let zero_gap = TopologySpec::Butterfly {
            switches: 2,
            hosts_per_switch: 2,
            routing: RoutingSpec::EcmpHash,
            link: LinkSpec { latency: 1, gap: 0 },
        };
        assert!(zero_gap.validate(4).is_err());
        let tiny_mesh = TopologySpec::Butterfly {
            switches: 1,
            hosts_per_switch: 4,
            routing: RoutingSpec::EcmpHash,
            link: LinkSpec::default(),
        };
        assert!(tiny_mesh.validate(4).is_err());
    }

    #[test]
    fn topology_label_carries_the_kind() {
        let spec = ScenarioSpec::new("oq", 16).with_topology(fat_tree(RoutingSpec::Stripe));
        assert_eq!(spec.label(), "oq/n=16/uniform@0.60/fat-tree2");
    }

    #[test]
    fn suite_loads_subdirectories_recursively() {
        let dir = std::env::temp_dir().join(format!("sprinklers-rec-{}", std::process::id()));
        let sub = dir.join("nested/deeper");
        std::fs::create_dir_all(&sub).unwrap();
        std::fs::write(dir.join("b_top.json"), ScenarioSpec::new("oq", 8).to_json()).unwrap();
        std::fs::write(
            sub.join("a_deep.json"),
            ScenarioSpec::new("foff", 8).to_json(),
        )
        .unwrap();

        let cases = SuiteSpec::new(&dir).load_cases().unwrap();
        assert_eq!(cases.len(), 2);
        // Sorted by full path: "b_top.json" < "nested/...", so the
        // top-level file still comes first even though its stem sorts later.
        assert_eq!(cases[0].name, "b_top");
        assert_eq!(cases[1].name, "a_deep");
        assert_eq!(cases[1].spec.scheme, "foff");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn suite_rejects_duplicate_stems_across_subdirectories() {
        // Regression: two spec files with the same stem in different
        // subdirectories used to share one merged-CSV case label, making
        // their rows unattributable.  Now it is a typed load-time error
        // naming both paths.
        let dir = std::env::temp_dir().join(format!("sprinklers-dup-{}", std::process::id()));
        let sub = dir.join("variant");
        std::fs::create_dir_all(&sub).unwrap();
        std::fs::write(dir.join("case.json"), ScenarioSpec::new("oq", 8).to_json()).unwrap();
        std::fs::write(
            sub.join("case.json"),
            ScenarioSpec::new("foff", 8).to_json(),
        )
        .unwrap();

        let err = SuiteSpec::new(&dir).load_cases().unwrap_err().to_string();
        assert!(err.contains("duplicate spec file stem 'case'"), "{err}");
        assert!(err.contains("variant"), "both paths should be named: {err}");

        // Renaming one of them resolves the collision.
        std::fs::rename(sub.join("case.json"), sub.join("case_variant.json")).unwrap();
        let cases = SuiteSpec::new(&dir).load_cases().unwrap();
        assert_eq!(cases.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_specs_round_trip_through_json() {
        use crate::traffic::trace_io::TraceFormat;
        for traffic in [
            TrafficSpec::trace("traces/capture.sprt"),
            TrafficSpec::Trace {
                path: "with \"quotes\"\\and\\slashes.csv".into(),
                format: Some(TraceFormat::Csv),
                repeat: 7,
                scale: 1.75,
            },
            TrafficSpec::Trace {
                path: "/abs/path.sprt".into(),
                format: Some(TraceFormat::Sprt),
                repeat: 1,
                scale: 0.25,
            },
        ] {
            let spec = ScenarioSpec::new("foff", 8).with_traffic(traffic);
            let parsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(parsed, spec, "json was: {}", spec.to_json());
        }
    }

    #[test]
    fn trace_json_accepts_the_kind_key_with_defaults() {
        let spec = ScenarioSpec::from_json(
            r#"{"scheme": "oq", "n": 8,
                "traffic": {"kind": "trace", "path": "t.sprt"}}"#,
        )
        .unwrap();
        assert_eq!(spec.traffic, TrafficSpec::trace("t.sprt"));
        assert_eq!(spec.traffic.load(), 1.0);
    }

    #[test]
    fn malformed_trace_traffic_json_is_rejected() {
        for bad in [
            // Missing path.
            r#"{"scheme": "oq", "n": 8, "traffic": {"kind": "trace"}}"#,
            // Unknown kind.
            r#"{"scheme": "oq", "n": 8, "traffic": {"kind": "pcap", "path": "t"}}"#,
            // Neither pattern nor kind.
            r#"{"scheme": "oq", "n": 8, "traffic": {"path": "t.sprt"}}"#,
            // Unknown format.
            r#"{"scheme": "oq", "n": 8, "traffic": {"kind": "trace", "path": "t", "format": "pcap"}}"#,
            // Repeat out of range.
            r#"{"scheme": "oq", "n": 8, "traffic": {"kind": "trace", "path": "t", "repeat": 0}}"#,
            r#"{"scheme": "oq", "n": 8, "traffic": {"kind": "trace", "path": "t", "repeat": 1000000}}"#,
            // Scale must be positive.
            r#"{"scheme": "oq", "n": 8, "traffic": {"kind": "trace", "path": "t", "scale": 0}}"#,
            r#"{"scheme": "oq", "n": 8, "traffic": {"kind": "trace", "path": "t", "scale": -2}}"#,
        ] {
            assert!(ScenarioSpec::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn trace_load_knob_is_the_scale() {
        let t = TrafficSpec::trace("t.sprt").with_load(1.5);
        assert_eq!(t.load(), 1.5);
        match t {
            TrafficSpec::Trace { scale, repeat, .. } => {
                assert_eq!(scale, 1.5);
                assert_eq!(repeat, 1);
            }
            _ => panic!("pattern changed"),
        }
    }

    #[test]
    fn rebase_resolves_relative_trace_paths_only() {
        let mut spec = ScenarioSpec::new("oq", 8).with_traffic(TrafficSpec::trace("traces/t.sprt"));
        spec.rebase_paths(Path::new("/specs/smoke"));
        match &spec.traffic {
            TrafficSpec::Trace { path, .. } => {
                assert_eq!(path, "/specs/smoke/traces/t.sprt")
            }
            _ => panic!("pattern changed"),
        }
        // Absolute paths and synthetic patterns are untouched.
        let mut abs = ScenarioSpec::new("oq", 8).with_traffic(TrafficSpec::trace("/t.sprt"));
        abs.rebase_paths(Path::new("/specs/smoke"));
        assert_eq!(abs.traffic, TrafficSpec::trace("/t.sprt"));
        let mut synth = ScenarioSpec::new("oq", 8);
        synth.rebase_paths(Path::new("/specs/smoke"));
        assert_eq!(synth.traffic, TrafficSpec::Uniform { load: 0.6 });
    }

    #[test]
    fn build_traffic_uses_the_engine_seed_derivation() {
        // The recorded-trace pipeline relies on record and replay agreeing
        // on how the generator is seeded; pin the derivation.
        let spec = ScenarioSpec::new("oq", 8).with_seed(41);
        assert_eq!(spec.traffic_seed(), 42);
        let mut a = spec.build_traffic().unwrap();
        let mut b = spec.traffic.build(spec.n, 42).unwrap();
        for slot in 0..64 {
            assert_eq!(a.arrivals(slot).len(), b.arrivals(slot).len());
        }
    }

    #[test]
    fn suite_rejects_missing_and_empty_directories() {
        let missing = SuiteSpec::new("/nonexistent/sprinklers-suite");
        assert!(missing.load_cases().is_err());

        let dir = std::env::temp_dir().join(format!("sprinklers-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = SuiteSpec::new(&dir).load_cases().unwrap_err().to_string();
        assert!(err.contains("no *.json"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn event(slot: u64, kind: FaultKind, index: usize) -> FaultEventSpec {
        FaultEventSpec { slot, kind, index }
    }

    fn faulted_spec(faults: FaultSpec) -> ScenarioSpec {
        ScenarioSpec::new("oq", 16)
            .with_topology(fat_tree(RoutingSpec::Stripe))
            .with_faults(faults)
    }

    #[test]
    fn fault_specs_round_trip_through_json() {
        let faults = FaultSpec {
            events: vec![
                event(100, FaultKind::LinkDown, 3),
                event(200, FaultKind::LinkUp, 3),
                event(150, FaultKind::NodeDown, 5),
                event(400, FaultKind::NodeUp, 5),
            ],
            random: Some(RandomFaultSpec {
                mtbf: 5_000,
                mttr: 300,
                seed: u64::MAX, // exercises the exact-u64 path
            }),
        };
        let spec = faulted_spec(faults);
        let parsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec, "json was: {}", spec.to_json());

        // Events-only and random-only forms round-trip too.
        let events_only = faulted_spec(FaultSpec {
            events: vec![event(1, FaultKind::LinkDown, 0)],
            random: None,
        });
        assert_eq!(
            ScenarioSpec::from_json(&events_only.to_json()).unwrap(),
            events_only
        );
        let random_only = faulted_spec(FaultSpec {
            events: vec![],
            random: Some(RandomFaultSpec {
                mtbf: 10,
                mttr: 2,
                seed: 0,
            }),
        });
        assert_eq!(
            ScenarioSpec::from_json(&random_only.to_json()).unwrap(),
            random_only
        );
    }

    #[test]
    fn fault_free_specs_emit_the_exact_legacy_json() {
        // Like the topology line, the faults line is only emitted when
        // present, so pre-fault spec files keep their historical bytes and
        // their content-addressed cache keys.
        let spec = ScenarioSpec::new("oq", 16).with_topology(fat_tree(RoutingSpec::Stripe));
        assert!(!spec.to_json().contains("faults"));
        assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
    }

    #[test]
    fn fault_validation_rejects_degenerate_schedules() {
        let topo = fat_tree(RoutingSpec::Stripe); // 16 links, 6 nodes
        let run = RunConfig {
            slots: 1_000,
            warmup_slots: 100,
            drain_slots: 500,
        };
        let check = |faults: FaultSpec| faults.validate(&topo, &run);

        // A clean schedule passes.
        assert!(check(FaultSpec {
            events: vec![
                event(10, FaultKind::LinkDown, 0),
                event(20, FaultKind::LinkUp, 0),
                event(30, FaultKind::NodeDown, 5),
            ],
            random: Some(RandomFaultSpec {
                mtbf: 100,
                mttr: 10,
                seed: 1
            }),
        })
        .is_ok());

        // Nonexistent link.
        let err = check(FaultSpec {
            events: vec![event(10, FaultKind::LinkDown, 16)],
            random: None,
        })
        .unwrap_err()
        .to_string();
        assert!(err.contains("only 16 links"), "{err}");

        // Nonexistent node.
        let err = check(FaultSpec {
            events: vec![event(10, FaultKind::NodeDown, 6)],
            random: None,
        })
        .unwrap_err()
        .to_string();
        assert!(err.contains("only 6 nodes"), "{err}");

        // Event at the run end (slots + drain_slots = 1500).
        let err = check(FaultSpec {
            events: vec![event(1_500, FaultKind::LinkDown, 0)],
            random: None,
        })
        .unwrap_err()
        .to_string();
        assert!(err.contains("run end"), "{err}");

        // Duplicate events for one entity at one slot.
        let err = check(FaultSpec {
            events: vec![
                event(10, FaultKind::LinkDown, 2),
                event(10, FaultKind::LinkUp, 2),
            ],
            random: None,
        })
        .unwrap_err()
        .to_string();
        assert!(err.contains("duplicate fault events"), "{err}");

        // Up with no prior down.
        let err = check(FaultSpec {
            events: vec![event(10, FaultKind::LinkUp, 0)],
            random: None,
        })
        .unwrap_err()
        .to_string();
        assert!(err.contains("no prior 'link-down'"), "{err}");
        let err = check(FaultSpec {
            events: vec![event(10, FaultKind::NodeUp, 0)],
            random: None,
        })
        .unwrap_err()
        .to_string();
        assert!(err.contains("no prior 'node-down'"), "{err}");

        // Down repeated without an intervening up.
        let err = check(FaultSpec {
            events: vec![
                event(10, FaultKind::LinkDown, 0),
                event(20, FaultKind::LinkDown, 0),
            ],
            random: None,
        })
        .unwrap_err()
        .to_string();
        assert!(err.contains("must alternate"), "{err}");

        // Zero MTBF / MTTR.
        for (mtbf, mttr) in [(0, 10), (10, 0)] {
            let err = check(FaultSpec {
                events: vec![],
                random: Some(RandomFaultSpec {
                    mtbf,
                    mttr,
                    seed: 0,
                }),
            })
            .unwrap_err()
            .to_string();
            assert!(err.contains("at least 1 slot"), "{err}");
        }

        // The same entity index in the other space is fine: link 0 and
        // node 0 are different entities.
        assert!(check(FaultSpec {
            events: vec![
                event(10, FaultKind::LinkDown, 0),
                event(10, FaultKind::NodeDown, 0),
            ],
            random: None,
        })
        .is_ok());
    }

    #[test]
    fn link_spec_bounds_reject_overflowing_latency_and_gap() {
        // Arrival-slot arithmetic adds latency (and gap backlog) to absolute
        // slot numbers; values near u64::MAX would overflow, so they are
        // typed errors at validation time.
        let huge_latency = TopologySpec::FatTree2 {
            edges: 2,
            cores: 2,
            hosts_per_edge: 2,
            routing: RoutingSpec::EcmpHash,
            link: LinkSpec {
                latency: u64::MAX,
                gap: 1,
            },
        };
        let err = huge_latency.validate(4).unwrap_err().to_string();
        assert!(err.contains("latency"), "{err}");
        let huge_gap = TopologySpec::FatTree2 {
            edges: 2,
            cores: 2,
            hosts_per_edge: 2,
            routing: RoutingSpec::EcmpHash,
            link: LinkSpec {
                latency: 1,
                gap: LinkSpec::MAX_LINK_SLOTS + 1,
            },
        };
        let err = huge_gap.validate(4).unwrap_err().to_string();
        assert!(err.contains("gap"), "{err}");
        // The bound itself is inclusive-safe.
        let at_bound = TopologySpec::FatTree2 {
            edges: 2,
            cores: 2,
            hosts_per_edge: 2,
            routing: RoutingSpec::EcmpHash,
            link: LinkSpec {
                latency: LinkSpec::MAX_LINK_SLOTS,
                gap: 1,
            },
        };
        assert!(at_bound.validate(4).is_ok());
    }

    #[test]
    fn malformed_fault_json_is_rejected() {
        for bad in [
            // Link event targeting a node.
            r#"{"scheme": "oq", "n": 4, "faults": {"events": [{"slot": 1, "kind": "link-down", "node": 0}]}}"#,
            // Node event targeting a link.
            r#"{"scheme": "oq", "n": 4, "faults": {"events": [{"slot": 1, "kind": "node-down", "link": 0}]}}"#,
            // Unknown kind.
            r#"{"scheme": "oq", "n": 4, "faults": {"events": [{"slot": 1, "kind": "cable-cut", "link": 0}]}}"#,
            // Unknown event key.
            r#"{"scheme": "oq", "n": 4, "faults": {"events": [{"slot": 1, "kind": "link-down", "link": 0, "x": 1}]}}"#,
            // Unknown faults key.
            r#"{"scheme": "oq", "n": 4, "faults": {"evnts": []}}"#,
            // Events must be an array.
            r#"{"scheme": "oq", "n": 4, "faults": {"events": {"slot": 1}}}"#,
            // Random block missing mttr.
            r#"{"scheme": "oq", "n": 4, "faults": {"random": {"mtbf": 100}}}"#,
            // Unknown random key.
            r#"{"scheme": "oq", "n": 4, "faults": {"random": {"mtbf": 100, "mttr": 10, "jitter": 3}}}"#,
        ] {
            assert!(ScenarioSpec::from_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
