//! Stripes: the unit of scheduling in a Sprinklers switch.
//!
//! Packets of a VOQ are grouped, in arrival order, into *stripes* of exactly
//! `2^k` packets, where `2^k` is the VOQ's current stripe size.  The stripe is
//! switched through the VOQ's dyadic stripe interval: the packet at offset `o`
//! goes through intermediate port `interval.start() + o`.  A stripe is the
//! atomic unit of service at both the input and the intermediate stage: the
//! servicing of two stripes never interleaves, which — combined with FCFS
//! order of stripes within a VOQ — is what rules out packet reordering.

use crate::dyadic::DyadicInterval;
use crate::packet::Packet;
use serde::{Deserialize, Serialize};

/// A full stripe of packets from one VOQ, ready to be scheduled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stripe {
    /// The dyadic interval of intermediate ports the stripe is spread over.
    pub interval: DyadicInterval,
    /// Input port of the originating VOQ.
    pub input: usize,
    /// Output port of the originating VOQ.
    pub output: usize,
    /// Monotonically increasing stripe sequence number within the VOQ.
    pub stripe_seq: u64,
    /// The packets, in VOQ arrival order; `packets[o]` traverses intermediate
    /// port `interval.start() + o`.
    pub packets: Vec<Packet>,
}

impl Stripe {
    /// Assemble a stripe from packets of a VOQ.
    ///
    /// Stamps each packet's `stripe_size`, `stripe_index` and `intermediate`
    /// routing fields.
    ///
    /// # Panics
    ///
    /// Panics if the number of packets does not equal the interval size.
    pub fn assemble(
        interval: DyadicInterval,
        input: usize,
        output: usize,
        stripe_seq: u64,
        mut packets: Vec<Packet>,
    ) -> Self {
        assert_eq!(
            packets.len(),
            interval.size(),
            "a stripe must contain exactly interval.size() packets"
        );
        for (offset, p) in packets.iter_mut().enumerate() {
            p.set_stripe_size(interval.size());
            p.set_stripe_index(offset);
            p.set_intermediate(interval.start() + offset);
        }
        Stripe {
            interval,
            input,
            output,
            stripe_seq,
            packets,
        }
    }

    /// Number of packets in the stripe (equals the interval size).
    pub fn size(&self) -> usize {
        self.packets.len()
    }

    /// The stripe's level, `log₂(size)`.
    pub fn level(&self) -> usize {
        self.interval.level()
    }

    /// The intermediate port traversed by the packet at `offset`.
    pub fn port_of_offset(&self, offset: usize) -> usize {
        self.interval.start() + offset
    }

    /// Number of real (non-padding) packets in the stripe.
    pub fn data_packets(&self) -> usize {
        self.packets.iter().filter(|p| !p.is_padding()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_packets(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet::new(2, 5, i as u64, 10).with_voq_seq(i as u64))
            .collect()
    }

    #[test]
    fn assemble_stamps_routing_fields() {
        let interval = DyadicInterval::new(8, 4);
        let s = Stripe::assemble(interval, 2, 5, 7, mk_packets(4));
        assert_eq!(s.size(), 4);
        assert_eq!(s.level(), 2);
        for (o, p) in s.packets.iter().enumerate() {
            assert_eq!(p.stripe_size(), 4);
            assert_eq!(p.stripe_index(), o);
            assert_eq!(p.intermediate(), 8 + o);
            assert_eq!(s.port_of_offset(o), 8 + o);
        }
    }

    #[test]
    #[should_panic]
    fn assemble_rejects_wrong_packet_count() {
        let interval = DyadicInterval::new(8, 4);
        let _ = Stripe::assemble(interval, 2, 5, 0, mk_packets(3));
    }

    #[test]
    fn data_packets_excludes_padding() {
        let interval = DyadicInterval::new(0, 2);
        let packets = vec![Packet::new(0, 1, 0, 0), Packet::padding(0, 1, 0)];
        let s = Stripe::assemble(interval, 0, 1, 0, packets);
        assert_eq!(s.data_packets(), 1);
    }

    #[test]
    fn unit_stripe_is_valid() {
        let interval = DyadicInterval::new(5, 1);
        let s = Stripe::assemble(interval, 0, 0, 3, mk_packets(1));
        assert_eq!(s.size(), 1);
        assert_eq!(s.level(), 0);
        assert_eq!(s.port_of_offset(0), 5);
    }
}
