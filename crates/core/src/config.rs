//! Configuration of a Sprinklers switch.

use crate::error::SwitchError;
use crate::matrix::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// How each VOQ's stripe size is determined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SizingMode {
    /// Derive stripe sizes from a known traffic matrix using the paper's rule
    /// `F(r) = min(N, 2^⌈log₂(r·N²)⌉)` (Eq. (1)).  This matches the assumption
    /// of the stability analysis (§4) and is the mode used for the paper's
    /// delay simulations, where the traffic matrix is known.
    FromMatrix(TrafficMatrix),
    /// Measure each VOQ's rate online and adapt the stripe size, with
    /// hysteresis and a clearance (drain) phase before a size change takes
    /// effect (§3.3.2, §5).
    Adaptive(AdaptiveSizing),
    /// Use the same fixed stripe size for every VOQ (must be a power of two).
    /// Useful for ablations: size 1 degenerates to per-VOQ single-path
    /// routing, size N degenerates to frame-based uniform spreading.
    FixedSize(usize),
}

/// Parameters of the adaptive (measured-rate) sizing mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSizing {
    /// Measurement window in slots.
    pub window: u64,
    /// EWMA weight of the newest window, in `(0, 1]`.
    pub gamma: f64,
    /// Number of consecutive disagreeing windows required before a stripe-size
    /// change is committed (thrash damping, §3.3.2).
    pub patience: u32,
    /// Stripe size used before the first measurement window completes.
    pub initial_size: usize,
}

impl Default for AdaptiveSizing {
    fn default() -> Self {
        AdaptiveSizing {
            window: 2048,
            gamma: 0.5,
            patience: 2,
            initial_size: 1,
        }
    }
}

/// Stripe scheduling discipline used at the input ports.
///
/// Both are Largest-Stripe-First policies; they differ in how literally they
/// follow the paper's Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputDiscipline {
    /// Algorithm 1 of the paper, taken literally: a stripe may only *start*
    /// service in the slot in which the input port is connected to the first
    /// intermediate port of the stripe's interval, and once started it is
    /// served to completion in consecutive slots.  This guarantees that every
    /// stripe departs the input port in one contiguous burst.
    StripeAtomic,
    /// The simplified implementation of §3.4.2: at every slot, scan the
    /// connected row of the FIFO grid from the largest stripe-size column to
    /// the smallest and serve the head of the first non-empty queue.  This is
    /// strictly work-conserving (never idles while a queued packet wants the
    /// connected intermediate port).
    RowScan,
}

/// When packets received by an intermediate port become eligible for the
/// second switching fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlignmentMode {
    /// A packet is eligible in the slot after it arrives (plain store-and-forward).
    Immediate,
    /// A packet becomes eligible only once its entire stripe has reached the
    /// intermediate stage, at the next frame boundary.  Every intermediate
    /// port can compute this locally from the stripe size carried in the
    /// packet header, so no extra coordination is needed.  This is a stricter
    /// alignment that trades a little delay for extra robustness of the
    /// no-reordering guarantee; it is benchmarked as an ablation.
    StripeComplete,
}

/// Full configuration of a Sprinklers switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SprinklersConfig {
    /// Number of ports N (must be a power of two, at least 2).
    pub n: usize,
    /// Stripe sizing mode.
    pub sizing: SizingMode,
    /// Input-port scheduling discipline.
    pub input_discipline: InputDiscipline,
    /// Intermediate-port eligibility rule.
    pub alignment: AlignmentMode,
}

impl SprinklersConfig {
    /// A default configuration for an `n`-port switch: adaptive sizing,
    /// stripe-atomic input scheduling, immediate intermediate eligibility.
    pub fn new(n: usize) -> Self {
        SprinklersConfig {
            n,
            sizing: SizingMode::Adaptive(AdaptiveSizing::default()),
            input_discipline: InputDiscipline::StripeAtomic,
            alignment: AlignmentMode::Immediate,
        }
    }

    /// Set the sizing mode.
    #[must_use]
    pub fn with_sizing(mut self, sizing: SizingMode) -> Self {
        self.sizing = sizing;
        self
    }

    /// Set the input-port scheduling discipline.
    #[must_use]
    pub fn with_input_discipline(mut self, d: InputDiscipline) -> Self {
        self.input_discipline = d;
        self
    }

    /// Set the intermediate-port alignment mode.
    #[must_use]
    pub fn with_alignment(mut self, a: AlignmentMode) -> Self {
        self.alignment = a;
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), SwitchError> {
        if self.n < 2 {
            return Err(SwitchError::PortCountTooSmall { n: self.n });
        }
        if !self.n.is_power_of_two() {
            return Err(SwitchError::PortCountNotPowerOfTwo { n: self.n });
        }
        if self.n > crate::packet::MAX_PORTS {
            return Err(SwitchError::PortCountTooLarge {
                n: self.n,
                max: crate::packet::MAX_PORTS,
            });
        }
        match &self.sizing {
            SizingMode::FromMatrix(m) => {
                if m.n() != self.n {
                    return Err(SwitchError::MatrixDimensionMismatch {
                        got: m.n(),
                        expected: self.n,
                    });
                }
                for (_, _, r) in m.iter_nonzero() {
                    if !r.is_finite() || r < 0.0 {
                        return Err(SwitchError::InvalidRate { rate: r });
                    }
                }
            }
            SizingMode::FixedSize(s) => {
                if !s.is_power_of_two() || *s > self.n {
                    return Err(SwitchError::PortCountNotPowerOfTwo { n: *s });
                }
            }
            SizingMode::Adaptive(a) => {
                if a.window == 0 || !(a.gamma > 0.0 && a.gamma <= 1.0) {
                    return Err(SwitchError::InvalidRate { rate: a.gamma });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SprinklersConfig::new(32).validate().is_ok());
    }

    #[test]
    fn non_power_of_two_is_rejected() {
        assert!(matches!(
            SprinklersConfig::new(12).validate(),
            Err(SwitchError::PortCountNotPowerOfTwo { n: 12 })
        ));
    }

    #[test]
    fn too_small_switch_is_rejected() {
        assert!(matches!(
            SprinklersConfig::new(1).validate(),
            Err(SwitchError::PortCountTooSmall { n: 1 })
        ));
    }

    #[test]
    fn matrix_dimension_must_match() {
        let cfg = SprinklersConfig::new(8)
            .with_sizing(SizingMode::FromMatrix(TrafficMatrix::uniform(16, 0.5)));
        assert!(matches!(
            cfg.validate(),
            Err(SwitchError::MatrixDimensionMismatch {
                got: 16,
                expected: 8
            })
        ));
    }

    #[test]
    fn fixed_size_must_be_power_of_two_within_n() {
        let cfg = SprinklersConfig::new(8).with_sizing(SizingMode::FixedSize(3));
        assert!(cfg.validate().is_err());
        let cfg = SprinklersConfig::new(8).with_sizing(SizingMode::FixedSize(16));
        assert!(cfg.validate().is_err());
        let cfg = SprinklersConfig::new(8).with_sizing(SizingMode::FixedSize(4));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn adaptive_parameters_are_validated() {
        let cfg = SprinklersConfig::new(8).with_sizing(SizingMode::Adaptive(AdaptiveSizing {
            window: 0,
            ..Default::default()
        }));
        assert!(cfg.validate().is_err());
        let cfg = SprinklersConfig::new(8).with_sizing(SizingMode::Adaptive(AdaptiveSizing {
            gamma: 1.5,
            ..Default::default()
        }));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builder_methods_set_fields() {
        let cfg = SprinklersConfig::new(16)
            .with_input_discipline(InputDiscipline::RowScan)
            .with_alignment(AlignmentMode::StripeComplete)
            .with_sizing(SizingMode::FixedSize(4));
        assert_eq!(cfg.input_discipline, InputDiscipline::RowScan);
        assert_eq!(cfg.alignment, AlignmentMode::StripeComplete);
        assert_eq!(cfg.sizing, SizingMode::FixedSize(4));
    }
}
