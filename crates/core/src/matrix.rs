//! Traffic (rate) matrices.
//!
//! An `N×N` matrix of normalized arrival rates: entry `(i, j)` is the rate of
//! the VOQ at input `i` destined to output `j`, in packets per time slot.  A
//! matrix is *admissible* when no row sum (input load) and no column sum
//! (output load) exceeds 1.
//!
//! Traffic matrices serve two purposes: traffic generators expose the matrix
//! they draw from, and the Sprinklers switch can derive its stripe sizes
//! directly from a known matrix (the assumption made by the paper's analysis).

use crate::error::SwitchError;
use serde::{Deserialize, Serialize};

/// An `N×N` matrix of normalized VOQ arrival rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    /// Row-major rates: `rates[i * n + j]` is the rate from input `i` to output `j`.
    rates: Vec<f64>,
}

impl TrafficMatrix {
    /// An all-zero matrix for an `n`-port switch.
    pub fn zero(n: usize) -> Self {
        TrafficMatrix {
            n,
            rates: vec![0.0; n * n],
        }
    }

    /// Uniform traffic at total input load `rho`: every VOQ has rate `rho / N`.
    ///
    /// This is the paper's first simulation scenario (§6).
    pub fn uniform(n: usize, rho: f64) -> Self {
        let mut m = Self::zero(n);
        let r = rho / n as f64;
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, r);
            }
        }
        m
    }

    /// Quasi-diagonal traffic at total input load `rho`: a packet arriving at
    /// input `i` goes to output `i` with probability 1/2 and to every other
    /// output with probability `1/(2(N−1))` (§6, second scenario).
    pub fn diagonal(n: usize, rho: f64) -> Self {
        let mut m = Self::zero(n);
        for i in 0..n {
            for j in 0..n {
                let p = if i == j { 0.5 } else { 0.5 / (n as f64 - 1.0) };
                m.set(i, j, rho * p);
            }
        }
        m
    }

    /// Hot-spot traffic: a fraction `hot_fraction` of each input's load goes to
    /// a single "hot" output (`(i + 1) mod N` to keep the matrix admissible),
    /// the rest is spread uniformly.
    pub fn hotspot(n: usize, rho: f64, hot_fraction: f64) -> Self {
        let mut m = Self::zero(n);
        for i in 0..n {
            let hot = (i + 1) % n;
            for j in 0..n {
                let base = rho * (1.0 - hot_fraction) / n as f64;
                let extra = if j == hot { rho * hot_fraction } else { 0.0 };
                m.set(i, j, base + extra);
            }
        }
        m
    }

    /// Build a matrix from explicit row-major rates.
    pub fn from_rates(n: usize, rates: Vec<f64>) -> Result<Self, SwitchError> {
        if rates.len() != n * n {
            return Err(SwitchError::MatrixDimensionMismatch {
                got: (rates.len() as f64).sqrt() as usize,
                expected: n,
            });
        }
        for &r in &rates {
            if !r.is_finite() || r < 0.0 {
                return Err(SwitchError::InvalidRate { rate: r });
            }
        }
        Ok(TrafficMatrix { n, rates })
    }

    /// Switch size N.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rate of the VOQ from input `i` to output `j`.
    pub fn rate(&self, input: usize, output: usize) -> f64 {
        self.rates[input * self.n + output]
    }

    /// Set the rate of the VOQ from input `i` to output `j`.
    pub fn set(&mut self, input: usize, output: usize, rate: f64) {
        self.rates[input * self.n + output] = rate;
    }

    /// Total load offered to input `i` (row sum).
    pub fn input_load(&self, input: usize) -> f64 {
        (0..self.n).map(|j| self.rate(input, j)).sum()
    }

    /// Total load destined to output `j` (column sum).
    pub fn output_load(&self, output: usize) -> f64 {
        (0..self.n).map(|i| self.rate(i, output)).sum()
    }

    /// Largest row or column sum.
    pub fn max_load(&self) -> f64 {
        let row = (0..self.n)
            .map(|i| self.input_load(i))
            .fold(0.0f64, f64::max);
        let col = (0..self.n)
            .map(|j| self.output_load(j))
            .fold(0.0f64, f64::max);
        row.max(col)
    }

    /// Is the matrix admissible (no input or output oversubscribed)?
    ///
    /// A small tolerance absorbs floating-point accumulation error.
    pub fn is_admissible(&self) -> bool {
        self.max_load() <= 1.0 + 1e-9
    }

    /// Scale every rate by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        TrafficMatrix {
            n: self.n,
            rates: self.rates.iter().map(|r| r * factor).collect(),
        }
    }

    /// Iterate over `(input, output, rate)` triples with nonzero rate.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..self.n).filter_map(move |j| {
                let r = self.rate(i, j);
                if r > 0.0 {
                    Some((i, j, r))
                } else {
                    None
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_matrix_loads() {
        let m = TrafficMatrix::uniform(16, 0.8);
        for i in 0..16 {
            assert!((m.input_load(i) - 0.8).abs() < 1e-12);
            assert!((m.output_load(i) - 0.8).abs() < 1e-12);
        }
        assert!(m.is_admissible());
    }

    #[test]
    fn diagonal_matrix_matches_paper_definition() {
        let n = 32;
        let rho = 0.9;
        let m = TrafficMatrix::diagonal(n, rho);
        assert!((m.rate(3, 3) - rho * 0.5).abs() < 1e-12);
        assert!((m.rate(3, 4) - rho * 0.5 / 31.0).abs() < 1e-12);
        for i in 0..n {
            assert!((m.input_load(i) - rho).abs() < 1e-9);
        }
        // Quasi-diagonal traffic is admissible: every output load also equals rho.
        for j in 0..n {
            assert!((m.output_load(j) - rho).abs() < 1e-9);
        }
        assert!(m.is_admissible());
    }

    #[test]
    fn hotspot_matrix_is_admissible_and_concentrated() {
        let n = 16;
        let m = TrafficMatrix::hotspot(n, 0.9, 0.5);
        assert!(m.is_admissible());
        for i in 0..n {
            assert!((m.input_load(i) - 0.9).abs() < 1e-9);
            let hot = (i + 1) % n;
            assert!(m.rate(i, hot) > m.rate(i, (i + 2) % n));
        }
    }

    #[test]
    fn from_rates_validates() {
        assert!(TrafficMatrix::from_rates(2, vec![0.1; 4]).is_ok());
        assert!(matches!(
            TrafficMatrix::from_rates(2, vec![0.1; 3]),
            Err(SwitchError::MatrixDimensionMismatch { .. })
        ));
        assert!(matches!(
            TrafficMatrix::from_rates(2, vec![0.1, -0.5, 0.0, 0.0]),
            Err(SwitchError::InvalidRate { .. })
        ));
    }

    #[test]
    fn overloaded_matrix_is_not_admissible() {
        let mut m = TrafficMatrix::uniform(4, 0.9);
        m.set(0, 0, 0.9);
        assert!(!m.is_admissible());
    }

    #[test]
    fn scaled_multiplies_every_rate() {
        let m = TrafficMatrix::uniform(4, 0.8).scaled(0.5);
        for i in 0..4 {
            assert!((m.input_load(i) - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn iter_nonzero_skips_zero_entries() {
        let mut m = TrafficMatrix::zero(4);
        m.set(1, 2, 0.3);
        m.set(3, 0, 0.1);
        let entries: Vec<_> = m.iter_nonzero().collect();
        assert_eq!(entries.len(), 2);
        assert!(entries.contains(&(1, 2, 0.3)));
        assert!(entries.contains(&(3, 0, 0.1)));
    }

    proptest! {
        /// Uniform and diagonal matrices are admissible for any load in [0, 1].
        #[test]
        fn canonical_matrices_are_admissible(rho in 0.0f64..1.0, n_exp in 1usize..7) {
            let n = 1usize << n_exp;
            prop_assert!(TrafficMatrix::uniform(n, rho).is_admissible());
            if n > 1 {
                prop_assert!(TrafficMatrix::diagonal(n, rho).is_admissible());
            }
            prop_assert!(TrafficMatrix::hotspot(n, rho, 0.3).is_admissible());
        }

        /// Sum of all entries equals the sum of input loads and the sum of
        /// output loads.
        #[test]
        fn load_accounting_is_consistent(rho in 0.0f64..1.0, n_exp in 1usize..6) {
            let n = 1usize << n_exp;
            let m = TrafficMatrix::diagonal(n.max(2), rho);
            let n = m.n();
            let total: f64 = (0..n).map(|i| m.input_load(i)).sum();
            let total_out: f64 = (0..n).map(|j| m.output_load(j)).sum();
            prop_assert!((total - total_out).abs() < 1e-9);
        }
    }
}
