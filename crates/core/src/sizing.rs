//! Stripe size determination (§3.3.2, Eq. (1)).
//!
//! For a VOQ with arrival rate `r` (normalized so the input line rate is 1),
//! the stripe size is
//!
//! ```text
//! F(r) = min(N, 2^⌈log₂(r·N²)⌉)
//! ```
//!
//! clamped below at 1.  The rule aims to bring the *load-per-share*
//! `s = r / F(r)` — the amount of traffic the VOQ imposes on each intermediate
//! port of its stripe interval — below `1/N²`, while keeping the size a power
//! of two so the stripe interval can be dyadic.  Because of the rounding, the
//! load-per-share of a VOQ with stripe size `2 ≤ F(r) ≤ N/2` lies in
//! `(1/(2N²), 1/N²]`, and for very hot VOQs (`r > 1/(2N)`) the stripe simply
//! spans all N intermediate ports.

use serde::{Deserialize, Serialize};

/// The load-per-share threshold `α = 1/N²` the sizing rule targets.
pub fn alpha(n: usize) -> f64 {
    1.0 / (n as f64 * n as f64)
}

/// Stripe size `F(r)` for a VOQ of rate `r` in an `n`-port switch.
///
/// `r` is the normalized arrival rate of the VOQ (packets per slot, so
/// `0 ≤ r ≤ 1`).  The result is always a power of two in `1..=n`.
///
/// # Panics
///
/// Panics if `n` is not a power of two or `r` is negative/NaN.
pub fn stripe_size(rate: f64, n: usize) -> usize {
    assert!(
        n.is_power_of_two(),
        "switch size {n} must be a power of two"
    );
    assert!(
        rate.is_finite() && rate >= 0.0,
        "rate {rate} must be finite and non-negative"
    );
    if rate == 0.0 {
        return 1;
    }
    let scaled = rate * (n as f64) * (n as f64);
    if scaled <= 1.0 {
        return 1;
    }
    // 2^⌈log₂(scaled)⌉ computed carefully: find the smallest power of two ≥ scaled.
    let mut size = 1usize;
    while (size as f64) < scaled && size < n {
        size *= 2;
    }
    size.min(n)
}

/// Load-per-share `s = r / F(r)` of a VOQ of rate `r`.
pub fn load_per_share(rate: f64, n: usize) -> f64 {
    rate / stripe_size(rate, n) as f64
}

/// The largest rate that still maps to stripe size `size` (inclusive), i.e.
/// the right edge of `F⁻¹({size})`, or `None` for `size == n` (unbounded above
/// within admissible rates).
pub fn max_rate_for_size(size: usize, n: usize) -> Option<f64> {
    assert!(size.is_power_of_two() && size <= n);
    if size == n {
        None
    } else {
        Some(size as f64 / (n as f64 * n as f64))
    }
}

/// A stripe-size decision with hysteresis, used by the adaptive sizing mode.
///
/// §3.3.2 notes that to prevent a stripe size from thrashing between `2^k` and
/// `2^{k+1}` when the measured rate hovers near a boundary, halving/doubling
/// should be delayed.  `SizeDecider` requires the target size suggested by the
/// measured rate to differ from the current size for `patience` consecutive
/// updates before committing to a change.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizeDecider {
    n: usize,
    current: usize,
    pending: Option<usize>,
    pending_count: u32,
    patience: u32,
}

impl SizeDecider {
    /// Create a decider starting at `initial` (clamped to a power of two in
    /// `1..=n`), requiring `patience` consecutive disagreeing measurements
    /// before changing size.
    pub fn new(n: usize, initial: usize, patience: u32) -> Self {
        let initial = initial.clamp(1, n).next_power_of_two().min(n);
        SizeDecider {
            n,
            current: initial,
            pending: None,
            pending_count: 0,
            patience,
        }
    }

    /// The currently committed stripe size.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Feed a new rate measurement.  Returns `Some(new_size)` if the decider
    /// commits to a different stripe size, `None` otherwise.
    pub fn observe(&mut self, measured_rate: f64) -> Option<usize> {
        let target = stripe_size(measured_rate, self.n);
        if target == self.current {
            self.pending = None;
            self.pending_count = 0;
            return None;
        }
        match self.pending {
            Some(p) if p == target => {
                self.pending_count += 1;
            }
            _ => {
                self.pending = Some(target);
                self.pending_count = 1;
            }
        }
        if self.pending_count > self.patience {
            self.current = target;
            self.pending = None;
            self.pending_count = 0;
            Some(target)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_rate_gets_unit_stripe() {
        assert_eq!(stripe_size(0.0, 64), 1);
    }

    #[test]
    fn tiny_rate_gets_unit_stripe() {
        let n = 64;
        // r N² ≤ 1  →  size 1
        assert_eq!(stripe_size(1.0 / (n * n) as f64, n), 1);
        assert_eq!(stripe_size(0.5 / (n * n) as f64, n), 1);
    }

    #[test]
    fn boundary_rates_map_to_exact_powers() {
        let n = 64usize;
        let n2 = (n * n) as f64;
        // r N² = 2 → size 2;  r N² = 2 + ε → size 4.
        assert_eq!(stripe_size(2.0 / n2, n), 2);
        assert_eq!(stripe_size(2.0001 / n2, n), 4);
        assert_eq!(stripe_size(4.0 / n2, n), 4);
        assert_eq!(stripe_size(5.0 / n2, n), 8);
    }

    #[test]
    fn hot_voq_spans_all_ports() {
        let n = 32;
        assert_eq!(stripe_size(1.0, n), n);
        assert_eq!(stripe_size(0.9, n), n);
        // r > 1/N ⇒ F(r) = N (paper §3.3.2).
        assert_eq!(stripe_size(1.1 / n as f64, n), n);
    }

    #[test]
    fn uniform_traffic_at_full_load_gets_unit_stripes() {
        // Under uniform traffic each VOQ has rate ρ/N ≤ 1/N, so r·N² ≤ N and
        // stripes never need to exceed N... but for ρ/N the size is the power
        // of two ≥ ρN.  At ρ = 1, that's exactly N... check smaller loads.
        let n = 32;
        assert_eq!(stripe_size(0.5 / n as f64, n), 16);
        assert_eq!(stripe_size(1.0 / (n as f64 * n as f64), n), 1);
    }

    #[test]
    fn max_rate_for_size_is_inverse_of_stripe_size() {
        let n = 64;
        for level in 0..6 {
            let size = 1usize << level;
            let max_rate = max_rate_for_size(size, n).unwrap();
            assert_eq!(stripe_size(max_rate, n), size.max(1));
            assert!(stripe_size(max_rate * 1.001, n) > size || size == n);
        }
        assert!(max_rate_for_size(n, n).is_none());
    }

    #[test]
    fn alpha_is_one_over_n_squared() {
        assert!((alpha(64) - 1.0 / 4096.0).abs() < 1e-15);
    }

    #[test]
    fn decider_requires_patience_before_changing() {
        let n = 64;
        let mut d = SizeDecider::new(n, 4, 2);
        assert_eq!(d.current(), 4);
        let hot = 100.0 / (n * n) as f64; // target size 128 → clamped ... n=64 → min(64,128)=64
        assert_eq!(d.observe(hot), None);
        assert_eq!(d.observe(hot), None);
        assert_eq!(d.observe(hot), Some(64));
        assert_eq!(d.current(), 64);
        // A single dissenting measurement resets the pending counter.
        let cold = 0.5 / (n * n) as f64;
        assert_eq!(d.observe(cold), None);
        assert_eq!(d.observe(hot), None); // agrees with current → resets
        assert_eq!(d.observe(cold), None);
        assert_eq!(d.observe(cold), None);
        assert_eq!(d.observe(cold), Some(1));
    }

    #[test]
    fn decider_clamps_initial_size() {
        let d = SizeDecider::new(16, 100, 1);
        assert_eq!(d.current(), 16);
        let d = SizeDecider::new(16, 0, 1);
        assert_eq!(d.current(), 1);
        let d = SizeDecider::new(16, 3, 1);
        assert_eq!(d.current(), 4);
    }

    proptest! {
        /// F(r) is always a power of two within [1, N].
        #[test]
        fn stripe_size_is_power_of_two_in_range(rate in 0.0f64..1.0, n_exp in 1usize..10) {
            let n = 1usize << n_exp;
            let s = stripe_size(rate, n);
            prop_assert!(s.is_power_of_two());
            prop_assert!(s >= 1 && s <= n);
        }

        /// F is nondecreasing in r.
        #[test]
        fn stripe_size_is_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0, n_exp in 1usize..10) {
            let n = 1usize << n_exp;
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(stripe_size(lo, n) <= stripe_size(hi, n));
        }

        /// The load-per-share never exceeds α except for full-span stripes,
        /// and never drops below α/2 except for unit stripes.
        #[test]
        fn load_per_share_bounds(rate in 0.0f64..1.0, n_exp in 2usize..10) {
            let n = 1usize << n_exp;
            let f = stripe_size(rate, n);
            let s = load_per_share(rate, n);
            let a = alpha(n);
            if f < n {
                prop_assert!(s <= a * (1.0 + 1e-12), "s = {s}, α = {a}, f = {f}");
            }
            if f > 1 && f < n {
                prop_assert!(s > a / 2.0 * (1.0 - 1e-12), "s = {s}, α/2 = {}, f = {f}", a / 2.0);
            }
        }
    }
}
