//! Online VOQ rate measurement for adaptive stripe sizing.
//!
//! The paper (§3.3.2) sets the initial stripe sizes from historical traffic
//! information or defaults, then adjusts them "based on the measured rate of
//! the corresponding VOQ".  This module provides the measurement: a windowed
//! estimator that counts arrivals over fixed windows of `window` slots and
//! smooths the per-window rate with an exponentially weighted moving average.

use serde::{Deserialize, Serialize};

/// Windowed EWMA arrival-rate estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateEstimator {
    /// Window length in slots.
    window: u64,
    /// EWMA smoothing factor in `(0, 1]`; 1.0 means "use the last window only".
    gamma: f64,
    /// Arrivals counted in the current window.
    count: u64,
    /// Slot at which the current window started.
    window_start: u64,
    /// Current smoothed rate estimate (packets per slot).
    estimate: f64,
    /// Number of complete windows observed so far.
    windows_seen: u64,
}

impl RateEstimator {
    /// Create an estimator with the given window length (slots) and EWMA
    /// factor `gamma` (weight of the newest window).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `gamma` is outside `(0, 1]`.
    pub fn new(window: u64, gamma: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        RateEstimator {
            window,
            gamma,
            count: 0,
            window_start: 0,
            estimate: 0.0,
            windows_seen: 0,
        }
    }

    /// Record a packet arrival at `slot`.
    pub fn record_arrival(&mut self, slot: u64) {
        self.roll_to(slot);
        self.count += 1;
    }

    /// Advance time to `slot` (closing any windows that have elapsed) and
    /// return the current rate estimate in packets per slot.
    pub fn rate_at(&mut self, slot: u64) -> f64 {
        self.roll_to(slot);
        self.estimate
    }

    /// Current estimate without advancing time.
    pub fn current_estimate(&self) -> f64 {
        self.estimate
    }

    /// Number of complete measurement windows observed.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    fn roll_to(&mut self, slot: u64) {
        while slot >= self.window_start + self.window {
            let window_rate = self.count as f64 / self.window as f64;
            self.estimate = if self.windows_seen == 0 {
                window_rate
            } else {
                self.gamma * window_rate + (1.0 - self.gamma) * self.estimate
            };
            self.windows_seen += 1;
            self.count = 0;
            self.window_start += self.window;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_converges_to_true_rate() {
        let mut est = RateEstimator::new(100, 0.3);
        // One arrival every 4 slots → rate 0.25.
        for slot in (0..10_000).step_by(4) {
            est.record_arrival(slot);
        }
        let r = est.rate_at(10_000);
        assert!(
            (r - 0.25).abs() < 0.02,
            "estimate {r} should be close to 0.25"
        );
    }

    #[test]
    fn estimate_is_zero_before_first_window_completes() {
        let mut est = RateEstimator::new(1000, 0.5);
        est.record_arrival(10);
        est.record_arrival(20);
        assert_eq!(est.rate_at(500), 0.0);
        assert!(est.rate_at(1000) > 0.0);
        assert_eq!(est.windows_seen(), 1);
    }

    #[test]
    fn rate_tracks_a_change_in_load() {
        let mut est = RateEstimator::new(100, 0.5);
        // Heavy phase: one arrival per slot.
        for slot in 0..1000 {
            est.record_arrival(slot);
        }
        let heavy = est.rate_at(1000);
        assert!(heavy > 0.9);
        // Idle phase: no arrivals for many windows.
        let idle = est.rate_at(3000);
        assert!(idle < heavy / 4.0, "estimate should decay after load drops");
    }

    #[test]
    fn gamma_one_uses_only_last_window() {
        let mut est = RateEstimator::new(10, 1.0);
        for slot in 0..10 {
            est.record_arrival(slot);
        }
        assert_eq!(est.rate_at(10), 1.0);
        // Next window has no arrivals; with gamma = 1 the estimate drops to 0.
        assert_eq!(est.rate_at(20), 0.0);
    }

    #[test]
    fn empty_windows_are_counted() {
        let mut est = RateEstimator::new(10, 0.5);
        assert_eq!(est.rate_at(100), 0.0);
        assert_eq!(est.windows_seen(), 10);
    }

    #[test]
    #[should_panic]
    fn zero_window_is_rejected() {
        let _ = RateEstimator::new(0, 0.5);
    }

    #[test]
    #[should_panic]
    fn gamma_out_of_range_is_rejected() {
        let _ = RateEstimator::new(10, 1.5);
    }
}
