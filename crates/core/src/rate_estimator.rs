//! Online VOQ rate measurement for adaptive stripe sizing.
//!
//! The paper (§3.3.2) sets the initial stripe sizes from historical traffic
//! information or defaults, then adjusts them "based on the measured rate of
//! the corresponding VOQ".  This module provides the measurement: a windowed
//! estimator that counts arrivals over fixed windows of `window` slots and
//! smooths the per-window rate with an exponentially weighted moving average.

use serde::{Deserialize, Serialize};

/// Windowed EWMA arrival-rate estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateEstimator {
    /// Window length in slots.
    window: u64,
    /// EWMA smoothing factor in `(0, 1]`; 1.0 means "use the last window only".
    gamma: f64,
    /// Arrivals counted in the current window.
    count: u64,
    /// Slot at which the current window started.
    window_start: u64,
    /// Current smoothed rate estimate (packets per slot).
    estimate: f64,
    /// Number of complete windows observed so far.
    windows_seen: u64,
}

impl RateEstimator {
    /// Create an estimator with the given window length (slots) and EWMA
    /// factor `gamma` (weight of the newest window).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `gamma` is outside `(0, 1]`.
    pub fn new(window: u64, gamma: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        RateEstimator {
            window,
            gamma,
            count: 0,
            window_start: 0,
            estimate: 0.0,
            windows_seen: 0,
        }
    }

    /// Record a packet arrival at `slot`.
    pub fn record_arrival(&mut self, slot: u64) {
        self.roll_to(slot);
        self.count += 1;
    }

    /// Advance time to `slot` (closing any windows that have elapsed) and
    /// return the current rate estimate in packets per slot.
    pub fn rate_at(&mut self, slot: u64) -> f64 {
        self.roll_to(slot);
        self.estimate
    }

    /// Current estimate without advancing time.
    pub fn current_estimate(&self) -> f64 {
        self.estimate
    }

    /// Number of complete measurement windows observed.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    fn roll_to(&mut self, slot: u64) {
        // Compare `slot - window_start >= window` instead of
        // `slot >= window_start + window`: the sum overflows u64 once
        // `window_start` gets within one window of u64::MAX (huge windows
        // reach that after a single roll).  The saturating advance below is
        // safe for the same reason it terminates: once `window_start` stops
        // moving, `slot - window_start` can no longer reach `window`.
        while slot
            .checked_sub(self.window_start)
            .is_some_and(|elapsed| elapsed >= self.window)
        {
            let window_rate = self.count as f64 / self.window as f64;
            self.estimate = if self.windows_seen == 0 {
                window_rate
            } else {
                self.gamma * window_rate + (1.0 - self.gamma) * self.estimate
            };
            self.windows_seen += 1;
            self.count = 0;
            self.window_start = self.window_start.saturating_add(self.window);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_converges_to_true_rate() {
        let mut est = RateEstimator::new(100, 0.3);
        // One arrival every 4 slots → rate 0.25.
        for slot in (0..10_000).step_by(4) {
            est.record_arrival(slot);
        }
        let r = est.rate_at(10_000);
        assert!(
            (r - 0.25).abs() < 0.02,
            "estimate {r} should be close to 0.25"
        );
    }

    #[test]
    fn estimate_is_zero_before_first_window_completes() {
        let mut est = RateEstimator::new(1000, 0.5);
        est.record_arrival(10);
        est.record_arrival(20);
        assert_eq!(est.rate_at(500), 0.0);
        assert!(est.rate_at(1000) > 0.0);
        assert_eq!(est.windows_seen(), 1);
    }

    #[test]
    fn rate_tracks_a_change_in_load() {
        let mut est = RateEstimator::new(100, 0.5);
        // Heavy phase: one arrival per slot.
        for slot in 0..1000 {
            est.record_arrival(slot);
        }
        let heavy = est.rate_at(1000);
        assert!(heavy > 0.9);
        // Idle phase: no arrivals for many windows.
        let idle = est.rate_at(3000);
        assert!(idle < heavy / 4.0, "estimate should decay after load drops");
    }

    #[test]
    fn gamma_one_uses_only_last_window() {
        let mut est = RateEstimator::new(10, 1.0);
        for slot in 0..10 {
            est.record_arrival(slot);
        }
        assert_eq!(est.rate_at(10), 1.0);
        // Next window has no arrivals; with gamma = 1 the estimate drops to 0.
        assert_eq!(est.rate_at(20), 0.0);
    }

    #[test]
    fn empty_windows_are_counted() {
        let mut est = RateEstimator::new(10, 0.5);
        assert_eq!(est.rate_at(100), 0.0);
        assert_eq!(est.windows_seen(), 10);
    }

    #[test]
    fn first_partial_window_reports_zero_then_the_exact_window_rate() {
        // Exact pinned values: before the first window completes the
        // estimate is exactly 0.0 (no division by the elapsed partial
        // span), and the first complete window reports count/window with no
        // startup bias.
        let mut est = RateEstimator::new(8, 0.5);
        for slot in 0..6 {
            est.record_arrival(slot);
        }
        assert_eq!(est.current_estimate(), 0.0);
        assert_eq!(est.rate_at(7), 0.0, "slot 7 is still inside window 0");
        assert_eq!(est.windows_seen(), 0);
        assert_eq!(est.rate_at(8), 0.75, "6 arrivals / 8 slots, exactly");
        assert_eq!(est.windows_seen(), 1);
    }

    #[test]
    fn second_window_is_an_exact_ewma_blend() {
        // gamma = 0.25 and window rates 1.0 then 0.5 are all exactly
        // representable, so the blend 0.25·0.5 + 0.75·1.0 = 0.875 is exact.
        let mut est = RateEstimator::new(10, 0.25);
        for slot in 0..10 {
            est.record_arrival(slot);
        }
        for slot in (10..20).step_by(2) {
            est.record_arrival(slot);
        }
        assert_eq!(est.rate_at(10), 1.0);
        assert_eq!(est.rate_at(20), 0.875);
        assert_eq!(est.windows_seen(), 2);
    }

    #[test]
    fn huge_windows_do_not_overflow_the_roll() {
        // Regression: rolling used to compute `window_start + window`, which
        // overflows u64 (a debug-build panic) as soon as one window of
        // length ≥ 2^63 has elapsed and a later slot is queried.
        let mut est = RateEstimator::new(1 << 63, 1.0);
        est.record_arrival(0);
        let expected = 1.0 / (1u64 << 63) as f64;
        assert_eq!(est.rate_at(u64::MAX), expected);
        assert_eq!(est.windows_seen(), 1);
        // Querying again (and further ahead) stays stable and panic-free.
        assert_eq!(est.rate_at(u64::MAX), expected);
    }

    #[test]
    #[should_panic]
    fn zero_window_is_rejected() {
        // `window = 0` is a construction error by contract: there is no
        // meaningful rate over an empty window, so the constructor asserts
        // (in every build profile) instead of letting rate_at divide by 0.
        let _ = RateEstimator::new(0, 0.5);
    }

    #[test]
    #[should_panic]
    fn gamma_out_of_range_is_rejected() {
        let _ = RateEstimator::new(10, 1.5);
    }
}
