//! A Sprinklers input port: N VOQs feeding a Largest-Stripe-First scheduler.
//!
//! The input port owns one [`Voq`] per output (which assembles packets into
//! stripes) and one LSF scheduler (which decides, whenever the first fabric
//! connects this input to an intermediate port, which queued packet to send).

use crate::config::{InputDiscipline, SizingMode, SprinklersConfig};
use crate::lsf::{make_scheduler, StripeScheduler};
use crate::ols::WeaklyUniformOls;
use crate::packet::Packet;
use crate::sizing::stripe_size;
use crate::stripe::Stripe;
use crate::voq::Voq;

/// One Sprinklers input port.
pub struct SprinklersInputPort {
    port_id: usize,
    n: usize,
    voqs: Vec<Voq>,
    scheduler: Box<dyn StripeScheduler + Send>,
    /// Stripes released by VOQs, counted for telemetry.
    stripes_formed: u64,
    /// Running count of packets at this port (VOQ ready queues plus the
    /// scheduler), so [`Self::queued_packets`] is O(1) — the engine samples
    /// occupancy at every sampling boundary, and the switch keeps its
    /// port-occupancy bitsets in sync from the same counter.
    queued: usize,
    /// Running count of committed stripe-size changes across this port's
    /// VOQs, maintained by delta around every VOQ interaction (each touches
    /// exactly one VOQ) so the switch-level total needs no O(N²) rescan.
    resizes: u64,
}

impl SprinklersInputPort {
    /// Build input port `port_id` of a switch with the given configuration and
    /// OLS-assigned primary intermediate ports.
    pub fn new(port_id: usize, config: &SprinklersConfig, ols: &WeaklyUniformOls) -> Self {
        let n = config.n;
        let voqs = (0..n)
            .map(|output| {
                let primary = ols.primary_port(port_id, output);
                match &config.sizing {
                    SizingMode::FromMatrix(matrix) => {
                        let size = stripe_size(matrix.rate(port_id, output), n);
                        Voq::fixed(port_id, output, n, primary, size)
                    }
                    SizingMode::FixedSize(size) => Voq::fixed(port_id, output, n, primary, *size),
                    SizingMode::Adaptive(params) => {
                        Voq::adaptive(port_id, output, n, primary, params)
                    }
                }
            })
            .collect();
        SprinklersInputPort {
            port_id,
            n,
            voqs,
            scheduler: make_scheduler(config.input_discipline, n),
            stripes_formed: 0,
            queued: 0,
            resizes: 0,
        }
    }

    /// Convenience constructor used by tests: every VOQ gets the same fixed
    /// stripe size and the primary ports come from the cyclic OLS.
    pub fn with_fixed_size(
        port_id: usize,
        n: usize,
        size: usize,
        discipline: InputDiscipline,
    ) -> Self {
        let config = SprinklersConfig::new(n)
            .with_sizing(SizingMode::FixedSize(size))
            .with_input_discipline(discipline);
        let ols = WeaklyUniformOls::cyclic(n);
        Self::new(port_id, &config, &ols)
    }

    /// This port's index.
    pub fn port_id(&self) -> usize {
        self.port_id
    }

    /// Accept an arriving packet.  Any stripes that become complete are
    /// immediately plastered into the scheduler.
    pub fn arrive(&mut self, packet: Packet) {
        debug_assert_eq!(packet.input(), self.port_id);
        debug_assert!(packet.output() < self.n);
        let now = packet.arrival_slot;
        let output = packet.output();
        self.queued += 1;
        let before = self.voqs[output].resizes();
        let stripes = self.voqs[output].push(packet, now);
        self.resizes += self.voqs[output].resizes() - before;
        self.plaster(stripes);
    }

    /// Serve the intermediate port the first fabric currently connects us to.
    pub fn dequeue(&mut self, intermediate: usize) -> Option<Packet> {
        let packet = self.scheduler.serve(intermediate);
        if packet.is_some() {
            self.queued -= 1;
        }
        packet
    }

    /// Periodic maintenance: gives one VOQ per call the chance to re-evaluate
    /// its adaptive stripe size even when it has no arrivals (so idle VOQs can
    /// shrink).  Calling this once per slot visits every VOQ once per frame.
    ///
    /// Only adaptive sizing needs this: with fixed or matrix-driven sizing a
    /// VOQ's `on_slot` is a provable no-op (no sizing clock, and complete
    /// stripes are always collected at the call that completed them), so the
    /// switch skips the whole pass for non-adaptive configurations.
    pub fn maintain(&mut self, slot: u64) {
        let idx = (slot as usize) % self.n;
        let before = self.voqs[idx].resizes();
        let stripes = self.voqs[idx].on_slot(slot);
        self.resizes += self.voqs[idx].resizes() - before;
        self.plaster(stripes);
    }

    /// Notification that one of this port's packets reached output `output`.
    /// May release stripes that were held back by a pending resize.
    pub fn packet_delivered(&mut self, output: usize) {
        let before = self.voqs[output].resizes();
        let stripes = self.voqs[output].packet_delivered();
        self.resizes += self.voqs[output].resizes() - before;
        self.plaster(stripes);
    }

    /// Request a stripe-size change for one VOQ (the reconfiguration path).
    ///
    /// If the resize commits immediately (nothing in flight), any stripes the
    /// VOQ's ready backlog can already fill are released right here — so no
    /// deferred stripe-collection work is left for the per-slot maintenance
    /// pass, which non-adaptive configurations skip entirely.
    pub fn request_resize(&mut self, output: usize, size: usize) {
        let before = self.voqs[output].resizes();
        self.voqs[output].request_resize(size);
        self.resizes += self.voqs[output].resizes() - before;
        let stripes = self.voqs[output].release_ready();
        self.plaster(stripes);
    }

    /// Packets queued at this port (scheduler plus VOQ ready queues), from a
    /// running counter (O(1)).
    pub fn queued_packets(&self) -> usize {
        debug_assert_eq!(
            self.queued,
            self.scheduler.queued_packets() + self.voqs.iter().map(Voq::ready_len).sum::<usize>(),
            "running queued counter desynchronized from a brute-force rescan"
        );
        self.queued
    }

    /// True if the scheduler holds at least one servable packet — the
    /// criterion for the switch's input-occupancy bitset.  Packets still
    /// accumulating in VOQ ready queues don't count: the first fabric can
    /// only serve plastered stripes, so a port with a bare ready backlog is a
    /// provable no-op to probe.
    pub fn has_servable(&self) -> bool {
        !self.scheduler.is_empty()
    }

    /// Committed stripe-size changes across this port's VOQs (running count).
    pub fn resizes_committed(&self) -> u64 {
        self.resizes
    }

    /// Packets queued in the scheduler destined to a given intermediate port.
    pub fn queued_for_intermediate(&self, intermediate: usize) -> usize {
        self.scheduler.queued_in_row(intermediate)
    }

    /// Number of stripes formed so far.
    pub fn stripes_formed(&self) -> u64 {
        self.stripes_formed
    }

    /// Access a VOQ (used by tests and the switch for inspection).  Mutation
    /// goes through [`Self::request_resize`] so the port's running resize
    /// counter and stripe plastering stay in sync.
    pub fn voq(&self, output: usize) -> &Voq {
        &self.voqs[output]
    }

    fn plaster(&mut self, stripes: Vec<Stripe>) {
        for stripe in stripes {
            self.stripes_formed += 1;
            self.scheduler.insert(stripe);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaptiveSizing;

    fn pkt(input: usize, output: usize, seq: u64, slot: u64) -> Packet {
        Packet::new(input, output, seq, slot).with_voq_seq(seq)
    }

    #[test]
    fn packets_flow_through_voq_into_scheduler() {
        let mut port = SprinklersInputPort::with_fixed_size(0, 8, 2, InputDiscipline::StripeAtomic);
        port.arrive(pkt(0, 3, 0, 0));
        assert_eq!(
            port.queued_packets(),
            1,
            "one packet waiting in the VOQ ready queue"
        );
        port.arrive(pkt(0, 3, 1, 1));
        assert_eq!(port.queued_packets(), 2, "stripe formed and plastered");
        assert_eq!(port.stripes_formed(), 1);
        // With the cyclic OLS, VOQ (0, 3) has primary port 3 and stripe size 2,
        // so its interval is [2, 4).
        assert_eq!(port.queued_for_intermediate(2), 1);
        assert_eq!(port.queued_for_intermediate(3), 1);
        // The atomic scheduler serves the stripe starting at row 2.
        assert!(port.dequeue(1).is_none());
        let p = port.dequeue(2).unwrap();
        assert_eq!(p.intermediate(), 2);
        let p = port.dequeue(3).unwrap();
        assert_eq!(p.intermediate(), 3);
        assert_eq!(port.queued_packets(), 0);
    }

    #[test]
    fn row_scan_port_serves_any_covered_row() {
        let mut port = SprinklersInputPort::with_fixed_size(0, 8, 2, InputDiscipline::RowScan);
        port.arrive(pkt(0, 3, 0, 0));
        port.arrive(pkt(0, 3, 1, 0));
        // Row-scan can serve row 3 before row 2.
        let p = port.dequeue(3).unwrap();
        assert_eq!(p.intermediate(), 3);
    }

    #[test]
    fn delivery_notification_reaches_the_voq() {
        let mut port = SprinklersInputPort::with_fixed_size(0, 8, 1, InputDiscipline::StripeAtomic);
        port.arrive(pkt(0, 5, 0, 0));
        assert_eq!(port.voq(5).in_flight(), 1);
        let p = port.dequeue(5).unwrap();
        assert_eq!(p.output(), 5);
        port.packet_delivered(5);
        assert_eq!(port.voq(5).in_flight(), 0);
    }

    #[test]
    fn maintain_visits_voqs_round_robin() {
        // An adaptive port with zero traffic must shrink all its VOQs back to
        // size 1 eventually purely through maintenance calls.
        let config = SprinklersConfig::new(8).with_sizing(SizingMode::Adaptive(AdaptiveSizing {
            window: 16,
            gamma: 1.0,
            patience: 0,
            initial_size: 8,
        }));
        let ols = WeaklyUniformOls::cyclic(8);
        let mut port = SprinklersInputPort::new(0, &config, &ols);
        for slot in 0..1024u64 {
            port.maintain(slot);
        }
        for output in 0..8 {
            assert_eq!(
                port.voq(output).stripe_size(),
                1,
                "idle VOQ {output} should shrink"
            );
        }
    }
}
