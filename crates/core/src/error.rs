//! Error types for switch construction and configuration.

use std::fmt;

/// Errors that can arise when constructing or configuring a switch.
#[derive(Debug, Clone, PartialEq)]
pub enum SwitchError {
    /// The requested port count is not a power of two.
    ///
    /// The Sprinklers design requires `N` to be a power of two so that every
    /// stripe interval can be a dyadic interval (§3.1).
    PortCountNotPowerOfTwo {
        /// The offending port count.
        n: usize,
    },
    /// The requested port count is zero or too small to be meaningful.
    PortCountTooSmall {
        /// The offending port count.
        n: usize,
    },
    /// The requested port count exceeds what the compact [`Packet`] routing
    /// fields can address (see [`crate::packet::MAX_PORTS`]).
    ///
    /// [`Packet`]: crate::packet::Packet
    PortCountTooLarge {
        /// The offending port count.
        n: usize,
        /// The largest supported port count.
        max: usize,
    },
    /// A packet referenced a port index outside `0..N`.
    PortOutOfRange {
        /// The offending port index.
        port: usize,
        /// The switch size.
        n: usize,
    },
    /// A traffic matrix had the wrong dimensions for the switch.
    MatrixDimensionMismatch {
        /// Dimension of the supplied matrix.
        got: usize,
        /// Dimension required by the switch.
        expected: usize,
    },
    /// A rate was negative or otherwise not a valid probability/rate.
    InvalidRate {
        /// The offending rate.
        rate: f64,
    },
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchError::PortCountNotPowerOfTwo { n } => {
                write!(f, "switch size {n} is not a power of two")
            }
            SwitchError::PortCountTooSmall { n } => {
                write!(f, "switch size {n} is too small (need at least 2 ports)")
            }
            SwitchError::PortCountTooLarge { n, max } => {
                write!(
                    f,
                    "switch size {n} exceeds the {max}-port bound of the compact packet layout"
                )
            }
            SwitchError::PortOutOfRange { port, n } => {
                write!(
                    f,
                    "port index {port} is out of range for an {n}-port switch"
                )
            }
            SwitchError::MatrixDimensionMismatch { got, expected } => {
                write!(
                    f,
                    "traffic matrix is {got}x{got} but the switch has {expected} ports"
                )
            }
            SwitchError::InvalidRate { rate } => {
                write!(f, "rate {rate} is not a valid non-negative finite rate")
            }
        }
    }
}

impl std::error::Error for SwitchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SwitchError::PortCountNotPowerOfTwo { n: 12 };
        assert!(e.to_string().contains("12"));
        let e = SwitchError::PortOutOfRange { port: 9, n: 8 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('8'));
        let e = SwitchError::MatrixDimensionMismatch {
            got: 4,
            expected: 8,
        };
        assert!(e.to_string().contains('4'));
        let e = SwitchError::InvalidRate { rate: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = SwitchError::PortCountTooSmall { n: 0 };
        assert!(e.to_string().contains('0'));
        let e = SwitchError::PortCountTooLarge {
            n: 1 << 20,
            max: 65535,
        };
        assert!(e.to_string().contains("1048576"));
        assert!(e.to_string().contains("65535"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<SwitchError>();
    }
}
