//! The full Sprinklers switch: two switching fabrics with deterministic
//! periodic connection patterns, N input ports and N intermediate ports.
//!
//! * At slot `t` the **first** fabric connects input `i` to intermediate port
//!   `(i + t) mod N` (the paper's "increasing" sequence).
//! * At slot `t` the **second** fabric connects intermediate port `ℓ` to
//!   output `(ℓ − t) mod N` (the "decreasing" sequence), equivalently output
//!   `j` receives from intermediate port `(j + t) mod N`.
//!
//! Each port transfers at most one packet per slot.  Within a slot the second
//! fabric is processed before the first, so a packet never crosses both
//! fabrics in the same slot (store-and-forward).

use crate::config::{SizingMode, SprinklersConfig};
use crate::input_port::SprinklersInputPort;
use crate::intermediate_port::SprinklersIntermediatePort;
use crate::matrix::TrafficMatrix;
use crate::occupancy::{OccupancySet, PortMask};
use crate::ols::WeaklyUniformOls;
use crate::packet::{DeliveredPacket, Packet};
use crate::par::StepPool;
use crate::sizing::stripe_size;
use crate::switch::{DeliverySink, Switch, SwitchStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Minimum occupied ports in a fabric phase before the sharded parallel walk
/// is worth its dispatch cost (two condvar round trips per phase); below it
/// the serial walk runs.  Switching between the two paths is free of
/// determinism risk because they are byte-equivalent by construction — the
/// parallel path merges every cross-port effect in ascending port order, so
/// this constant (like the `threads` knob itself) is a pure perf setting.
const PAR_MIN_OCCUPIED: usize = 64;

/// Pool and scratch state for sharded stepping, present when the switch was
/// hinted `threads >= 2` via [`Switch::set_threads`].
struct ParCtx {
    pool: StepPool,
    /// Contiguous half-open port ranges, one per shard, covering `0..n`.
    ranges: Vec<(usize, usize)>,
    /// `ranges[s]` as a [`PortMask`], the operand of the fused
    /// occupancy-∩-eligibility query each shard walks.
    masks: Vec<PortMask>,
    /// Phase-A (second fabric) scratch: `(intermediate, packet)` dequeued by
    /// each shard, merged serially in ascending shard order.
    deliveries: Vec<Vec<(usize, Packet)>>,
    /// Phase-B (first fabric) scratch: `(input, intermediate, packet,
    /// input_still_servable)` per shard.
    pushes: Vec<Vec<(usize, usize, Packet, bool)>>,
}

impl ParCtx {
    fn new(n: usize, shards: usize) -> Self {
        debug_assert!(shards >= 2 && shards <= n);
        let base = n / shards;
        let rem = n % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut lo = 0usize;
        for s in 0..shards {
            let width = base + usize::from(s < rem);
            ranges.push((lo, lo + width));
            lo += width;
        }
        debug_assert_eq!(lo, n);
        let masks = ranges
            .iter()
            .map(|&(lo, hi)| {
                let mut mask = PortMask::new(n);
                mask.set_range(lo, hi);
                mask
            })
            .collect();
        ParCtx {
            pool: StepPool::new(shards - 1),
            deliveries: ranges
                .iter()
                .map(|&(lo, hi)| Vec::with_capacity(hi - lo))
                .collect(),
            pushes: ranges
                .iter()
                .map(|&(lo, hi)| Vec::with_capacity(hi - lo))
                .collect(),
            ranges,
            masks,
        }
    }

    fn shards(&self) -> usize {
        self.ranges.len()
    }
}

/// A complete Sprinklers switch.
pub struct SprinklersSwitch {
    config: SprinklersConfig,
    n: usize,
    ols: WeaklyUniformOls,
    inputs: Vec<SprinklersInputPort>,
    intermediates: Vec<SprinklersIntermediatePort>,
    /// Inputs whose scheduler holds at least one servable packet — the ports
    /// the first-fabric pass has to probe.  Packets still accumulating in VOQ
    /// ready queues don't set the bit (the fabric can't serve them), so a
    /// lightly loaded switch walks only the handful of inputs with plastered
    /// stripes instead of all N.
    occupied_inputs: OccupancySet,
    /// Intermediate ports holding any packet (eligible or staged) — the ports
    /// the second-fabric pass has to visit.
    occupied_intermediates: OccupancySet,
    /// True for adaptive sizing, which observes idle slots (VOQs shrink) and
    /// therefore still needs the dense per-slot maintenance pass.
    adaptive: bool,
    /// Running totals so [`Switch::stats`] is O(1) instead of an O(N) rescan
    /// at every engine sampling boundary.
    queued_inputs: usize,
    queued_intermediates: usize,
    /// Running total of committed stripe-size changes (see
    /// [`SprinklersSwitch::total_resizes`]).
    resizes: u64,
    arrivals: u64,
    departures: u64,
    /// Sharded-stepping state, present when `set_threads(>= 2)` was applied.
    /// `None` means pure serial stepping — today's default.
    par: Option<ParCtx>,
}

impl SprinklersSwitch {
    /// Build a switch from a configuration and an RNG seed (which determines
    /// the weakly uniform random OLS and nothing else).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`SprinklersSwitch::try_new`] for a fallible constructor.
    pub fn new(config: SprinklersConfig, seed: u64) -> Self {
        Self::try_new(config, seed).expect("invalid Sprinklers configuration")
    }

    /// Fallible constructor.
    pub fn try_new(config: SprinklersConfig, seed: u64) -> Result<Self, crate::error::SwitchError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let ols = WeaklyUniformOls::random(config.n, &mut rng);
        Ok(Self::with_ols(config, ols))
    }

    /// Build a switch with an explicitly provided OLS (useful for tests and
    /// for reproducing a specific configuration).
    pub fn with_ols(config: SprinklersConfig, ols: WeaklyUniformOls) -> Self {
        assert_eq!(ols.order(), config.n);
        let n = config.n;
        let inputs = (0..n)
            .map(|i| SprinklersInputPort::new(i, &config, &ols))
            .collect();
        let intermediates = (0..n)
            .map(|l| SprinklersIntermediatePort::new(l, n, config.alignment))
            .collect();
        let adaptive = matches!(config.sizing, SizingMode::Adaptive(_));
        SprinklersSwitch {
            config,
            n,
            ols,
            inputs,
            intermediates,
            occupied_inputs: OccupancySet::new(n),
            occupied_intermediates: OccupancySet::new(n),
            adaptive,
            queued_inputs: 0,
            queued_intermediates: 0,
            resizes: 0,
            arrivals: 0,
            departures: 0,
            par: None,
        }
    }

    /// The switch's OLS (primary intermediate port of every VOQ).
    pub fn ols(&self) -> &WeaklyUniformOls {
        &self.ols
    }

    /// The switch's configuration.
    pub fn config(&self) -> &SprinklersConfig {
        &self.config
    }

    /// Current stripe size of the VOQ at `input` destined to `output`.
    pub fn voq_stripe_size(&self, input: usize, output: usize) -> usize {
        self.inputs[input].voq(output).stripe_size()
    }

    /// Reconfigure every VOQ's stripe size from a new traffic matrix.  Each
    /// VOQ that changes size goes through the clearance phase (§5) before the
    /// new size takes effect, so packet order is preserved across the
    /// reconfiguration.
    pub fn reconfigure_from_matrix(&mut self, matrix: &TrafficMatrix) {
        assert_eq!(matrix.n(), self.n);
        for input in 0..self.n {
            let before = self.inputs[input].resizes_committed();
            for output in 0..self.n {
                let size = stripe_size(matrix.rate(input, output), self.n);
                self.inputs[input].request_resize(output, size);
            }
            self.resizes += self.inputs[input].resizes_committed() - before;
            // Immediately-committed resizes can release backlogged stripes
            // into the scheduler; reflect that in the occupancy bitset.
            if self.inputs[input].has_servable() {
                self.occupied_inputs.insert(input);
            }
        }
    }

    /// Cumulative number of committed stripe-size changes across all VOQs,
    /// from a running counter bumped on commit (O(1); this used to be an
    /// O(N²) rescan of every VOQ per call).
    pub fn total_resizes(&self) -> u64 {
        self.resizes
    }

    /// Intermediate port connected to input `i` at slot `t` (first fabric).
    pub fn first_fabric(&self, input: usize, slot: u64) -> usize {
        (input + (slot % self.n as u64) as usize) % self.n
    }

    /// Output port connected to intermediate `l` at slot `t` (second fabric).
    pub fn second_fabric(&self, intermediate: usize, slot: u64) -> usize {
        let t = (slot % self.n as u64) as usize;
        (intermediate + self.n - t) % self.n
    }

    /// Advance one slot whose fabric phase `t == slot mod N` the caller has
    /// already computed.  [`Switch::step`] computes the phase from scratch;
    /// [`Switch::step_batch`] rotates it across the batch so the inner loop
    /// performs no `u64` modulo at all.
    ///
    /// Both fabric passes walk the occupancy bitsets instead of `0..N`, so a
    /// slot costs O(occupied ports): empty intermediate ports deliver nothing
    /// and inputs without plastered stripes have nothing the fabric could
    /// serve, exactly as in the dense loops — the bitsets only skip provable
    /// no-op probes, which is what keeps the delivery stream byte-identical.
    // lint: hot-path
    fn step_at(&mut self, slot: u64, t: usize, sink: &mut dyn DeliverySink) {
        let n = self.n;
        // `par` is taken out of `self` for the duration of the step so the
        // phase helpers can borrow switch fields and pool/scratch state
        // independently; it is restored before any early return below.
        match self.par.take() {
            Some(mut par) => {
                self.second_fabric_parallel(slot, t, sink, &mut par);
                self.first_fabric_parallel(slot, t, &mut par);
                self.par = Some(par);
            }
            None => {
                self.second_fabric_serial(slot, t, sink);
                self.first_fabric_serial(slot, t);
            }
        }

        // Per-slot maintenance.  Only adaptive sizing observes idle slots
        // (VOQs shrink), so only it pays the dense pass; for fixed and
        // matrix-driven sizing a VOQ's `on_slot` is a provable no-op — sizing
        // never changes and complete stripes are collected at the call that
        // completes them (arrive, delivery, or an explicit resize).
        if self.adaptive {
            for i in 0..n {
                let before = self.inputs[i].resizes_committed();
                self.inputs[i].maintain(slot);
                self.resizes += self.inputs[i].resizes_committed() - before;
                if self.inputs[i].has_servable() {
                    self.occupied_inputs.insert(i);
                }
            }
        }
    }

    /// Second fabric, serial walk: packets that arrived at the intermediate
    /// stage in earlier slots may move to their outputs.  Ascending port
    /// order, like the dense loop; the walk reads a copy of each occupied
    /// word (found by the chunked word scan), which is safe because the body
    /// only clears bits of ports it has already visited.
    // lint: hot-path
    fn second_fabric_serial(&mut self, slot: u64, t: usize, sink: &mut dyn DeliverySink) {
        let n = self.n;
        let mut w = 0usize;
        while let Some(wi) = self.occupied_intermediates.next_occupied_word(w) {
            let mut bits = self.occupied_intermediates.word(wi);
            while bits != 0 {
                let l = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.intermediates[l].release_eligible(slot);
                let output = if l >= t { l - t } else { l + n - t };
                if let Some(packet) = self.intermediates[l].dequeue(output) {
                    debug_assert_eq!(packet.output(), output);
                    if self.intermediates[l].queued_packets() == 0 {
                        self.occupied_intermediates.remove(l);
                    }
                    self.queued_intermediates -= 1;
                    self.deliver_from_intermediate(packet, slot, sink);
                }
            }
            w = wi + 1;
        }
    }

    /// Second fabric, sharded walk: each shard visits the occupied
    /// intermediates of its own contiguous port range (via the fused
    /// occupancy-∩-range-mask query), performs the port-local work —
    /// `release_eligible` plus the output-FIFO dequeue — and records its
    /// dequeues; every cross-port effect (bitset updates, counters, VOQ
    /// delivery notifications, sink pushes) happens afterwards in ascending
    /// shard order, which is ascending port order, so the delivery stream is
    /// byte-identical to the serial walk.
    // lint: hot-path
    fn second_fabric_parallel(
        &mut self,
        slot: u64,
        t: usize,
        sink: &mut dyn DeliverySink,
        par: &mut ParCtx,
    ) {
        if self.occupied_intermediates.len() < PAR_MIN_OCCUPIED {
            self.second_fabric_serial(slot, t, sink);
            return;
        }
        let n = self.n;
        let occupied = &self.occupied_intermediates;
        let ranges = &par.ranges;
        let masks = &par.masks;
        par.pool.run_on_ranges(
            &mut self.intermediates,
            ranges,
            &mut par.deliveries,
            |s, local, out| {
                out.clear();
                let (lo, _hi) = ranges[s];
                let mask = &masks[s];
                let mut from = lo;
                while let Some(l) = occupied.next_occupied_matching(from, mask) {
                    from = l + 1;
                    let port = &mut local[l - lo];
                    port.release_eligible(slot);
                    let output = if l >= t { l - t } else { l + n - t };
                    if let Some(packet) = port.dequeue(output) {
                        debug_assert_eq!(packet.output(), output);
                        out.push((l, packet));
                    }
                }
            },
        );
        for s in 0..par.shards() {
            for (l, packet) in par.deliveries[s].drain(..) {
                if self.intermediates[l].queued_packets() == 0 {
                    self.occupied_intermediates.remove(l);
                }
                self.queued_intermediates -= 1;
                self.deliver_from_intermediate(packet, slot, sink);
            }
        }
    }

    /// Cross-port bookkeeping for one second-fabric delivery: notify the
    /// originating VOQ (clearance-phase accounting; a committing resize can
    /// release backlogged stripes into the input's scheduler, which may set
    /// its occupancy bit) and push the packet into the sink.  Shared verbatim
    /// by the serial walk and the parallel merge — it *is* the ordered-merge
    /// body, so the two paths cannot drift apart.
    // lint: hot-path
    #[inline]
    fn deliver_from_intermediate(
        &mut self,
        packet: Packet,
        slot: u64,
        sink: &mut dyn DeliverySink,
    ) {
        let input = packet.input();
        let before = self.inputs[input].resizes_committed();
        self.inputs[input].packet_delivered(packet.output());
        self.resizes += self.inputs[input].resizes_committed() - before;
        if self.inputs[input].has_servable() {
            self.occupied_inputs.insert(input);
        }
        self.departures += 1;
        sink.deliver(DeliveredPacket::new(packet, slot));
    }

    /// First fabric, serial walk: each occupied input may push one packet to
    /// the intermediate port it is connected to in this slot.
    // lint: hot-path
    fn first_fabric_serial(&mut self, slot: u64, t: usize) {
        let n = self.n;
        let mut w = 0usize;
        while let Some(wi) = self.occupied_inputs.next_occupied_word(w) {
            let mut bits = self.occupied_inputs.word(wi);
            while bits != 0 {
                let i = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let l = if i + t >= n { i + t - n } else { i + t };
                if let Some(packet) = self.inputs[i].dequeue(l) {
                    debug_assert_eq!(packet.intermediate(), l);
                    if !self.inputs[i].has_servable() {
                        self.occupied_inputs.remove(i);
                    }
                    self.queued_inputs -= 1;
                    self.queued_intermediates += 1;
                    self.occupied_intermediates.insert(l);
                    self.intermediates[l].receive(packet, slot);
                }
            }
            w = wi + 1;
        }
    }

    /// First fabric, sharded walk: each shard dequeues from the occupied
    /// inputs of its own port range (the input-side LSF dequeue is the
    /// expensive part) and records `(input, intermediate, packet,
    /// still_servable)`; the intermediate-side `receive` and all bitset and
    /// counter updates run in the ascending-shard merge.  The first fabric
    /// connects input `i` to intermediate `(i + t) mod n` — a bijection — so
    /// at most one packet lands on any intermediate per slot and the merge
    /// order matches the serial walk's ascending-input order exactly.
    // lint: hot-path
    fn first_fabric_parallel(&mut self, slot: u64, t: usize, par: &mut ParCtx) {
        if self.occupied_inputs.len() < PAR_MIN_OCCUPIED {
            self.first_fabric_serial(slot, t);
            return;
        }
        let n = self.n;
        let occupied = &self.occupied_inputs;
        let ranges = &par.ranges;
        let masks = &par.masks;
        par.pool.run_on_ranges(
            &mut self.inputs,
            ranges,
            &mut par.pushes,
            |s, local, out| {
                out.clear();
                let (lo, _hi) = ranges[s];
                let mask = &masks[s];
                let mut from = lo;
                while let Some(i) = occupied.next_occupied_matching(from, mask) {
                    from = i + 1;
                    let l = if i + t >= n { i + t - n } else { i + t };
                    let port = &mut local[i - lo];
                    if let Some(packet) = port.dequeue(l) {
                        debug_assert_eq!(packet.intermediate(), l);
                        out.push((i, l, packet, port.has_servable()));
                    }
                }
            },
        );
        for s in 0..par.shards() {
            for (i, l, packet, still_servable) in par.pushes[s].drain(..) {
                if !still_servable {
                    self.occupied_inputs.remove(i);
                }
                self.queued_inputs -= 1;
                self.queued_intermediates += 1;
                self.occupied_intermediates.insert(l);
                self.intermediates[l].receive(packet, slot);
            }
        }
    }
}

impl Switch for SprinklersSwitch {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &'static str {
        "sprinklers"
    }

    fn arrive(&mut self, packet: Packet) {
        debug_assert!(packet.input() < self.n && packet.output() < self.n);
        self.arrivals += 1;
        self.queued_inputs += 1;
        let input = packet.input();
        let before = self.inputs[input].resizes_committed();
        self.inputs[input].arrive(packet);
        self.resizes += self.inputs[input].resizes_committed() - before;
        // The arrival may have completed a stripe (or, under adaptive
        // sizing, committed a resize that released backlogged ones).
        if self.inputs[input].has_servable() {
            self.occupied_inputs.insert(input);
        }
    }

    fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
        let t = (slot % self.n as u64) as usize;
        self.step_at(slot, t, sink);
    }

    fn step_batch(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink) {
        // Whole-switch elision is the degenerate case of the per-port
        // occupancy check: when both bitsets are empty, a non-adaptive step
        // is a provable no-op — both fabric passes have no port to visit, and
        // any packets still parked in VOQ ready queues (stranded partial
        // stripes) can only move on an arrive/delivery/resize event, none of
        // which happens mid-batch — so the rest of an arrival-free batch
        // returns immediately.  Adaptive sizing observes idle slots (VOQs
        // shrink), so it steps every slot.
        let elidable = !self.adaptive;
        crate::switch::step_batch_rotating(self.n, first_slot, count, |slot, t| {
            if elidable && self.occupied_inputs.is_empty() && self.occupied_intermediates.is_empty()
            {
                return false;
            }
            self.step_at(slot, t, sink);
            true
        });
    }

    fn set_threads(&mut self, threads: usize) {
        // One shard needs at least one port; beyond `n` extra threads could
        // only idle.  `threads <= 1` (and 0) means serial stepping, dropping
        // any existing pool.
        let shards = threads.max(1).min(self.n.max(1));
        if shards <= 1 {
            self.par = None;
        } else if self.par.as_ref().is_none_or(|par| par.shards() != shards) {
            self.par = Some(ParCtx::new(self.n, shards));
        }
    }

    fn stats(&self) -> SwitchStats {
        SwitchStats {
            queued_at_inputs: self.queued_inputs,
            queued_at_intermediates: self.queued_intermediates,
            queued_at_outputs: 0,
            total_arrivals: self.arrivals,
            total_departures: self.departures,
            total_dropped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AlignmentMode, InputDiscipline, SizingMode};

    fn pkt(input: usize, output: usize, id: u64, slot: u64, seq: u64) -> Packet {
        Packet::new(input, output, id, slot).with_voq_seq(seq)
    }

    fn drain(sw: &mut SprinklersSwitch, from_slot: u64, slots: u64) -> Vec<DeliveredPacket> {
        let mut out = Vec::new();
        for s in from_slot..from_slot + slots {
            sw.step(s, &mut out);
        }
        out
    }

    #[test]
    fn fabric_patterns_are_periodic_and_complementary() {
        let sw = SprinklersSwitch::new(
            SprinklersConfig::new(8).with_sizing(SizingMode::FixedSize(1)),
            1,
        );
        for slot in 0..32u64 {
            for i in 0..8 {
                let l = sw.first_fabric(i, slot);
                assert_eq!(l, (i + slot as usize) % 8);
            }
            for l in 0..8 {
                let j = sw.second_fabric(l, slot);
                // Output j is reached from intermediate (j + t) mod N.
                assert_eq!((j + slot as usize) % 8, l);
            }
        }
    }

    #[test]
    fn single_packet_traverses_the_switch() {
        let mut sw = SprinklersSwitch::new(
            SprinklersConfig::new(8).with_sizing(SizingMode::FixedSize(1)),
            7,
        );
        sw.arrive(pkt(0, 3, 0, 0, 0));
        let delivered = drain(&mut sw, 0, 24);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].packet.output(), 3);
        assert_eq!(sw.stats().total_departures, 1);
        assert_eq!(sw.stats().total_queued(), 0);
    }

    #[test]
    fn packet_is_never_delivered_in_its_arrival_slot_stage() {
        // A packet needs at least one slot to cross each fabric.
        let mut sw = SprinklersSwitch::new(
            SprinklersConfig::new(4).with_sizing(SizingMode::FixedSize(1)),
            3,
        );
        sw.arrive(pkt(0, 0, 0, 0, 0));
        let delivered = drain(&mut sw, 0, 16);
        assert_eq!(delivered.len(), 1);
        assert!(delivered[0].delay() >= 1);
    }

    #[test]
    fn all_packets_are_conserved() {
        let mut sw = SprinklersSwitch::new(
            SprinklersConfig::new(8).with_sizing(SizingMode::FixedSize(2)),
            11,
        );
        let mut id = 0u64;
        let mut seqs = vec![vec![0u64; 8]; 8];
        for slot in 0..64u64 {
            for (input, seq_row) in seqs.iter_mut().enumerate() {
                let output = (input + slot as usize) % 8;
                let seq = seq_row[output];
                seq_row[output] += 1;
                sw.arrive(pkt(input, output, id, slot, seq));
                id += 1;
            }
            sw.step(slot, &mut crate::switch::NullSink);
        }
        // Drain: with fixed stripe size 2 every VOQ has an even number of
        // packets (each VOQ received exactly 8 packets above), so everything
        // can leave the switch.
        let mut counter = crate::switch::CountingSink::default();
        for slot in 64..64 + 1024u64 {
            sw.step(slot, &mut counter);
        }
        assert_eq!(sw.stats().total_departures, id);
        assert!(
            counter.data_packets > 0,
            "the drain phase must deliver packets"
        );
        assert_eq!(sw.stats().total_queued(), 0);
    }

    #[test]
    fn voq_packets_depart_in_order() {
        // Hammer a single VOQ and check departures are in voq_seq order.
        for discipline in [InputDiscipline::StripeAtomic, InputDiscipline::RowScan] {
            for alignment in [AlignmentMode::Immediate, AlignmentMode::StripeComplete] {
                let mut sw = SprinklersSwitch::new(
                    SprinklersConfig::new(8)
                        .with_sizing(SizingMode::FixedSize(4))
                        .with_input_discipline(discipline)
                        .with_alignment(alignment),
                    5,
                );
                let mut delivered = Vec::new();
                for slot in 0..512u64 {
                    // Two packets per slot to VOQ (2, 6) would oversubscribe;
                    // one per slot is the maximum admissible rate.
                    sw.arrive(pkt(2, 6, slot, slot, slot));
                    sw.step(slot, &mut delivered);
                }
                for slot in 512..2048u64 {
                    sw.step(slot, &mut delivered);
                }
                let seqs: Vec<u64> = delivered.iter().map(|d| d.packet.voq_seq).collect();
                let mut sorted = seqs.clone();
                sorted.sort_unstable();
                assert_eq!(
                    seqs, sorted,
                    "reordering with discipline {discipline:?}, alignment {alignment:?}"
                );
                assert_eq!(delivered.len(), 512);
            }
        }
    }

    #[test]
    fn matrix_sizing_sets_expected_stripe_sizes() {
        let n = 32;
        let matrix = TrafficMatrix::uniform(n, 0.8);
        let sw = SprinklersSwitch::new(
            SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(matrix)),
            9,
        );
        // Uniform 0.8 load: every VOQ has rate 0.8/32 = 0.025, F(r) = 32.
        assert_eq!(sw.voq_stripe_size(0, 0), 32);
        let matrix = TrafficMatrix::uniform(n, 0.1);
        let sw = SprinklersSwitch::new(
            SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(matrix)),
            9,
        );
        // 0.1/32 * 32² = 3.2 → size 4.
        assert_eq!(sw.voq_stripe_size(5, 17), 4);
    }

    #[test]
    fn reconfigure_from_matrix_goes_through_clearance() {
        let n = 8;
        let matrix = TrafficMatrix::uniform(n, 0.1);
        let mut sw = SprinklersSwitch::new(
            SprinklersConfig::new(n).with_sizing(SizingMode::FromMatrix(matrix)),
            13,
        );
        let before = sw.voq_stripe_size(0, 0);
        let new_matrix = TrafficMatrix::uniform(n, 0.9);
        sw.reconfigure_from_matrix(&new_matrix);
        // Nothing was in flight, so the resize is immediate.
        assert_ne!(sw.voq_stripe_size(0, 0), before);
        assert!(sw.total_resizes() > 0);
    }

    #[test]
    fn step_batch_matches_slot_at_a_time_stepping() {
        for alignment in [AlignmentMode::Immediate, AlignmentMode::StripeComplete] {
            let config = || {
                SprinklersConfig::new(8)
                    .with_sizing(SizingMode::FixedSize(2))
                    .with_alignment(alignment)
            };
            let mut reference = SprinklersSwitch::new(config(), 11);
            let mut batched = SprinklersSwitch::new(config(), 11);
            // Preload a mix of VOQs, then compare pure stepping.
            for (k, (i, j)) in [(0, 3), (0, 3), (2, 5), (2, 5), (7, 1), (7, 1)]
                .into_iter()
                .enumerate()
            {
                let seq = (k % 2) as u64;
                reference.arrive(pkt(i, j, k as u64, 0, seq));
                batched.arrive(pkt(i, j, k as u64, 0, seq));
            }
            let expected = drain(&mut reference, 0, 40);
            let mut got = Vec::new();
            // Uneven splits, starting mid-frame after the first chunk.
            for (start, count) in [(0u64, 1u32), (1, 7), (8, 13), (21, 19)] {
                batched.step_batch(start, count, &mut got);
            }
            assert_eq!(got, expected, "alignment {alignment:?} diverged");
            assert_eq!(batched.stats().total_queued(), 0);
        }
    }

    /// The occupancy bitsets and running counters must agree with brute-force
    /// port scans at every point of a random arrive/step interleaving — at
    /// n = 8 (single bitset word) and n = 128 (two words + summary level).
    #[test]
    fn occupancy_bitsets_agree_with_brute_force_scans() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        fn check(sw: &SprinklersSwitch, context: &str) {
            for i in 0..sw.n {
                assert_eq!(
                    sw.occupied_inputs.contains(i),
                    sw.inputs[i].has_servable(),
                    "{context}: input {i} occupancy bit diverged from the scheduler scan"
                );
            }
            for l in 0..sw.n {
                assert_eq!(
                    sw.occupied_intermediates.contains(l),
                    sw.intermediates[l].queued_packets() > 0,
                    "{context}: intermediate {l} occupancy bit diverged from the port scan"
                );
            }
            assert_eq!(
                sw.queued_inputs,
                sw.inputs.iter().map(|p| p.queued_packets()).sum::<usize>(),
                "{context}: input counter diverged"
            );
            assert_eq!(
                sw.queued_intermediates,
                sw.intermediates
                    .iter()
                    .map(|p| p.queued_packets())
                    .sum::<usize>(),
                "{context}: intermediate counter diverged"
            );
        }

        for n in [8usize, 128] {
            for alignment in [AlignmentMode::Immediate, AlignmentMode::StripeComplete] {
                let mut sw = SprinklersSwitch::new(
                    SprinklersConfig::new(n)
                        .with_sizing(SizingMode::FixedSize(2))
                        .with_alignment(alignment),
                    3,
                );
                let mut rng = StdRng::seed_from_u64(42);
                let mut voq_seq = vec![0u64; n * n];
                let mut id = 0u64;
                for slot in 0..(6 * n as u64) {
                    for input in 0..n {
                        if rng.gen_range(0.0..1.0) < 0.3 {
                            let output = rng.gen_range(0..n);
                            let key = input * n + output;
                            sw.arrive(pkt(input, output, id, slot, voq_seq[key]));
                            voq_seq[key] += 1;
                            id += 1;
                        }
                    }
                    sw.step(slot, &mut crate::switch::NullSink);
                    if slot % 5 == 0 {
                        check(&sw, &format!("n={n} {alignment:?} slot={slot}"));
                    }
                }
                for slot in (6 * n as u64)..(20 * n as u64) {
                    sw.step(slot, &mut crate::switch::NullSink);
                }
                check(&sw, &format!("n={n} {alignment:?} post-drain"));
            }
        }
    }

    /// The sharded parallel step must reproduce the serial delivery stream
    /// byte for byte.  n = 256 at high load pushes both fabric phases well
    /// past `PAR_MIN_OCCUPIED`, so the pool path (not just its serial
    /// fallback) is what's being pinned; thread counts that do not divide n
    /// exercise uneven shard ranges.
    #[test]
    fn parallel_stepping_is_byte_identical_to_serial() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let n = 256usize;
        let build = || {
            SprinklersSwitch::new(
                SprinklersConfig::new(n).with_sizing(SizingMode::FixedSize(2)),
                17,
            )
        };
        // Pre-generate a dense arrival schedule shared by every run.
        let mut rng = StdRng::seed_from_u64(99);
        let mut voq_seq = vec![0u64; n * n];
        let mut arrivals: Vec<Vec<Packet>> = Vec::new();
        let mut id = 0u64;
        let offered = 3 * n as u64;
        for slot in 0..offered {
            let mut this_slot = Vec::new();
            for input in 0..n {
                if rng.gen_range(0.0..1.0) < 0.85 {
                    let output = rng.gen_range(0..n);
                    let key = input * n + output;
                    this_slot.push(pkt(input, output, id, slot, voq_seq[key]));
                    voq_seq[key] += 1;
                    id += 1;
                }
            }
            arrivals.push(this_slot);
        }
        let total = offered + 6 * n as u64;
        let run = |threads: usize| -> (Vec<DeliveredPacket>, SwitchStats) {
            let mut sw = build();
            sw.set_threads(threads);
            let mut out = Vec::new();
            for slot in 0..total {
                if let Some(batch) = arrivals.get(slot as usize) {
                    for p in batch {
                        sw.arrive(p.clone());
                    }
                }
                sw.step(slot, &mut out);
            }
            (out, sw.stats())
        };
        let (reference, ref_stats) = run(1);
        assert!(
            reference.len() > 1000,
            "workload too small to exercise the parallel path"
        );
        for threads in [2usize, 3, 4, 7] {
            let (got, stats) = run(threads);
            assert_eq!(got, reference, "threads={threads} diverged from serial");
            assert_eq!(stats, ref_stats, "threads={threads} stats diverged");
        }
        // Oversized and degenerate hints are clamped, not errors.
        let mut sw = build();
        sw.set_threads(10_000);
        sw.set_threads(0);
        sw.step(0, &mut crate::switch::NullSink);
    }

    #[test]
    fn stats_track_occupancy() {
        let mut sw = SprinklersSwitch::new(
            SprinklersConfig::new(4).with_sizing(SizingMode::FixedSize(2)),
            1,
        );
        sw.arrive(pkt(0, 1, 0, 0, 0));
        assert_eq!(sw.stats().queued_at_inputs, 1);
        assert_eq!(sw.stats().total_arrivals, 1);
        sw.arrive(pkt(0, 1, 1, 0, 1));
        assert_eq!(sw.stats().queued_at_inputs, 2);
    }
}
