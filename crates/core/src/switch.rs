//! The `Switch` abstraction shared by Sprinklers and every baseline, and the
//! push-based [`DeliverySink`] that receives delivered packets.
//!
//! A switch in this workspace is a synchronous, slotted-time N×N packet
//! switch: packets are injected at input ports with [`Switch::arrive`] and the
//! whole switch advances one time slot with [`Switch::step`], which *pushes*
//! every packet that reaches an output port during that slot into a
//! caller-provided [`DeliverySink`].  The engine in `sprinklers-sim` drives
//! any implementation of this trait, so Sprinklers and the baselines
//! (baseline load-balanced switch, output-queued, UFS, FOFF, Padded Frames,
//! TCP hashing) are directly comparable.
//!
//! # Why a sink instead of a returned `Vec`?
//!
//! The paper's Largest-Stripe-First scheduler is explicitly constant time per
//! slot (§3.4.2); a `tick() -> Vec<DeliveredPacket>` API would undo that by
//! heap-allocating on every slot of every simulated switch — millions of
//! allocations per run at evaluation scale.  With a sink, the hot loop
//! performs **zero per-slot allocations** in steady state: the metrics
//! pipeline consumes deliveries in place, benchmarks drive a no-op
//! [`NullSink`], and tests that want a `Vec` simply pass one (`Vec` implements
//! `DeliverySink`).
//!
//! The sink parameter is `&mut dyn DeliverySink` rather than
//! `&mut impl DeliverySink` so the trait stays object-safe: the scheme
//! registry hands out `Box<dyn Switch>` and the engine drives it through the
//! same code path as a concrete switch.

use crate::packet::{DeliveredPacket, Packet};
use serde::{Deserialize, Serialize};

/// Receives packets as they are delivered to output ports.
///
/// Implementations must be cheap: `deliver` sits on the per-slot fast path of
/// every switch.  `Vec<DeliveredPacket>` collects deliveries for inspection,
/// [`NullSink`] discards them (drain loops, throughput benchmarks), and
/// [`CountingSink`] tallies them without storing; the metrics pipeline in
/// `sprinklers-sim` feeds its delay/reordering statistics directly from
/// `deliver`.
pub trait DeliverySink {
    /// Accept one packet that crossed the second fabric into its output.
    fn deliver(&mut self, delivered: DeliveredPacket);
}

impl DeliverySink for Vec<DeliveredPacket> {
    fn deliver(&mut self, delivered: DeliveredPacket) {
        self.push(delivered);
    }
}

impl<S: DeliverySink + ?Sized> DeliverySink for &mut S {
    fn deliver(&mut self, delivered: DeliveredPacket) {
        (**self).deliver(delivered);
    }
}

/// A sink that discards every delivery (for drain loops and benchmarks).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl DeliverySink for NullSink {
    fn deliver(&mut self, _delivered: DeliveredPacket) {}
}

/// A sink that counts deliveries without storing them.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    /// Data packets delivered.
    pub data_packets: u64,
    /// Padding (fake) packets delivered by padding-based schemes.
    pub padding_packets: u64,
}

impl CountingSink {
    /// Total deliveries, data and padding alike.
    pub fn total(&self) -> u64 {
        self.data_packets + self.padding_packets
    }
}

impl DeliverySink for CountingSink {
    fn deliver(&mut self, delivered: DeliveredPacket) {
        if delivered.packet.is_padding {
            self.padding_packets += 1;
        } else {
            self.data_packets += 1;
        }
    }
}

/// Aggregate occupancy/throughput counters a switch exposes for metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Packets currently buffered at input ports (including VOQ ready queues).
    pub queued_at_inputs: usize,
    /// Packets currently buffered at intermediate ports.
    pub queued_at_intermediates: usize,
    /// Packets currently buffered at output-side resequencing buffers (zero
    /// for switches that do not need them).
    pub queued_at_outputs: usize,
    /// Total packets accepted so far.
    pub total_arrivals: u64,
    /// Total data packets delivered to outputs so far.
    pub total_departures: u64,
}

impl SwitchStats {
    /// Total packets currently inside the switch.
    pub fn total_queued(&self) -> usize {
        self.queued_at_inputs + self.queued_at_intermediates + self.queued_at_outputs
    }
}

/// A synchronous slotted-time N×N switch.
pub trait Switch {
    /// Number of ports.
    fn n(&self) -> usize;

    /// Short human-readable name of the scheduling scheme (used in reports
    /// and as the scheme's key in the `sprinklers-sim` registry).
    fn name(&self) -> &'static str;

    /// Inject a packet at its input port.  The packet's `arrival_slot` field
    /// is treated as the current time for rate-measurement purposes, so the
    /// caller should arrange `arrive` calls in nondecreasing `arrival_slot`
    /// order and call [`Switch::step`] with the matching slot afterwards.
    fn arrive(&mut self, packet: Packet);

    /// Advance the switch by one time slot.  `slot` must increase by exactly 1
    /// between consecutive calls (starting from 0).  Every data packet (and,
    /// for padding-based schemes, padding packet) delivered to an output port
    /// during this slot is pushed into `sink`; at most one packet per output
    /// can be delivered per slot.
    ///
    /// Implementations must not allocate on this path in steady state.
    fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink);

    /// Current occupancy and throughput counters.
    fn stats(&self) -> SwitchStats;
}

impl<T: Switch + ?Sized> Switch for Box<T> {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn arrive(&mut self, packet: Packet) {
        (**self).arrive(packet)
    }
    fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
        (**self).step(slot, sink)
    }
    fn stats(&self) -> SwitchStats {
        (**self).stats()
    }
}

impl<T: Switch + ?Sized> Switch for &mut T {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn arrive(&mut self, packet: Packet) {
        (**self).arrive(packet)
    }
    fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
        (**self).step(slot, sink)
    }
    fn stats(&self) -> SwitchStats {
        (**self).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_total_queued_sums_all_stages() {
        let s = SwitchStats {
            queued_at_inputs: 3,
            queued_at_intermediates: 5,
            queued_at_outputs: 2,
            total_arrivals: 100,
            total_departures: 90,
        };
        assert_eq!(s.total_queued(), 10);
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = SwitchStats::default();
        assert_eq!(s.total_queued(), 0);
        assert_eq!(s.total_arrivals, 0);
    }

    fn delivered(is_padding: bool) -> DeliveredPacket {
        let packet = if is_padding {
            Packet::padding(0, 1, 0)
        } else {
            Packet::new(0, 1, 7, 0)
        };
        DeliveredPacket::new(packet, 5)
    }

    #[test]
    fn vec_sink_collects_deliveries() {
        let mut sink: Vec<DeliveredPacket> = Vec::new();
        sink.deliver(delivered(false));
        sink.deliver(delivered(true));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink[0].packet.id, 7);
    }

    #[test]
    fn null_sink_discards_everything() {
        let mut sink = NullSink;
        for _ in 0..100 {
            sink.deliver(delivered(false));
        }
    }

    #[test]
    fn counting_sink_separates_data_from_padding() {
        let mut sink = CountingSink::default();
        sink.deliver(delivered(false));
        sink.deliver(delivered(false));
        sink.deliver(delivered(true));
        assert_eq!(sink.data_packets, 2);
        assert_eq!(sink.padding_packets, 1);
        assert_eq!(sink.total(), 3);
    }

    #[test]
    fn mut_ref_sink_forwards() {
        let mut inner = CountingSink::default();
        {
            let sink = &mut inner;
            sink.deliver(delivered(false));
        }
        assert_eq!(inner.data_packets, 1);
    }
}
