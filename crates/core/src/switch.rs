//! The `Switch` abstraction shared by Sprinklers and every baseline, and the
//! push-based [`DeliverySink`] that receives delivered packets.
//!
//! A switch in this workspace is a synchronous, slotted-time N×N packet
//! switch: packets are injected at input ports with [`Switch::arrive`] and the
//! whole switch advances one time slot with [`Switch::step`], which *pushes*
//! every packet that reaches an output port during that slot into a
//! caller-provided [`DeliverySink`].  The engine in `sprinklers-sim` drives
//! any implementation of this trait, so Sprinklers and the baselines
//! (baseline load-balanced switch, output-queued, UFS, FOFF, Padded Frames,
//! TCP hashing) are directly comparable.
//!
//! # Why a sink instead of a returned `Vec`?
//!
//! The paper's Largest-Stripe-First scheduler is explicitly constant time per
//! slot (§3.4.2); a `tick() -> Vec<DeliveredPacket>` API would undo that by
//! heap-allocating on every slot of every simulated switch — millions of
//! allocations per run at evaluation scale.  With a sink, the hot loop
//! performs **zero per-slot allocations** in steady state: the metrics
//! pipeline consumes deliveries in place, benchmarks drive a no-op
//! [`NullSink`], and tests that want a `Vec` simply pass one (`Vec` implements
//! `DeliverySink`).
//!
//! The sink parameter is `&mut dyn DeliverySink` rather than
//! `&mut impl DeliverySink` so the trait stays object-safe: the scheme
//! registry hands out `Box<dyn Switch>` and the engine drives it through the
//! same code path as a concrete switch.

use crate::packet::{DeliveredPacket, Packet};
use serde::{Deserialize, Serialize};

/// Receives packets as they are delivered to output ports.
///
/// Implementations must be cheap: `deliver` sits on the per-slot fast path of
/// every switch.  `Vec<DeliveredPacket>` collects deliveries for inspection,
/// [`NullSink`] discards them (drain loops, throughput benchmarks), and
/// [`CountingSink`] tallies them without storing; the metrics pipeline in
/// `sprinklers-sim` feeds its delay/reordering statistics directly from
/// `deliver`.
pub trait DeliverySink {
    /// Accept one packet that crossed the second fabric into its output.
    fn deliver(&mut self, delivered: DeliveredPacket);
}

impl DeliverySink for Vec<DeliveredPacket> {
    fn deliver(&mut self, delivered: DeliveredPacket) {
        self.push(delivered);
    }
}

impl<S: DeliverySink + ?Sized> DeliverySink for &mut S {
    fn deliver(&mut self, delivered: DeliveredPacket) {
        (**self).deliver(delivered);
    }
}

/// A sink that discards every delivery (for drain loops and benchmarks).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl DeliverySink for NullSink {
    fn deliver(&mut self, _delivered: DeliveredPacket) {}
}

/// A sink that counts deliveries without storing them.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    /// Data packets delivered.
    pub data_packets: u64,
    /// Padding (fake) packets delivered by padding-based schemes.
    pub padding_packets: u64,
}

impl CountingSink {
    /// Total deliveries, data and padding alike.
    pub fn total(&self) -> u64 {
        self.data_packets + self.padding_packets
    }
}

impl DeliverySink for CountingSink {
    fn deliver(&mut self, delivered: DeliveredPacket) {
        if delivered.packet.is_padding() {
            self.padding_packets += 1;
        } else {
            self.data_packets += 1;
        }
    }
}

/// Drive a phase-rotating batched step loop: calls `step(slot, t)` for every
/// slot in `[first_slot, first_slot + count)` with the fabric phase
/// `t == slot mod n` maintained incrementally (one add + compare per slot
/// instead of a `u64` modulo), stopping early when `step` returns `false`
/// (the idle-switch elision).
///
/// This is the one shared loop behind every scheme's [`Switch::step_batch`]
/// override: each implementation passes a closure that performs its own
/// emptiness check and delegates to its per-slot `step_at`, so the rotation
/// and elision mechanics live in exactly one place.
pub fn step_batch_rotating<F>(n: usize, first_slot: u64, count: u32, mut step: F)
where
    F: FnMut(u64, usize) -> bool,
{
    let mut t = (first_slot % n as u64) as usize;
    for k in 0..u64::from(count) {
        if !step(first_slot + k, t) {
            return;
        }
        t += 1;
        if t == n {
            t = 0;
        }
    }
}

/// Aggregate occupancy/throughput counters a switch exposes for metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Packets currently buffered at input ports (including VOQ ready queues).
    pub queued_at_inputs: usize,
    /// Packets currently buffered at intermediate ports.
    pub queued_at_intermediates: usize,
    /// Packets currently buffered at output-side resequencing buffers (zero
    /// for switches that do not need them).
    pub queued_at_outputs: usize,
    /// Total packets accepted so far.
    pub total_arrivals: u64,
    /// Total data packets delivered to outputs so far.
    pub total_departures: u64,
    /// Total data packets dropped so far (fault-injected fabrics; always
    /// zero for single switches, which never lose packets).
    pub total_dropped: u64,
}

impl SwitchStats {
    /// Total packets currently inside the switch.
    pub fn total_queued(&self) -> usize {
        self.queued_at_inputs + self.queued_at_intermediates + self.queued_at_outputs
    }
}

/// A synchronous slotted-time N×N switch.
pub trait Switch {
    /// Number of ports.
    fn n(&self) -> usize;

    /// Short human-readable name of the scheduling scheme (used in reports
    /// and as the scheme's key in the `sprinklers-sim` registry).
    fn name(&self) -> &'static str;

    /// Inject a packet at its input port.  The packet's `arrival_slot` field
    /// is treated as the current time for rate-measurement purposes, so the
    /// caller should arrange `arrive` calls in nondecreasing `arrival_slot`
    /// order and call [`Switch::step`] with the matching slot afterwards.
    fn arrive(&mut self, packet: Packet);

    /// Advance the switch by one time slot.  `slot` must increase by exactly 1
    /// between consecutive calls (starting from 0).  Every data packet (and,
    /// for padding-based schemes, padding packet) delivered to an output port
    /// during this slot is pushed into `sink`; at most one packet per output
    /// can be delivered per slot.
    ///
    /// Implementations must not allocate on this path in steady state.
    fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink);

    /// Advance the switch by `count` consecutive slots starting at
    /// `first_slot`, pushing every delivery into `sink`.
    ///
    /// Semantically this is **exactly** `for k in 0..count { step(first_slot
    /// + k, sink) }` — same packets, same order, same departure slots — and
    /// the default implementation is that loop.  The batched form exists so
    /// callers that step many slots with no interleaved [`Switch::arrive`]
    /// calls (the engine's drain phase, empty arrival slots at light load)
    /// cross the `dyn Switch` boundary once per batch instead of once per
    /// slot, and so implementations can hoist per-slot setup — the
    /// `slot mod N` fabric phase, schedule lookups — out of the inner loop.
    ///
    /// Callers must uphold the same contract as [`Switch::step`]: slots
    /// advance by exactly 1 overall, and packets arriving at slot `s` are
    /// injected before the call that steps `s` — so a batch may never span a
    /// slot whose arrivals have not been injected yet.
    fn step_batch(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink) {
        for k in 0..u64::from(count) {
            self.step(first_slot + k, sink);
        }
    }

    /// Set the number of threads the switch may use *inside* one step.
    ///
    /// This is a pure performance knob, not part of a scenario's scientific
    /// identity: for any value the delivery stream must stay byte-identical
    /// to `threads = 1` (deterministic port sharding + ascending-port merge).
    /// The default implementation ignores the hint — single-threaded stepping
    /// is always a correct implementation of it.  Values are clamped by the
    /// implementation; `0` is treated as `1`.
    fn set_threads(&mut self, _threads: usize) {}

    /// Current occupancy and throughput counters.
    fn stats(&self) -> SwitchStats;
}

/// Anything the simulation engine can drive slot by slot: a single
/// [`Switch`] (every switch is trivially steppable through the blanket impl
/// below) or a composite world such as a multi-switch fabric that routes
/// packets across several internal switches before delivering them.
///
/// The engine only ever needs six operations — how many externally visible
/// ports there are, a label for reports, packet injection, batched stepping,
/// the intra-slot parallelism hint, and the occupancy counters — so this
/// trait is exactly that surface.  The method names are deliberately
/// distinct from [`Switch`]'s (`ports`/`inject`/`advance` instead of
/// `n`/`arrive`/`step_batch`) so a type implementing both traits never
/// produces ambiguous method calls.
///
/// Implementations must uphold the same determinism contract as [`Switch`]:
/// `set_parallelism` is a pure performance knob, and `advance` over any
/// batching of the same slots yields the identical delivery stream.
pub trait Steppable {
    /// Number of externally visible ports (hosts, for a fabric).  Injected
    /// packets address this port space; delivered packets are reported in it.
    fn ports(&self) -> usize;

    /// Human-readable label for reports (a scheme name, a topology tag).
    fn label(&self) -> String;

    /// Inject a packet at its (external) input port.  Same contract as
    /// [`Switch::arrive`]: nondecreasing `arrival_slot`, injected before the
    /// call that advances past its arrival slot.
    fn inject(&mut self, packet: Packet);

    /// Advance `count` consecutive slots starting at `first_slot`, pushing
    /// every external delivery into `sink`.  Semantically identical to
    /// advancing one slot at a time.
    fn advance(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink);

    /// Intra-slot worker-thread hint (see [`Switch::set_threads`]): any value
    /// must yield a byte-identical delivery stream.
    fn set_parallelism(&mut self, threads: usize);

    /// Aggregate occupancy/throughput counters over the whole world.
    fn counters(&self) -> SwitchStats;
}

impl<S: Switch> Steppable for S {
    fn ports(&self) -> usize {
        self.n()
    }
    fn label(&self) -> String {
        self.name().to_string()
    }
    fn inject(&mut self, packet: Packet) {
        self.arrive(packet)
    }
    fn advance(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink) {
        self.step_batch(first_slot, count, sink)
    }
    fn set_parallelism(&mut self, threads: usize) {
        self.set_threads(threads)
    }
    fn counters(&self) -> SwitchStats {
        self.stats()
    }
}

impl<T: Switch + ?Sized> Switch for Box<T> {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn arrive(&mut self, packet: Packet) {
        (**self).arrive(packet)
    }
    fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
        (**self).step(slot, sink)
    }
    fn step_batch(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink) {
        (**self).step_batch(first_slot, count, sink)
    }
    fn set_threads(&mut self, threads: usize) {
        (**self).set_threads(threads)
    }
    fn stats(&self) -> SwitchStats {
        (**self).stats()
    }
}

impl<T: Switch + ?Sized> Switch for &mut T {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn arrive(&mut self, packet: Packet) {
        (**self).arrive(packet)
    }
    fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
        (**self).step(slot, sink)
    }
    fn step_batch(&mut self, first_slot: u64, count: u32, sink: &mut dyn DeliverySink) {
        (**self).step_batch(first_slot, count, sink)
    }
    fn set_threads(&mut self, threads: usize) {
        (**self).set_threads(threads)
    }
    fn stats(&self) -> SwitchStats {
        (**self).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_total_queued_sums_all_stages() {
        let s = SwitchStats {
            queued_at_inputs: 3,
            queued_at_intermediates: 5,
            queued_at_outputs: 2,
            total_arrivals: 100,
            total_departures: 90,
            total_dropped: 0,
        };
        assert_eq!(s.total_queued(), 10);
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = SwitchStats::default();
        assert_eq!(s.total_queued(), 0);
        assert_eq!(s.total_arrivals, 0);
    }

    fn delivered(is_padding: bool) -> DeliveredPacket {
        let packet = if is_padding {
            Packet::padding(0, 1, 0)
        } else {
            Packet::new(0, 1, 7, 0)
        };
        DeliveredPacket::new(packet, 5)
    }

    #[test]
    fn vec_sink_collects_deliveries() {
        let mut sink: Vec<DeliveredPacket> = Vec::new();
        sink.deliver(delivered(false));
        sink.deliver(delivered(true));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink[0].packet.id, 7);
    }

    #[test]
    fn null_sink_discards_everything() {
        let mut sink = NullSink;
        for _ in 0..100 {
            sink.deliver(delivered(false));
        }
    }

    #[test]
    fn counting_sink_separates_data_from_padding() {
        let mut sink = CountingSink::default();
        sink.deliver(delivered(false));
        sink.deliver(delivered(false));
        sink.deliver(delivered(true));
        assert_eq!(sink.data_packets, 2);
        assert_eq!(sink.padding_packets, 1);
        assert_eq!(sink.total(), 3);
    }

    #[test]
    fn mut_ref_sink_forwards() {
        let mut inner = CountingSink::default();
        {
            let sink = &mut inner;
            sink.deliver(delivered(false));
        }
        assert_eq!(inner.data_packets, 1);
    }

    /// A switch that records the slot of every step, to pin the default
    /// `step_batch` (and the blanket impls) to the slot-at-a-time semantics.
    struct SlotRecorder {
        slots: Vec<u64>,
        threads: usize,
    }

    impl Switch for SlotRecorder {
        fn n(&self) -> usize {
            2
        }
        fn name(&self) -> &'static str {
            "slot-recorder"
        }
        fn arrive(&mut self, _packet: Packet) {}
        fn step(&mut self, slot: u64, sink: &mut dyn DeliverySink) {
            self.slots.push(slot);
            sink.deliver(DeliveredPacket::new(Packet::new(0, 1, slot, 0), slot));
        }
        fn set_threads(&mut self, threads: usize) {
            self.threads = threads;
        }
        fn stats(&self) -> SwitchStats {
            SwitchStats::default()
        }
    }

    #[test]
    fn set_threads_defaults_to_a_noop_and_forwards_through_blankets() {
        // The default implementation is a no-op hint.
        struct Minimal;
        impl Switch for Minimal {
            fn n(&self) -> usize {
                1
            }
            fn name(&self) -> &'static str {
                "minimal"
            }
            fn arrive(&mut self, _packet: Packet) {}
            fn step(&mut self, _slot: u64, _sink: &mut dyn DeliverySink) {}
            fn stats(&self) -> SwitchStats {
                SwitchStats::default()
            }
        }
        Minimal.set_threads(8);

        // Box<T> and &mut T forward to the override.
        let mut boxed: Box<dyn Switch> = Box::new(SlotRecorder {
            slots: Vec::new(),
            threads: 1,
        });
        boxed.set_threads(4);
        let mut concrete = SlotRecorder {
            slots: Vec::new(),
            threads: 1,
        };
        fn hint<S: Switch>(mut switch: S) {
            switch.set_threads(3);
        }
        hint(&mut concrete);
        assert_eq!(concrete.threads, 3);
    }

    #[test]
    fn default_step_batch_is_the_sequential_step_loop() {
        let mut sw = SlotRecorder {
            slots: Vec::new(),
            threads: 1,
        };
        let mut sink: Vec<DeliveredPacket> = Vec::new();
        sw.step_batch(10, 4, &mut sink);
        assert_eq!(sw.slots, vec![10, 11, 12, 13]);
        let departures: Vec<u64> = sink.iter().map(|d| d.departure_slot).collect();
        assert_eq!(departures, vec![10, 11, 12, 13]);
    }

    #[test]
    fn default_step_batch_of_zero_slots_is_a_noop() {
        let mut sw = SlotRecorder {
            slots: Vec::new(),
            threads: 1,
        };
        sw.step_batch(7, 0, &mut NullSink);
        assert!(sw.slots.is_empty());
    }

    #[test]
    fn step_batch_rotating_tracks_the_phase_and_stops_on_false() {
        let n = 4;
        let mut seen: Vec<(u64, usize)> = Vec::new();
        step_batch_rotating(n, 6, 7, |slot, t| {
            assert_eq!(t, (slot % n as u64) as usize);
            seen.push((slot, t));
            slot < 10 // ask to stop once slot 10 has been attempted
        });
        let slots: Vec<u64> = seen.iter().map(|&(s, _)| s).collect();
        assert_eq!(slots, vec![6, 7, 8, 9, 10], "stops after the false slot");
        step_batch_rotating(n, 0, 0, |_, _| panic!("zero-slot batch must not step"));
    }

    #[test]
    fn every_switch_is_steppable_through_the_blanket_impl() {
        let mut sw = SlotRecorder {
            slots: Vec::new(),
            threads: 1,
        };
        assert_eq!(sw.ports(), 2);
        assert_eq!(sw.label(), "slot-recorder");
        sw.set_parallelism(5);
        assert_eq!(sw.threads, 5);
        sw.inject(Packet::new(0, 1, 0, 0));
        let mut sink: Vec<DeliveredPacket> = Vec::new();
        sw.advance(2, 3, &mut sink);
        assert_eq!(sw.slots, vec![2, 3, 4]);
        assert_eq!(sw.counters(), SwitchStats::default());
        // Boxed trait objects are steppable too (`Box<dyn Switch>` is a
        // `Switch`, so the blanket impl covers it).
        let mut boxed: Box<dyn Switch> = Box::new(SlotRecorder {
            slots: Vec::new(),
            threads: 1,
        });
        boxed.advance(0, 1, &mut NullSink);
        assert_eq!(boxed.label(), "slot-recorder");
    }

    #[test]
    fn boxed_and_borrowed_switches_forward_step_batch() {
        let mut boxed: Box<dyn Switch> = Box::new(SlotRecorder {
            slots: Vec::new(),
            threads: 1,
        });
        boxed.step_batch(0, 3, &mut NullSink);

        // Drive through a generic bound so the `impl Switch for &mut T`
        // blanket impl (not auto-deref) is the code path exercised.
        fn drive<S: Switch>(mut switch: S) {
            switch.step_batch(3, 2, &mut NullSink);
        }
        let mut concrete = SlotRecorder {
            slots: Vec::new(),
            threads: 1,
        };
        drive(&mut concrete);
        assert_eq!(concrete.slots, vec![3, 4]);
    }
}
