//! The `Switch` abstraction shared by Sprinklers and every baseline.
//!
//! A switch in this workspace is a synchronous, slotted-time N×N packet
//! switch: packets are injected at input ports with [`Switch::arrive`] and the
//! whole switch advances one time slot with [`Switch::tick`], which returns
//! the packets that reached their output ports during that slot.  The
//! simulator in `sprinklers-sim` drives any implementation of this trait, so
//! Sprinklers and the baselines (baseline load-balanced switch, UFS, FOFF,
//! Padded Frames, TCP hashing) are directly comparable.

use crate::packet::{DeliveredPacket, Packet};
use serde::{Deserialize, Serialize};

/// Aggregate occupancy/throughput counters a switch exposes for metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Packets currently buffered at input ports (including VOQ ready queues).
    pub queued_at_inputs: usize,
    /// Packets currently buffered at intermediate ports.
    pub queued_at_intermediates: usize,
    /// Packets currently buffered at output-side resequencing buffers (zero
    /// for switches that do not need them).
    pub queued_at_outputs: usize,
    /// Total packets accepted so far.
    pub total_arrivals: u64,
    /// Total data packets delivered to outputs so far.
    pub total_departures: u64,
}

impl SwitchStats {
    /// Total packets currently inside the switch.
    pub fn total_queued(&self) -> usize {
        self.queued_at_inputs + self.queued_at_intermediates + self.queued_at_outputs
    }
}

/// A synchronous slotted-time N×N switch.
pub trait Switch {
    /// Number of ports.
    fn n(&self) -> usize;

    /// Short human-readable name of the scheduling scheme (used in reports).
    fn name(&self) -> &'static str;

    /// Inject a packet at its input port.  The packet's `arrival_slot` field
    /// is treated as the current time for rate-measurement purposes, so the
    /// caller should arrange `arrive` calls in nondecreasing `arrival_slot`
    /// order and call [`Switch::tick`] with the matching slot afterwards.
    fn arrive(&mut self, packet: Packet);

    /// Advance the switch by one time slot.  `slot` must increase by exactly 1
    /// between consecutive calls (starting from 0).  Returns every data packet
    /// (and, for padding-based schemes, padding packet) delivered to an output
    /// port during this slot; at most one packet per output can be delivered
    /// per slot.
    fn tick(&mut self, slot: u64) -> Vec<DeliveredPacket>;

    /// Current occupancy and throughput counters.
    fn stats(&self) -> SwitchStats;
}

impl<T: Switch + ?Sized> Switch for Box<T> {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn arrive(&mut self, packet: Packet) {
        (**self).arrive(packet)
    }
    fn tick(&mut self, slot: u64) -> Vec<DeliveredPacket> {
        (**self).tick(slot)
    }
    fn stats(&self) -> SwitchStats {
        (**self).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_total_queued_sums_all_stages() {
        let s = SwitchStats {
            queued_at_inputs: 3,
            queued_at_intermediates: 5,
            queued_at_outputs: 2,
            total_arrivals: 100,
            total_departures: 90,
        };
        assert_eq!(s.total_queued(), 10);
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = SwitchStats::default();
        assert_eq!(s.total_queued(), 0);
        assert_eq!(s.total_arrivals, 0);
    }
}
