//! Largest Stripe First (LSF) schedulers for the input stage (§3.4).
//!
//! An input port must decide, whenever the first fabric connects it to an
//! intermediate port ("row"), which queued packet to send.  The paper's LSF
//! policy gives priority to larger stripes; this module provides the two
//! faithful realizations described in the paper and selectable via
//! [`crate::config::InputDiscipline`]:
//!
//! * [`AtomicLsf`] — Algorithm 1 taken literally: a stripe only *starts*
//!   service when the connection reaches the first port of its dyadic
//!   interval, and is then served to completion in consecutive slots, so
//!   every stripe leaves the input port in one contiguous burst.
//! * [`RowScanLsf`] — the simplified implementation of §3.4.2/Fig. 4: an
//!   `N×(log₂N+1)` grid of FIFO queues; at each slot the connected row is
//!   scanned from the largest stripe-size column to the smallest and the head
//!   of the first non-empty queue is served.  This discipline is strictly
//!   work-conserving.
//!
//! Both implement the [`StripeScheduler`] trait so the input port (and the
//! tests and benches) can treat them interchangeably.

use crate::packet::Packet;
use crate::stripe::Stripe;
use std::collections::VecDeque;

/// Common interface of the input-stage stripe schedulers.
pub trait StripeScheduler {
    /// Insert a freshly assembled stripe ("plaster" it into the schedule).
    fn insert(&mut self, stripe: Stripe);

    /// Serve the given row (intermediate port): return the packet to transmit
    /// in this slot, or `None` if the scheduler has nothing to send to that
    /// intermediate port under its discipline.
    fn serve(&mut self, row: usize) -> Option<Packet>;

    /// Total number of packets currently queued.
    fn queued_packets(&self) -> usize;

    /// Number of packets currently queued that are destined to `row`.
    fn queued_in_row(&self, row: usize) -> usize;

    /// True if no packets are queued.
    fn is_empty(&self) -> bool {
        self.queued_packets() == 0
    }
}

/// The number of stripe-size levels for an `n`-port switch: `log₂(n) + 1`.
pub fn levels(n: usize) -> usize {
    debug_assert!(n.is_power_of_two());
    n.trailing_zeros() as usize + 1
}

// ---------------------------------------------------------------------------
// Row-scan LSF (§3.4.2)
// ---------------------------------------------------------------------------

/// The `N×(log₂N+1)` FIFO grid of §3.4.2 with largest-column-first row scans.
#[derive(Debug, Clone)]
pub struct RowScanLsf {
    n: usize,
    levels: usize,
    /// `queues[row][level]`: packets headed to intermediate port `row` that
    /// belong to stripes of size `2^level`.
    queues: Vec<Vec<VecDeque<Packet>>>,
    queued: usize,
    row_counts: Vec<usize>,
}

impl RowScanLsf {
    /// Create an empty scheduler for an `n`-port switch.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "switch size {n} must be a power of two"
        );
        let levels = levels(n);
        RowScanLsf {
            n,
            levels,
            queues: (0..n)
                .map(|_| (0..levels).map(|_| VecDeque::new()).collect())
                .collect(),
            queued: 0,
            row_counts: vec![0; n],
        }
    }

    /// Switch size N.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Occupancy of a single `(row, level)` FIFO (exposed for tests/metrics).
    pub fn queue_len(&self, row: usize, level: usize) -> usize {
        self.queues[row][level].len()
    }
}

impl StripeScheduler for RowScanLsf {
    fn insert(&mut self, stripe: Stripe) {
        let level = stripe.level();
        debug_assert!(level < self.levels);
        debug_assert!(stripe.interval.end() <= self.n);
        for (offset, packet) in stripe.packets.into_iter().enumerate() {
            let row = stripe.interval.start() + offset;
            self.queues[row][level].push_back(packet);
            self.row_counts[row] += 1;
            self.queued += 1;
        }
    }

    fn serve(&mut self, row: usize) -> Option<Packet> {
        // Fast miss: the sparse stepping loops probe whichever row the fabric
        // rotation reaches, and most probes find nothing — answer those from
        // the per-row count instead of scanning every level's FIFO.
        if self.row_counts[row] == 0 {
            return None;
        }
        // Scan from the largest stripe-size column ("rightmost bit") down.
        for level in (0..self.levels).rev() {
            if let Some(packet) = self.queues[row][level].pop_front() {
                self.queued -= 1;
                self.row_counts[row] -= 1;
                return Some(packet);
            }
        }
        None
    }

    fn queued_packets(&self) -> usize {
        self.queued
    }

    fn queued_in_row(&self, row: usize) -> usize {
        self.row_counts[row]
    }
}

// ---------------------------------------------------------------------------
// Stripe-atomic LSF (Algorithm 1)
// ---------------------------------------------------------------------------

/// A stripe currently being served by the atomic scheduler.
#[derive(Debug, Clone)]
struct InService {
    stripe: Stripe,
    next_offset: usize,
}

/// Algorithm 1 of the paper: stripes start only at the first port of their
/// interval and are served to completion in consecutive slots.
#[derive(Debug, Clone)]
pub struct AtomicLsf {
    n: usize,
    levels: usize,
    /// One FIFO of stripes per dyadic interval.  `interval_queues[level][index]`
    /// holds the stripes with interval `[index·2^level, (index+1)·2^level)`.
    /// There are `2N − 1` FIFOs in total, exactly as §3.4.2 observes.
    interval_queues: Vec<Vec<VecDeque<Stripe>>>,
    in_service: Option<InService>,
    queued: usize,
    row_counts: Vec<usize>,
}

impl AtomicLsf {
    /// Create an empty scheduler for an `n`-port switch.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "switch size {n} must be a power of two"
        );
        let levels = levels(n);
        let interval_queues = (0..levels)
            .map(|level| {
                let count = n >> level;
                (0..count).map(|_| VecDeque::new()).collect()
            })
            .collect();
        AtomicLsf {
            n,
            levels,
            interval_queues,
            in_service: None,
            queued: 0,
            row_counts: vec![0; n],
        }
    }

    /// Switch size N.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Is a stripe currently mid-service?
    pub fn stripe_in_service(&self) -> bool {
        self.in_service.is_some()
    }

    /// Number of queued stripes (not counting the one in service).
    pub fn queued_stripes(&self) -> usize {
        self.interval_queues
            .iter()
            .map(|per_level| per_level.iter().map(VecDeque::len).sum::<usize>())
            .sum()
    }
}

impl StripeScheduler for AtomicLsf {
    fn insert(&mut self, stripe: Stripe) {
        let level = stripe.level();
        let index = stripe.interval.index();
        debug_assert!(stripe.interval.end() <= self.n);
        for offset in 0..stripe.size() {
            self.row_counts[stripe.interval.start() + offset] += 1;
        }
        self.queued += stripe.size();
        self.interval_queues[level][index].push_back(stripe);
    }

    fn serve(&mut self, row: usize) -> Option<Packet> {
        // Continue a stripe already in service: its next packet is always
        // destined to the current row because the connection pattern advances
        // one intermediate port per slot and the stripe's ports are
        // consecutive.
        if let Some(svc) = &mut self.in_service {
            debug_assert_eq!(svc.stripe.port_of_offset(svc.next_offset), row);
            let packet = svc.stripe.packets[svc.next_offset].clone();
            svc.next_offset += 1;
            if svc.next_offset == svc.stripe.size() {
                self.in_service = None;
            }
            self.queued -= 1;
            self.row_counts[row] -= 1;
            return Some(packet);
        }

        // Fast miss: nothing queued through this row at all (the common case
        // for the sparse stepping probes) answers from the per-row count.
        if self.row_counts[row] == 0 {
            return None;
        }

        // Otherwise, among the stripes whose interval starts at this row, pick
        // the largest (FCFS within a level, and levels with larger stripes
        // win).  A dyadic interval starts at `row` iff `row` is a multiple of
        // its size.
        for level in (0..self.levels).rev() {
            let size = 1usize << level;
            if !row.is_multiple_of(size) {
                continue;
            }
            let index = row / size;
            if let Some(stripe) = self.interval_queues[level][index].pop_front() {
                let packet = stripe.packets[0].clone();
                self.queued -= 1;
                self.row_counts[row] -= 1;
                if stripe.size() > 1 {
                    self.in_service = Some(InService {
                        stripe,
                        next_offset: 1,
                    });
                }
                return Some(packet);
            }
        }
        None
    }

    fn queued_packets(&self) -> usize {
        self.queued
    }

    fn queued_in_row(&self, row: usize) -> usize {
        self.row_counts[row]
    }
}

/// Construct the scheduler selected by an [`crate::config::InputDiscipline`].
pub fn make_scheduler(
    discipline: crate::config::InputDiscipline,
    n: usize,
) -> Box<dyn StripeScheduler + Send> {
    match discipline {
        crate::config::InputDiscipline::RowScan => Box::new(RowScanLsf::new(n)),
        crate::config::InputDiscipline::StripeAtomic => Box::new(AtomicLsf::new(n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyadic::DyadicInterval;
    use proptest::prelude::*;

    fn mk_stripe(n: usize, start: usize, size: usize, seq: u64) -> Stripe {
        assert!(start + size <= n);
        let interval = DyadicInterval::new(start, size);
        let packets = (0..size)
            .map(|i| Packet::new(0, 1, seq * 100 + i as u64, 0).with_voq_seq(seq * 100 + i as u64))
            .collect();
        Stripe::assemble(interval, 0, 1, seq, packets)
    }

    #[test]
    fn row_scan_serves_largest_level_first() {
        let mut s = RowScanLsf::new(8);
        s.insert(mk_stripe(8, 0, 1, 0)); // level 0 at row 0
        s.insert(mk_stripe(8, 0, 4, 1)); // level 2 at rows 0..4
        let p = s.serve(0).unwrap();
        assert_eq!(p.stripe_size(), 4, "the larger stripe must be served first");
        let p = s.serve(0).unwrap();
        assert_eq!(p.stripe_size(), 1);
        assert!(s.serve(0).is_none());
        assert_eq!(s.queued_packets(), 3);
    }

    #[test]
    fn row_scan_is_work_conserving() {
        let mut s = RowScanLsf::new(8);
        s.insert(mk_stripe(8, 4, 4, 0));
        // Any row within [4, 8) must be servable immediately.
        for row in 4..8 {
            assert!(s.queued_in_row(row) > 0);
            assert!(s.serve(row).is_some());
        }
        assert!(s.is_empty());
    }

    #[test]
    fn atomic_starts_only_at_interval_start() {
        let mut s = AtomicLsf::new(8);
        s.insert(mk_stripe(8, 0, 4, 0));
        // Rows 1..4 cannot start the stripe.
        assert!(s.serve(1).is_none());
        assert!(s.serve(2).is_none());
        // Row 0 starts it; rows 1..3 then continue it.
        assert!(s.serve(0).is_some());
        assert!(s.stripe_in_service());
        assert!(s.serve(1).is_some());
        assert!(s.serve(2).is_some());
        assert!(s.serve(3).is_some());
        assert!(!s.stripe_in_service());
        assert!(s.is_empty());
    }

    #[test]
    fn atomic_serves_stripe_contiguously_in_offset_order() {
        let mut s = AtomicLsf::new(8);
        s.insert(mk_stripe(8, 4, 4, 3));
        let mut served = Vec::new();
        for row in 4..8 {
            served.push(s.serve(row).unwrap());
        }
        for (i, p) in served.iter().enumerate() {
            assert_eq!(p.stripe_index(), i);
            assert_eq!(p.intermediate(), 4 + i);
        }
    }

    #[test]
    fn atomic_prefers_largest_stripe_at_start_row() {
        let mut s = AtomicLsf::new(8);
        s.insert(mk_stripe(8, 0, 2, 0));
        s.insert(mk_stripe(8, 0, 8, 1));
        let p = s.serve(0).unwrap();
        assert_eq!(p.stripe_size(), 8);
        // The size-2 stripe must wait until the size-8 stripe finishes and the
        // connection wraps around to row 0 again.
        for row in 1..8 {
            let q = s.serve(row).unwrap();
            assert_eq!(q.stripe_size(), 8);
        }
        let p = s.serve(0).unwrap();
        assert_eq!(p.stripe_size(), 2);
    }

    #[test]
    fn atomic_fcfs_within_same_interval() {
        let mut s = AtomicLsf::new(4);
        s.insert(mk_stripe(4, 0, 2, 0));
        s.insert(mk_stripe(4, 0, 2, 1));
        let first = s.serve(0).unwrap();
        s.serve(1).unwrap();
        let second = s.serve(0).unwrap();
        assert!(
            first.voq_seq < second.voq_seq,
            "stripes of the same interval are FCFS"
        );
    }

    #[test]
    fn queued_in_row_tracks_insertions_and_service() {
        let mut s = RowScanLsf::new(8);
        s.insert(mk_stripe(8, 0, 2, 0));
        s.insert(mk_stripe(8, 0, 8, 1));
        assert_eq!(s.queued_in_row(0), 2);
        assert_eq!(s.queued_in_row(1), 2);
        assert_eq!(s.queued_in_row(5), 1);
        s.serve(0).unwrap();
        assert_eq!(s.queued_in_row(0), 1);
    }

    #[test]
    fn make_scheduler_respects_discipline() {
        let mut a = make_scheduler(crate::config::InputDiscipline::StripeAtomic, 4);
        let mut r = make_scheduler(crate::config::InputDiscipline::RowScan, 4);
        a.insert(mk_stripe(4, 0, 4, 0));
        r.insert(mk_stripe(4, 0, 4, 0));
        // Row 2 is mid-interval: the atomic scheduler refuses, row-scan serves.
        assert!(a.serve(2).is_none());
        assert!(r.serve(2).is_some());
    }

    #[test]
    fn levels_helper() {
        assert_eq!(levels(1), 1);
        assert_eq!(levels(2), 2);
        assert_eq!(levels(8), 4);
        assert_eq!(levels(1024), 11);
    }

    proptest! {
        /// Whatever the insertion pattern, the row-scan scheduler conserves
        /// packets: everything inserted is eventually served, exactly once,
        /// when all rows are polled round-robin.
        #[test]
        fn row_scan_conserves_packets(starts in proptest::collection::vec((0usize..8, 0usize..4), 1..20)) {
            let n = 8usize;
            let mut s = RowScanLsf::new(n);
            let mut inserted = 0usize;
            for (seq, (port, level)) in starts.into_iter().enumerate() {
                let size = 1usize << level;
                let start = (port / size) * size;
                let stripe = mk_stripe(n, start, size, seq as u64);
                inserted += size;
                s.insert(stripe);
            }
            prop_assert_eq!(s.queued_packets(), inserted);
            let mut served = 0usize;
            let mut slot = 0usize;
            // Poll rows cyclically; with work conservation this drains in at
            // most `inserted * n` slots.
            while served < inserted && slot < inserted * n + n {
                if s.serve(slot % n).is_some() {
                    served += 1;
                }
                slot += 1;
            }
            prop_assert_eq!(served, inserted);
            prop_assert!(s.is_empty());
        }

        /// The atomic scheduler also conserves packets and always emits each
        /// stripe as one contiguous burst in offset order.
        #[test]
        fn atomic_emits_contiguous_bursts(starts in proptest::collection::vec((0usize..8, 0usize..4), 1..20)) {
            let n = 8usize;
            let mut s = AtomicLsf::new(n);
            let mut inserted = 0usize;
            for (seq, (port, level)) in starts.into_iter().enumerate() {
                let size = 1usize << level;
                let start = (port / size) * size;
                s.insert(mk_stripe(n, start, size, seq as u64));
                inserted += size;
            }
            let mut served: Vec<(usize, Packet)> = Vec::new();
            let mut slot = 0usize;
            while served.len() < inserted && slot < inserted * n + n {
                let row = slot % n;
                if let Some(p) = s.serve(row) {
                    served.push((slot, p));
                }
                slot += 1;
            }
            prop_assert_eq!(served.len(), inserted);
            // Group by (voq_seq / 100) which identifies the stripe in mk_stripe,
            // and check contiguity in time and offset order.
            use std::collections::HashMap;
            let mut by_stripe: HashMap<u64, Vec<(usize, usize)>> = HashMap::new();
            for (slot, p) in &served {
                by_stripe.entry(p.voq_seq / 100).or_default().push((*slot, p.stripe_index()));
            }
            for (_, mut v) in by_stripe {
                v.sort();
                for w in v.windows(2) {
                    prop_assert_eq!(w[1].0, w[0].0 + 1, "stripe served in consecutive slots");
                    prop_assert_eq!(w[1].1, w[0].1 + 1, "stripe served in offset order");
                }
            }
        }
    }
}
